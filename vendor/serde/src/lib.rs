//! Offline stand-in for the slice of `serde` this workspace uses.
//!
//! The workspace only ever (a) derives `Serialize`/`Deserialize` with
//! no field attributes and (b) round-trips values through JSON text
//! via `serde_json`. That lets us collapse serde's zero-copy visitor
//! architecture into a simple tree model: serialization produces a
//! [`Value`], deserialization consumes one, and `serde_json` renders
//! `Value` to/from text. The derive macros live in `serde_derive`
//! (re-exported here) and generate code against this `Value` API.
//!
//! Formats match real `serde_json` conventions so traces written by
//! this stub stay loadable by the real crates (and vice versa):
//! externally tagged enums, `null` for `None`, arrays for tuples, and
//! stringified keys for non-string maps.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree (the union of everything JSON can say).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error::msg(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::msg(format!("{u} out of range"))),
                    Value::I64(i) => <$t>::try_from(i)
                        .map_err(|_| Error::msg(format!("{i} out of range"))),
                    _ => Err(Error::expected("unsigned integer", v)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| Error::msg(format!("{u} out of range"))),
                    Value::I64(i) => <$t>::try_from(i)
                        .map_err(|_| Error::msg(format!("{i} out of range"))),
                    _ => Err(Error::expected("integer", v)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("tuple", v))?;
                let expect = [$(stringify!($i)),+].len();
                if seq.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect}, found {}", seq.len(),
                    )));
                }
                Ok(($($t::deserialize_value(&seq[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------------

/// Encode a map key as a string, matching `serde_json`: string keys
/// pass through, everything else becomes its compact JSON encoding.
fn encode_key<K: Serialize>(key: &K) -> String {
    match key.serialize_value() {
        Value::Str(s) => s,
        other => crate::text::render(&other, None),
    }
}

/// Decode a map key from its string form: first as a plain string
/// (covers `String` keys that happen to look numeric), then as JSON.
fn decode_key<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    let v = crate::text::parse(key)?;
    K::deserialize_value(&v)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (encode_key(k), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((decode_key(k)?, V::deserialize_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Derive support
// ---------------------------------------------------------------------------

/// Look up a struct field by name; a missing key deserializes as
/// `Null` so `Option` fields tolerate hand-written JSON that omits
/// them (everything else reports the missing field).
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::deserialize_value(v).map_err(|e| Error::msg(format!("field `{key}`: {e}")))
        }
        None => T::deserialize_value(&Value::Null)
            .map_err(|_| Error::msg(format!("missing field `{key}`"))),
    }
}

/// JSON text rendering/parsing shared with `serde_json` (kept here so
/// map-key encoding and the JSON crate agree exactly).
pub mod text {
    use super::{Error, Value};

    /// Render a value as JSON. `indent = None` is compact,
    /// `Some(step)` pretty-prints with `step`-space indentation.
    pub fn render(v: &Value, indent: Option<usize>) -> String {
        let mut out = String::new();
        write_value(&mut out, v, indent, 0);
        out
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(u) => out.push_str(&u.to_string()),
            Value::I64(i) => out.push_str(&i.to_string()),
            Value::F64(f) => write_f64(out, *f),
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
                    write_value(out, &items[i], indent, depth + 1)
                })
            }
            Value::Map(entries) => {
                write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, val) = &entries[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1)
                })
            }
        }
    }

    fn write_compound(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        open: char,
        close: char,
        len: usize,
        mut write_item: impl FnMut(&mut String, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(step) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
            }
            write_item(out, i);
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
        out.push(close);
    }

    /// Rust's shortest-roundtrip float formatting, with serde_json's
    /// conventions: non-finite numbers render as `null`, and integral
    /// floats keep a `.0` so they re-read as floats.
    fn write_f64(out: &mut String, f: f64) {
        if !f.is_finite() {
            out.push_str("null");
            return;
        }
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse JSON text into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::msg(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.seq(),
                Some(b'{') => self.map(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
            }
        }

        fn seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
                }
            }
        }

        fn map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                entries.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                                // Surrogate pairs are not needed for
                                // this workspace's ASCII field names.
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("bad \\u codepoint"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(Error::msg("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = &self.bytes[self.pos..];
                        let s =
                            std::str::from_utf8(rest).map_err(|_| Error::msg("invalid utf-8"))?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                    None => return Err(Error::msg("unterminated string")),
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if !is_float {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::U64(u));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            }
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.5)])),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::I64(-3)),
            ("e".into(), Value::Bool(true)),
        ]);
        let compact = text::render(&v, None);
        assert_eq!(text::parse(&compact).unwrap(), v);
        let pretty = text::render(&v, Some(2));
        assert_eq!(text::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_roundtrip_precision() {
        let f = 0.1f64 + 0.2;
        let s = text::render(&Value::F64(f), None);
        match text::parse(&s).unwrap() {
            Value::F64(g) => assert_eq!(f, g),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn integral_floats_reparse_as_floats() {
        let s = text::render(&Value::F64(3.0), None);
        assert_eq!(s, "3.0");
        assert_eq!(text::parse(&s).unwrap(), Value::F64(3.0));
    }

    #[test]
    fn map_keys_encode_non_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let v = m.serialize_value();
        assert_eq!(v, Value::Map(vec![("7".into(), Value::Str("x".into()))]));
        let back: BTreeMap<u32, String> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_keys_that_look_numeric_survive() {
        let mut m = BTreeMap::new();
        m.insert("42".to_string(), 1u8);
        let back: BTreeMap<String, u8> =
            Deserialize::deserialize_value(&m.serialize_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::deserialize_value(&some.serialize_value()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u32>::deserialize_value(&none.serialize_value()).unwrap(),
            none
        );
    }
}
