//! Offline stand-in for the tiny slice of `rand` this workspace uses.
//!
//! The simulator brings its own xoshiro256** generator (`SimRng` in
//! `simcore`) and only implements the `rand` *traits* so downstream
//! code could plug it into the wider ecosystem. The build environment
//! has no registry access, so this crate vendors exactly that trait
//! surface: [`RngCore`], [`SeedableRng`] and [`Error`].

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// Infallible generators (everything in this workspace) never
/// construct it; it exists so the trait signature matches `rand 0.8`.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new<E: fmt::Display>(err: E) -> Self {
        Error {
            msg: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand 0.8`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator seedable from fixed bytes, as in `rand 0.8`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed from a `u64`, splitmix-style spread over the seed bytes.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let bytes = (z ^ (z >> 31)).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }
}
