//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! The workspace derives on plain structs and enums only — no
//! generics, no `#[serde(...)]` attributes — so the macro parses the
//! item shape directly from the token stream (no `syn`/`quote`,
//! which are unavailable offline) and emits impls of the tree-model
//! traits in the vendored `serde` crate. Field types never need to be
//! parsed: generated code leans on inference through constructors.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Skip any number of `#[...]` / `#![...]` attributes (doc
    /// comments arrive in this form too).
    fn skip_attrs(&mut self) {
        while self.peek_punct('#') {
            self.next();
            if self.peek_punct('!') {
                self.next();
            }
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("expected attribute body, found {other:?}"),
            }
        }
    }

    /// Skip `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    /// Skip one type (or discriminant expression): everything up to a
    /// comma at angle-bracket depth 0. Parens/brackets/braces arrive
    /// as single `Group` tokens, so only `<`/`>` need depth tracking.
    /// Returns how many tokens were consumed.
    fn skip_until_toplevel_comma(&mut self) -> usize {
        let mut depth = 0i32;
        let mut consumed = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            self.next();
            consumed += 1;
        }
        consumed
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if c.peek_punct('<') {
        panic!("serde derive stub: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    c.next();
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    c.next();
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("serde derive stub: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        names.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        c.skip_until_toplevel_comma();
        if c.peek_punct(',') {
            c.next();
        }
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        if c.skip_until_toplevel_comma() > 0 {
            count += 1;
        }
        if c.peek_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                c.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                c.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Explicit discriminant (`= expr`).
        if c.peek_punct('=') {
            c.next();
            c.skip_until_toplevel_comma();
        }
        if c.peek_punct(',') {
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const SER: &str = "::serde::Serialize::serialize_value";
const DE: &str = "::serde::Deserialize::deserialize_value";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(::std::string::String::from(\"{f}\"), {SER}(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => format!("{SER}(&self.0)"),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{SER}(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    let tag = format!("::std::string::String::from(\"{vn}\")");
    match &v.fields {
        Fields::Unit => format!("{name}::{vn} => ::serde::Value::Str({tag}),"),
        Fields::Tuple(1) => {
            format!("{name}::{vn}(x0) => ::serde::Value::Map(vec![({tag}, {SER}(x0))]),")
        }
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = binds.iter().map(|b| format!("{SER}({b})")).collect();
            format!(
                "{name}::{vn}({}) => ::serde::Value::Map(vec![({tag}, \
                 ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(::std::string::String::from(\"{f}\"), {SER}({f}))"))
                .collect();
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![({tag}, \
                 ::serde::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, \"{f}\")?"))
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| \
                     ::serde::Error::expected(\"struct {name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}({DE}(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{DE}(&seq[{i}])?")).collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"tuple struct {name}\", v))?;\n\
                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::msg(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| de_variant_arm(name, v))
        .collect();
    let unknown = format!(
        "other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\")))"
    );
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{ {unit} {unknown} }},\n\
             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{ {tagged} {unknown} }}\n\
             }}\n\
             _ => ::std::result::Result::Err(::serde::Error::expected(\"enum {name}\", v)),\n\
         }}",
        unit = unit_arms.join(" "),
        tagged = tagged_arms.join(" "),
    )
}

fn de_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled in the string arm"),
        Fields::Tuple(1) => {
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({DE}(inner)?)),")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{DE}(&seq[{i}])?")).collect();
            format!(
                "\"{vn}\" => {{\n\
                     let seq = inner.as_seq().ok_or_else(|| \
                         ::serde::Error::expected(\"variant {name}::{vn}\", inner))?;\n\
                     if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, \"{f}\")?"))
                .collect();
            format!(
                "\"{vn}\" => {{\n\
                     let m = inner.as_map().ok_or_else(|| \
                         ::serde::Error::expected(\"variant {name}::{vn}\", inner))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}
