//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Same surface (`proptest!`, `prop_assert*`, `Strategy` with
//! `prop_map`/`prop_flat_map`, `ProptestConfig`, `any`,
//! `collection::vec`, `array::uniform4`, `sample::subsequence`), but a
//! much simpler engine: inputs are drawn from a splitmix64 stream
//! seeded by the test's name, so every run explores the same cases.
//! No shrinking — a failing case panics with the regular assertion
//! message, and the deterministic seeding makes it reproducible.

/// Deterministic input stream (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a) so each test gets a stable,
    /// independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Runner configuration. Only `cases` matters to this stub; the other
/// field keeps `.. ProptestConfig::default()` struct updates valid.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u64) - (*self.start() as u64) + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl SizeRange {
    fn generate(&self, rng: &mut TestRng, cap: usize) -> usize {
        let hi = self.hi.min(cap);
        let lo = self.lo.min(hi);
        lo + rng.index(hi - lo + 1)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng, usize::MAX);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of `size`-many draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform4<S> {
        elem: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.elem.generate(rng),
                self.elem.generate(rng),
                self.elem.generate(rng),
                self.elem.generate(rng),
            ]
        }
    }

    /// Four independent draws from `elem`.
    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4 { elem }
    }
}

pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    pub struct Subsequence<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.items.len();
            let len = self.size.generate(rng, n);
            // Partial Fisher–Yates over indices, then restore order so
            // the result is a true subsequence.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = i + rng.index(n - i);
                idx.swap(i, j);
            }
            let mut chosen = idx[..len].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    /// A random order-preserving subsequence of `items`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The test-definition macro. Supports the same grammar this
/// workspace uses: an optional `#![proptest_config(..)]` header and
/// one or more `#[test] fn name(pat in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::TestRng::for_test("sub");
        let items: Vec<u32> = (0..50).collect();
        for _ in 0..200 {
            let s = crate::sample::subsequence(items.clone(), 0..=items.len());
            let out = s.generate(&mut rng);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    fn pair() -> impl Strategy<Value = (u16, u16)> {
        (0u16..10).prop_flat_map(|a| (a..=a, a..100).prop_map(|(x, y)| (x, y)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges respect bounds; flat-mapped strategies compose.
        #[test]
        fn strategies_respect_bounds(
            f in 0.25f64..0.75,
            n in 3usize..7,
            b in any::<bool>(),
            (lo, hi) in pair(),
            v in crate::collection::vec(0u8..4, 1..9),
        ) {
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((3..7).contains(&n));
            let _ = b;
            prop_assert!(lo <= hi && hi < 100);
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }
}
