//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Benches run with the same shape as real criterion (`cargo bench`
//! with `harness = false`, `criterion_group!`/`criterion_main!`,
//! groups, `Bencher::iter`) but a simpler engine: per sample the
//! closure runs enough iterations to cover a minimum window, and the
//! reported statistic is the median ns/iteration over all samples.
//!
//! Every measurement is also written to
//! `target/criterion-mini/<group>/<bench>.json` so tooling (the
//! `BENCH_scheduler.json` emitter in `mlfs-bench`) can consume a
//! machine-readable snapshot.

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 50;
/// Minimum measured wall time per sample; keeps timer overhead < 1%.
const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(5);

/// Locate `<workspace>/target/criterion-mini` by walking up from the
/// bench executable (which lives in `target/<profile>/deps/`).
fn out_root() -> PathBuf {
    if let Some(dir) = std::env::var_os("CRITERION_MINI_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut p = exe.as_path();
        while let Some(parent) = p.parent() {
            if p.file_name().is_some_and(|n| n == "target") {
                return p.join("criterion-mini");
            }
            p = parent;
        }
    }
    PathBuf::from("target").join("criterion-mini")
}

/// One benchmark's measurement summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Accepted for compatibility with generated runner code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench("standalone", id, sample_size, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&self.name, id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters_per_sample: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters_per_sample` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sample(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters_per_sample: iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Sample-count override for quick smoke runs (e.g. CI): setting
/// `CRITERION_MINI_SAMPLES=1` runs every bench with a single sample,
/// exercising the full bench path in a fraction of the time. Values
/// below 1 are ignored; without the variable the per-group
/// `sample_size` applies (min 2).
fn sample_override() -> Option<usize> {
    std::env::var("CRITERION_MINI_SAMPLES")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
}

fn run_bench(group: &str, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the per-sample iteration count until one sample
    // covers the minimum window (also serves as warm-up).
    let mut iters: u64 = 1;
    loop {
        let t = run_sample(&mut f, iters);
        if t >= MIN_SAMPLE_WINDOW || iters >= (1 << 30) {
            break;
        }
        // Aim directly for the window with 2x headroom.
        let target = MIN_SAMPLE_WINDOW.as_secs_f64() * 2.0;
        let per_iter = (t.as_secs_f64() / iters as f64).max(1e-9);
        iters = ((target / per_iter).ceil() as u64).clamp(iters + 1, iters * 100);
    }

    let samples = sample_override().unwrap_or_else(|| sample_size.max(2));
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| run_sample(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let n = per_iter_ns.len();
    let median_ns = if n % 2 == 1 {
        per_iter_ns[n / 2]
    } else {
        0.5 * (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2])
    };
    let summary = Summary {
        median_ns,
        mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
        min_ns: per_iter_ns[0],
        max_ns: per_iter_ns[n - 1],
        samples: n,
    };

    println!(
        "{group}/{id}  time: [{} {} {}]  ({} samples, {iters} iters/sample)",
        fmt_ns(summary.min_ns),
        fmt_ns(summary.median_ns),
        fmt_ns(summary.max_ns),
        summary.samples,
    );
    write_snapshot(group, id, &summary);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn write_snapshot(group: &str, id: &str, s: &Summary) {
    let dir = out_root().join(sanitize(group));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\n  \"group\": \"{}\",\n  \"bench\": \"{}\",\n  \"median_ns\": {},\n  \
         \"mean_ns\": {},\n  \"min_ns\": {},\n  \"max_ns\": {},\n  \"samples\": {}\n}}\n",
        group, id, s.median_ns, s.mean_ns, s.min_ns, s.max_ns, s.samples
    );
    let _ = std::fs::write(dir.join(format!("{}.json", sanitize(id))), json);
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_snapshots() {
        let tmp = std::env::temp_dir().join("criterion-mini-selftest");
        std::env::set_var("CRITERION_MINI_DIR", &tmp);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        let written = tmp.join("selftest").join("sum.json");
        let body = std::fs::read_to_string(&written).expect("snapshot written");
        assert!(body.contains("\"median_ns\""));

        // Quick-mode override: a single sample per bench (same test fn
        // as above — env vars are process-global, so keep sequential).
        std::env::set_var("CRITERION_MINI_SAMPLES", "1");
        let mut group = c.benchmark_group("selftest");
        group.bench_function("sum1", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        std::env::remove_var("CRITERION_MINI_SAMPLES");
        let body = std::fs::read_to_string(tmp.join("selftest").join("sum1.json"))
            .expect("override snapshot written");
        assert!(body.contains("\"samples\": 1"));
        std::fs::remove_dir_all(&tmp).ok();
    }
}
