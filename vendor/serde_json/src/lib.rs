//! Offline stand-in for the slice of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. Rendering and
//! parsing live in the vendored `serde` crate (shared with its map-key
//! encoding); this crate adapts them to the familiar API.

pub use serde::Error;
pub use serde::Value;

/// Serialize `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::text::render(&value.serialize_value(), None))
}

/// Serialize `value` to pretty-printed JSON (2-space indent, like the
/// real `serde_json`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::text::render(&value.serialize_value(), Some(2)))
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize_value(&serde::text::parse(s)?)
}

/// Parse JSON text into an untyped [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    serde::text::parse(s)
}

/// Render an untyped [`Value`] tree as pretty-printed JSON.
pub fn value_to_string_pretty(v: &Value) -> String {
    serde::text::render(v, Some(2))
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Inner(u32);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted { w: f64, tag: String },
        Pair(i32, i32),
        Wrapped(Inner),
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Record {
        name: String,
        score: f64,
        kinds: Vec<Kind>,
        lookup: BTreeMap<Inner, u8>,
        maybe: Option<u64>,
        pair: (f64, f64),
        arr: [f64; 3],
    }

    fn sample() -> Record {
        let mut lookup = BTreeMap::new();
        lookup.insert(Inner(3), 9);
        Record {
            name: "job-1".into(),
            score: 0.125,
            kinds: vec![
                Kind::Plain,
                Kind::Weighted {
                    w: -1.5,
                    tag: "x".into(),
                },
                Kind::Pair(-2, 7),
                Kind::Wrapped(Inner(4)),
            ],
            lookup,
            maybe: None,
            pair: (1.0, 2.5),
            arr: [0.0, 1.0, 2.0],
        }
    }

    impl PartialOrd for Inner {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Eq for Inner {}
    impl Ord for Inner {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0)
        }
    }

    #[test]
    fn derive_roundtrip_compact_and_pretty() {
        let r = sample();
        let compact = crate::to_string(&r).unwrap();
        assert_eq!(crate::from_str::<Record>(&compact).unwrap(), r);
        let pretty = crate::to_string_pretty(&r).unwrap();
        assert_eq!(crate::from_str::<Record>(&pretty).unwrap(), r);
    }

    #[test]
    fn externally_tagged_enum_format() {
        assert_eq!(crate::to_string(&Kind::Plain).unwrap(), "\"Plain\"");
        assert_eq!(
            crate::to_string(&Kind::Pair(1, 2)).unwrap(),
            "{\"Pair\":[1,2]}"
        );
        assert_eq!(
            crate::to_string(&Kind::Wrapped(Inner(5))).unwrap(),
            "{\"Wrapped\":5}"
        );
        assert_eq!(
            crate::to_string(&Kind::Weighted {
                w: 2.0,
                tag: "t".into()
            })
            .unwrap(),
            "{\"Weighted\":{\"w\":2.0,\"tag\":\"t\"}}"
        );
    }

    #[test]
    fn missing_optional_field_defaults_to_none() {
        let json = r#"{"name":"n","score":1.5,"kinds":[],"lookup":{},
                       "pair":[0.5,0.5],"arr":[1.0,2.0,3.0]}"#;
        let r: Record = crate::from_str(json).unwrap();
        assert_eq!(r.maybe, None);
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let json = r#"{"name":"n"}"#;
        assert!(crate::from_str::<Record>(json).is_err());
    }
}
