//! # mlfs-repro — workspace façade
//!
//! Re-exports the full MLFS reproduction behind one crate so examples,
//! integration tests and downstream users can depend on a single
//! name. See README.md for the architecture and DESIGN.md for the
//! paper-to-code map.
//!
//! ```
//! use mlfs_repro::prelude::*;
//!
//! let jobs = TraceGenerator::new(TraceConfig::paper_real(0.25, 16.0, 1)).generate();
//! assert_eq!(jobs.len(), 155);
//! let scheduler = Mlfs::heuristic(Params::default());
//! assert_eq!(scheduler.name(), "MLF-H");
//! ```

pub use baselines;
pub use cluster;
pub use learncurve;
pub use metrics;
pub use mlfs;
pub use mlfs_sim as sim;
pub use nn;
// `obs::TraceConfig` stays namespaced (the prelude already exports
// `workload::TraceConfig`); reach it as `mlfs_repro::obs::TraceConfig`.
pub use obs;
pub use rl;
pub use simcore;
pub use workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use baselines::{by_name, FIGURE_SCHEDULERS};
    pub use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, ServerId, TaskId, Topology};
    pub use metrics::RunMetrics;
    pub use mlfs::{Action, MlfRlConfig, Mlfs, Params, Scheduler, SchedulerContext};
    pub use mlfs_sim::engine::{run, SimConfig};
    pub use mlfs_sim::experiments::{fig4, fig5, Experiment};
    pub use mlfs_sim::ProgressModel;
    pub use simcore::{SimDuration, SimRng, SimTime};
    pub use workload::{JobSpec, JobState, StopPolicy, TraceConfig, TraceGenerator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let _ = Params::default();
        let _ = SimConfig::default();
        assert_eq!(FIGURE_SCHEDULERS.len(), 10);
        assert_eq!(SimTime::from_mins(2).as_millis(), 120_000);
    }
}
