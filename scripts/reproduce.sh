#!/usr/bin/env bash
# Regenerate every figure/table of the paper and store the outputs
# under results/ (raw JSON) and results/logs/ (printed series).
# Takes ~10–20 minutes on a laptop. See EXPERIMENTS.md for the
# committed outputs and the scaling knobs.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results/logs

run() {
    local name="$1"; shift
    echo "=== $name ==="
    cargo run --release -p mlfs-bench --bin "$name" -- "$@" | tee "results/logs/$name.txt"
}

run fig4 --full --json results
run fig5 --xs 0.5,1 --scale 0.02 --tf 80 --json results   # add 2,3,4 (or --full) on beefier hardware
run makespan --xs 0.25,0.5,1,2
run fig6 --xs 0.5,1,2
run fig7 --xs 0.5,1,2
run fig8 --xs 0.5,1,2
run fig9 --xs 0.5,1,2
run ablations --study progress  | tee results/logs/ablation-progress.txt
run ablations --study topology  | tee results/logs/ablation-topology.txt
run ablations --study params    | tee results/logs/ablation-params.txt
run ablations --study stragglers | tee results/logs/ablation-stragglers.txt

echo "=== criterion (Fig. 4h cross-check) ==="
cargo bench -p mlfs-bench | tee results/logs/criterion.txt

echo "All results under results/"
