#!/usr/bin/env bash
# One-command offline training (docs/TRAINING.md): record an MLF-H
# decision trace, replay it into a supervised dataset, pretrain a
# warm-start policy, and write the checkpoint.
#
#   scripts/train.sh                          # target/policy.json
#   scripts/train.sh --out my_policy.json     # custom checkpoint path
#   scripts/train.sh --x 1.0 --tf 8 --epochs 16 --seed 7
#
# Flags pass straight through to examples/train_policy.rs:
#   --x       workload load multiplier   (default 0.25)
#   --tf      time-compression factor    (default 16)
#   --seed    trace + pretraining seed   (default 42)
#   --epochs  pretraining epochs         (default 8)
#   --out     checkpoint path            (default target/policy.json)
#   --trace   recorded-trace path        (default target/train_policy_trace.jsonl)
#
# The checkpoint is a serialized rl::ScoringPolicy; load it with
# serde_json and hand it to MlfRl::import_policy (examples/
# train_policy.rs shows the full round trip, including a frozen
# evaluation against MLF-H on an unseen trace).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --example train_policy -- "$@"
