#!/usr/bin/env bash
# Profiling workflow (docs/OBSERVABILITY.md): run one traced fig. 4
# cell and emit flamegraph-compatible folded stacks from the obs span
# timings, plus the JSONL event trace for replay.
#
#   scripts/profile.sh [SCHEDULER]      # default MLFS
#
# Outputs:
#   target/trace/trace_run.jsonl   one JSON object per trace event
#   target/trace/trace_run.folded  "path count" folded span stacks
#
# Render the folded file with any stackcollapse consumer, e.g.
#   flamegraph.pl target/trace/trace_run.folded > flame.svg
#   inferno-flamegraph < target/trace/trace_run.folded > flame.svg
# (neither tool ships in this repo; the folded format is the
# interchange point).
set -euo pipefail
cd "$(dirname "$0")/.."

SCHEDULER="${1:-MLFS}"

cargo build --release --example trace_run
./target/release/examples/trace_run "$SCHEDULER"

echo
echo "--- top folded stacks (self ns) ---"
sort -t' ' -k2 -rn target/trace/trace_run.folded | head -n 10
