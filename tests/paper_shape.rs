//! Directional "shape" tests: the qualitative comparisons the paper's
//! evaluation reports must hold at smoke-test scale (§4.2.1). These
//! use a half-size Fig. 4 workload with heavy time compression; the
//! full sweeps live in the `mlfs-bench` binaries.

use metrics::RunMetrics;
use mlfs_sim::experiments::fig4;
use std::collections::BTreeMap;

/// Run once and share across assertions (each run is a whole
/// simulation; the RL-based entries also pre-train).
fn results() -> BTreeMap<&'static str, RunMetrics> {
    let e = fig4(2.0, 16.0, 42);
    ["MLFS", "MLF-H", "TensorFlow", "SLAQ", "Tiresias", "Gandiva"]
        .into_iter()
        .map(|name| {
            let mut s = e.trained_scheduler(name, 7);
            (name, e.run(s.as_mut()))
        })
        .collect()
}

#[test]
fn headline_orderings_hold() {
    let r = results();

    // JCT: MLFS beats every baseline, decisively vs fair share.
    assert!(
        r["MLFS"].avg_jct_mins() < r["MLF-H"].avg_jct_mins(),
        "MLFS {} vs MLF-H {}",
        r["MLFS"].avg_jct_mins(),
        r["MLF-H"].avg_jct_mins()
    );
    assert!(
        r["MLFS"].avg_jct_mins() < 0.6 * r["TensorFlow"].avg_jct_mins(),
        "MLFS {} vs TensorFlow {}",
        r["MLFS"].avg_jct_mins(),
        r["TensorFlow"].avg_jct_mins()
    );
    // SLAQ's quality-only objective costs it JCT vs Tiresias.
    assert!(
        r["SLAQ"].avg_jct_mins() > r["Tiresias"].avg_jct_mins(),
        "SLAQ {} vs Tiresias {}",
        r["SLAQ"].avg_jct_mins(),
        r["Tiresias"].avg_jct_mins()
    );

    // Deadline guarantee: MLFS on top; fair share at the bottom.
    assert!(r["MLFS"].deadline_ratio() > r["MLF-H"].deadline_ratio());
    assert!(r["MLFS"].deadline_ratio() > r["TensorFlow"].deadline_ratio() + 0.1);

    // Accuracy guarantee ratio: an explicit MLFS objective.
    assert!(r["MLFS"].accuracy_ratio() > r["TensorFlow"].accuracy_ratio());

    // Bandwidth: MLFS (affinity placement + load control) moves fewer
    // bytes than comm-oblivious baselines.
    assert!(
        r["MLFS"].bandwidth_mb < r["Tiresias"].bandwidth_mb,
        "MLFS {} vs Tiresias {}",
        r["MLFS"].bandwidth_mb,
        r["Tiresias"].bandwidth_mb
    );

    // Waiting time: MLFS shortest (Fig. 4d).
    for other in ["MLF-H", "TensorFlow", "SLAQ", "Tiresias", "Gandiva"] {
        assert!(
            r["MLFS"].avg_waiting_secs() <= r[other].avg_waiting_secs(),
            "MLFS {} vs {other} {}",
            r["MLFS"].avg_waiting_secs(),
            r[other].avg_waiting_secs()
        );
    }

    // Scheduler overhead: MLFS (RL + load control) costs more per
    // decision than the simple baselines (Fig. 4h's order).
    assert!(r["MLFS"].avg_decision_ms() > r["Gandiva"].avg_decision_ms());
}

#[test]
fn mlfc_ablation_direction_holds() {
    // Fig. 9's direction: removing MLF-C worsens JCT and the accuracy
    // guarantee ratio under load.
    let e = fig4(2.0, 16.0, 7);
    let mut with = e.trained_scheduler_with_params("MLFS", 3, mlfs::Params::default());
    let m_with = e.run(with.as_mut());
    let mut without = e.trained_scheduler_with_params(
        "MLFS",
        3,
        mlfs::Params {
            use_mlfc: false,
            ..mlfs::Params::default()
        },
    );
    let m_without = e.run(without.as_mut());
    assert!(
        m_with.avg_jct_mins() < m_without.avg_jct_mins(),
        "with {} vs without {}",
        m_with.avg_jct_mins(),
        m_without.avg_jct_mins()
    );
    assert!(
        m_with.accuracy_ratio() >= m_without.accuracy_ratio() - 0.02,
        "with {} vs without {}",
        m_with.accuracy_ratio(),
        m_without.accuracy_ratio()
    );
}

#[test]
fn urgency_ablation_direction_holds() {
    // Fig. 6's direction: urgency consideration lifts urgent jobs'
    // deadline guarantee ratio. Any single seed is noisy (the effect
    // is a few percentage points), so pool urgent-job outcomes over
    // several seeds and compare aggregate counts.
    let urgent_met = |m: &RunMetrics| {
        m.jobs
            .iter()
            .filter(|j| j.urgency > 8 && j.met_deadline)
            .count()
    };
    let mut met_with = 0;
    let mut met_without = 0;
    for seed in [9, 11, 13] {
        let e = fig4(2.5, 16.0, seed);
        let mut with = e.scheduler_with_params("MLF-H", 3, mlfs::Params::default());
        met_with += urgent_met(&e.run(with.as_mut()));
        let mut without = e.scheduler_with_params(
            "MLF-H",
            3,
            mlfs::Params {
                use_urgency: false,
                ..mlfs::Params::default()
            },
        );
        met_without += urgent_met(&e.run(without.as_mut()));
    }
    assert!(
        met_with > met_without,
        "with {met_with} vs without {met_without}"
    );
}
