//! Cross-crate property-based tests: the simulation engine must keep
//! its invariants under arbitrary (valid) workloads and any scheduler.

use cluster::ClusterConfig;
use mlfs::{Mlfs, Params};
use mlfs_sim::engine::{run, SimConfig};
use mlfs_sim::ProgressModel;
use proptest::prelude::*;
use simcore::SimDuration;
use workload::{StopPolicy, TraceConfig, TraceGenerator};

fn cfg(servers: usize, progress: ProgressModel) -> SimConfig {
    SimConfig {
        cluster: ClusterConfig {
            servers,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1250.0,
            topology: cluster::Topology::default_flat(),
        },
        progress,
        max_time: SimDuration::from_hours(24 * 4),
        ..Default::default()
    }
}

fn trace(jobs: usize, seed: u64) -> Vec<workload::JobSpec> {
    TraceGenerator::new(TraceConfig {
        jobs,
        span: SimDuration::from_mins(45),
        duration_median_mins: 5.0,
        duration_sigma: 0.7,
        time_factor: 1.0,
        gpu_choices: vec![(1, 0.6), (2, 0.25), (4, 0.15)],
        algorithm_weights: [0.2; 5],
        param_server_prob: 0.5,
        previously_run_prob: 0.7,
        stop_policy: StopPolicy::OptStop,
        deadline_slack_hours: (0.5, 3.0),
        seed,
    })
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a whole simulation
        .. ProptestConfig::default()
    })]

    /// Core conservation invariants hold for any seed, job count,
    /// cluster size, scheduler and progress model.
    #[test]
    fn engine_invariants(
        seed in 0u64..1000,
        jobs in 5usize..25,
        servers in 2usize..6,
        pipelined in any::<bool>(),
        sched_idx in 0usize..4,
    ) {
        let progress = if pipelined {
            ProgressModel::Pipelined
        } else {
            ProgressModel::Gang
        };
        let name = ["MLF-H", "TensorFlow", "Gandiva", "Tiresias"][sched_idx];
        let mut s = baselines::by_name(name, seed).unwrap();
        let specs = trace(jobs, seed);
        let m = run(cfg(servers, progress), specs.clone(), s.as_mut());

        // Every submitted job is recorded exactly once.
        prop_assert_eq!(m.jobs.len(), jobs);
        prop_assert_eq!(m.jobs_submitted, jobs);
        // No finished-job tasks left on the cluster.
        prop_assert_eq!(m.leaked_tasks, 0);
        // JCT ≥ ideal runtime for every finished job.
        for j in &m.jobs {
            if let Some(jct) = j.jct_mins {
                let spec = &specs[j.job as usize];
                let ideal = spec.ideal_runtime(spec.max_iterations).as_mins_f64();
                prop_assert!(jct >= ideal * 0.999,
                    "job {} jct {jct} < ideal {ideal}", j.job);
            }
            // Accuracy is within the job's achievable range.
            let spec = &specs[j.job as usize];
            prop_assert!(j.accuracy_by_deadline >= -1e-12);
            prop_assert!(
                j.accuracy_by_deadline <= spec.curve.achievable_accuracy() + 1e-9
            );
            // met_accuracy consistent with the recorded values.
            prop_assert_eq!(
                j.met_accuracy,
                j.accuracy_by_deadline >= j.required_accuracy - 1e-12
            );
            // met_deadline consistent with finish time.
            if let Some(f) = j.finished {
                prop_assert_eq!(j.met_deadline, f <= j.deadline);
            } else {
                prop_assert!(!j.met_deadline);
            }
        }
        // Bandwidth and waiting are non-negative and finite.
        prop_assert!(m.bandwidth_mb.is_finite() && m.bandwidth_mb >= 0.0);
        prop_assert!(m.avg_waiting_secs().is_finite() && m.avg_waiting_secs() >= 0.0);
        // Decision times were measured for every round.
        prop_assert_eq!(m.decision_times_ms.len() as u64, m.rounds);
    }

    /// Gang progress is never faster than pipelined progress for the
    /// same workload and scheduler (pipelined dominates by design).
    #[test]
    fn gang_is_never_faster_than_pipelined(seed in 0u64..200) {
        let specs = trace(12, seed);
        let m_gang = run(
            cfg(3, ProgressModel::Gang),
            specs.clone(),
            &mut Mlfs::heuristic(Params::default()),
        );
        let m_pipe = run(
            cfg(3, ProgressModel::Pipelined),
            specs,
            &mut Mlfs::heuristic(Params::default()),
        );
        let f_gang = m_gang.jobs.iter().filter(|j| j.finished.is_some()).count();
        let f_pipe = m_pipe.jobs.iter().filter(|j| j.finished.is_some()).count();
        prop_assert!(f_pipe >= f_gang);
    }
}
