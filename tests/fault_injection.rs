//! Fault-injection integration tests: every figure scheduler must
//! survive server crashes — no panics, no leaked placements, every
//! evicted task either restarted or its job terminated with a
//! recorded outcome.

use mlfs_sim::{experiments, FaultConfig};

/// A small crash-heavy experiment: jobs arrive over a compressed span
/// while servers fail roughly hourly and take ~15 minutes to return.
fn crashy_experiment(seed: u64) -> experiments::Experiment {
    let mut e = experiments::fig4(1.0, 16.0, seed);
    e.name = format!("fault-smoke-{seed}");
    e.trace.jobs = 12;
    e.sim.fault = Some(FaultConfig {
        mtbf_hours: 0.25,
        mttr_hours: 0.25,
        schedule: Vec::new(),
        // Prime, so rollbacks rarely land exactly on a checkpoint
        // (many jobs advance an exact-integer iteration count per
        // round, and a divisor-of-that interval can lose zero work).
        checkpoint_iters: 17,
    });
    e
}

#[test]
fn every_scheduler_survives_server_crashes() {
    for name in baselines::FIGURE_SCHEDULERS {
        let e = crashy_experiment(3);
        let mut scheduler = e.scheduler(name, 3);
        let m = e.run(scheduler.as_mut());
        assert_eq!(m.jobs.len(), 12, "{name}: job records missing");
        assert_eq!(
            m.leaked_tasks, 0,
            "{name}: tasks left placed for finished jobs"
        );
        assert!(
            m.server_failures > 0,
            "{name}: the fault process never fired"
        );
        // Goodput accounting stays coherent under faults.
        assert!(m.gpu_hours_total > 0.0, "{name}: no GPU time accrued");
        assert!(
            m.goodput_gpu_hours() <= m.gpu_hours_total,
            "{name}: goodput exceeds gross GPU time"
        );
        // Every job's terminal state is recorded: finished jobs carry a
        // completion time; unfinished ones are still accounted for in
        // the records (stranded by the horizon, not lost).
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished > 0, "{name}: nothing finished under faults");
    }
}

#[test]
fn crashes_cost_throughput_but_not_correctness() {
    // Same workload with and without faults, MLFS end to end: faults
    // must surface as restarts/lost work, never as corruption.
    let seed = 5;
    let mut clean = experiments::fig4(1.0, 16.0, seed);
    clean.trace.jobs = 12;
    let faulty = crashy_experiment(seed);

    let mut s1 = clean.scheduler("MLFS", seed);
    let m_clean = clean.run(s1.as_mut());
    let mut s2 = faulty.scheduler("MLFS", seed);
    let m_faulty = faulty.run(s2.as_mut());

    assert_eq!(m_clean.server_failures, 0);
    assert_eq!(m_clean.task_restarts, 0);
    assert!(m_faulty.server_failures > 0);
    assert!(m_faulty.task_restarts > 0);
    assert!(m_faulty.lost_gpu_hours > 0.0);
    assert!(m_faulty.goodput_ratio() < 1.0);
    assert_eq!(m_faulty.leaked_tasks, 0);
    assert_eq!(m_clean.goodput_ratio(), 1.0);
}
