//! Engine edge cases and failure injection across crates.

use cluster::{ClusterConfig, JobId, ResourceVec, ServerId, TaskId, Topology};
use mlfs::{Action, Scheduler, SchedulerContext};
use mlfs_sim::engine::{run, SimConfig};
use simcore::{SimDuration, SimTime};
use workload::dag::{CommStructure, Dag};
use workload::job::{JobSpec, TaskSpec};
use workload::StopPolicy;
use workload::{LearningProfile, MlAlgorithm};

fn one_server_cfg() -> SimConfig {
    SimConfig {
        cluster: ClusterConfig {
            servers: 1,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        },
        max_time: SimDuration::from_hours(10),
        utilization_noise: 0.0,
        ..Default::default()
    }
}

fn tiny_job(id: u32, arrival_secs: u64, iters: u64) -> JobSpec {
    let jid = JobId(id);
    JobSpec {
        id: jid,
        algorithm: MlAlgorithm::Svm,
        arrival: SimTime::from_secs(arrival_secs),
        deadline: SimTime::from_secs(arrival_secs) + SimDuration::from_hours(2),
        required_accuracy: 0.5,
        urgency: 5,
        max_iterations: iters,
        tasks: vec![TaskSpec {
            id: TaskId::new(jid, 0),
            partition_mb: 10.0,
            demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
            gpu_share: 0.5,
            compute: SimDuration::from_secs(1),
            is_param_server: false,
        }],
        dag: Dag::independent(1),
        comm: CommStructure::AllReduce,
        comm_mb: 50.0,
        model_mb: 10.0,
        train_data_mb: 100.0,
        curve: LearningProfile::new(1.0, 0.1, 0.05, 0.8),
        stop_policy: StopPolicy::MaxIterations,
        allow_demotion: true,
        predicted_runtime: SimDuration::from_secs(iters),
        previously_run: true,
    }
}

/// A scheduler that deliberately emits garbage — the engine must
/// reject every invalid action and never panic or corrupt state.
struct Chaos;

impl Scheduler for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        // Nonexistent server, nonexistent job, double placement,
        // migrating a waiting task, evicting a waiting task, stopping
        // a nonexistent job…
        if let Some(&t) = ctx.queue.first() {
            actions.push(Action::Place {
                task: t,
                server: ServerId(9999),
            });
            actions.push(Action::Place {
                task: t,
                server: ServerId(0),
            });
            actions.push(Action::Place {
                task: t,
                server: ServerId(0),
            }); // duplicate
            actions.push(Action::Migrate {
                task: TaskId::new(JobId(777), 0),
                to: ServerId(0),
            });
        }
        actions.push(Action::StopJob {
            job: JobId(888),
            reason: workload::StopReason::OptStop,
        });
        actions.push(Action::Evict {
            task: TaskId::new(JobId(999), 3),
        });
        actions
    }
}

#[test]
fn engine_survives_chaotic_scheduler() {
    let specs = vec![tiny_job(0, 0, 100), tiny_job(1, 30, 100)];
    let m = run(one_server_cfg(), specs, &mut Chaos);
    // The valid placement (second Place) goes through; everything
    // invalid is counted and skipped.
    assert!(m.invalid_actions > 0);
    assert_eq!(m.leaked_tasks, 0);
    let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
    assert_eq!(finished, 2, "valid placements should still finish jobs");
}

/// A scheduler that never places anything: jobs must never finish and
/// must accrue waiting time, with frozen zero accuracy at deadline.
struct DoNothing;

impl Scheduler for DoNothing {
    fn name(&self) -> &'static str {
        "noop"
    }
    fn schedule(&mut self, _ctx: &SchedulerContext<'_>) -> Vec<Action> {
        Vec::new()
    }
}

#[test]
fn unscheduled_jobs_wait_forever_and_miss_deadlines() {
    let specs = vec![tiny_job(0, 0, 50)];
    let m = run(one_server_cfg(), specs, &mut DoNothing);
    let j = &m.jobs[0];
    assert!(j.finished.is_none());
    assert!(!j.met_deadline);
    assert!(!j.met_accuracy);
    assert_eq!(j.accuracy_by_deadline, 0.0);
    assert!(j.waiting_secs > 3600.0, "waited {}s", j.waiting_secs);
}

#[test]
fn zero_jobs_is_a_clean_noop() {
    let m = run(one_server_cfg(), Vec::new(), &mut DoNothing);
    assert_eq!(m.jobs_submitted, 0);
    assert!(m.jobs.is_empty());
    assert_eq!(m.makespan_hours, 0.0);
}

#[test]
fn simultaneous_arrivals_are_all_admitted() {
    // 6 identical jobs arriving at the same instant; capacity for 4
    // concurrent tasks (2 GPUs × 0.5 share × h_r...).
    let specs: Vec<JobSpec> = (0..6).map(|i| tiny_job(i, 100, 200)).collect();
    let m = run(
        one_server_cfg(),
        specs,
        &mut mlfs::Mlfs::heuristic(mlfs::Params::default()),
    );
    assert_eq!(m.jobs_submitted, 6);
    let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
    assert_eq!(finished, 6);
    // Later-scheduled jobs must show queueing delay.
    assert!(m.avg_waiting_secs() > 0.0);
}

#[test]
fn max_time_caps_the_simulation() {
    let mut cfg = one_server_cfg();
    cfg.max_time = SimDuration::from_mins(5);
    // A job needing ~1000 s of compute cannot finish in 5 minutes
    // (it can — 300 s... make it 10,000 iterations = ~2.8 h).
    let specs = vec![tiny_job(0, 0, 10_000)];
    let m = run(
        cfg,
        specs,
        &mut mlfs::Mlfs::heuristic(mlfs::Params::default()),
    );
    assert!(m.jobs[0].finished.is_none());
    assert_eq!(m.leaked_tasks, 0);
}

#[test]
fn deadline_accuracy_interpolates_mid_round() {
    // One job whose deadline falls strictly between scheduler rounds:
    // the frozen accuracy must equal the curve at the deadline-time
    // iteration count, not at a round boundary.
    let mut spec = tiny_job(0, 0, 10_000);
    spec.deadline = SimTime::from_secs(90); // 1.5 rounds in
    let m = run(
        one_server_cfg(),
        vec![spec.clone()],
        &mut mlfs::Mlfs::heuristic(mlfs::Params::default()),
    );
    let j = &m.jobs[0];
    // Placed at t=0 round, running 1 s/iter: ~90 iterations by the
    // deadline (placement occurs at the first round, t=0).
    let expect = spec.curve.accuracy_at(90.0);
    assert!(
        (j.accuracy_by_deadline - expect).abs()
            < spec.curve.accuracy_at(91.0) - spec.curve.accuracy_at(89.0) + 0.02,
        "frozen {} vs expected ~{}",
        j.accuracy_by_deadline,
        expect
    );
}
