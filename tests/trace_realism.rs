//! Statistical tests on the synthetic Philly-like trace: the
//! substitution for the Microsoft trace must reproduce the marginals
//! the paper relies on (DESIGN.md's substitution table).

use workload::{MlAlgorithm, TraceConfig, TraceGenerator};

fn big_trace(seed: u64) -> Vec<workload::JobSpec> {
    TraceGenerator::new(TraceConfig::paper_real(3.0, 1.0, seed)).generate()
}

#[test]
fn gpu_count_distribution_is_skewed_small() {
    let jobs = big_trace(1);
    let n = jobs.len() as f64;
    let frac = |k: usize| jobs.iter().filter(|j| j.worker_count() == k).count() as f64 / n;
    // The paper draws from {1,2,4,8,16,32}; Philly-like skew means
    // most jobs are small.
    assert!(frac(1) > 0.25, "1-GPU fraction {}", frac(1));
    assert!(frac(32) < 0.08, "32-GPU fraction {}", frac(32));
    assert!(frac(1) > frac(4), "distribution must be decreasing");
    assert!(frac(4) > frac(16));
    // And nothing outside the choice set.
    for j in &jobs {
        assert!([1, 2, 4, 8, 16, 32].contains(&j.worker_count()));
    }
}

#[test]
fn durations_are_heavy_tailed() {
    let jobs = big_trace(2);
    let mut runtimes: Vec<f64> = jobs
        .iter()
        .map(|j| j.predicted_runtime.as_mins_f64())
        .collect();
    runtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = runtimes[runtimes.len() / 2];
    let p99 = runtimes[(runtimes.len() as f64 * 0.99) as usize];
    // Heavy tail: p99 well above 5× the median (log-normal σ=1.3
    // implies ~20×), as in DNN cluster traces.
    assert!(p99 > 5.0 * median, "median {median}, p99 {p99}");
}

#[test]
fn arrivals_show_diurnal_pattern() {
    // With time_factor 1, weekday office hours should receive clearly
    // more arrivals than night hours.
    let jobs = big_trace(3);
    let mut day = 0usize; // 9:00–17:00
    let mut night = 0usize; // 0:00–8:00
    for j in &jobs {
        let hod = j.arrival.as_hours_f64() % 24.0;
        if (9.0..17.0).contains(&hod) {
            day += 1;
        } else if hod < 8.0 {
            night += 1;
        }
    }
    assert!(
        day as f64 > night as f64 * 1.2,
        "day {day} vs night {night}"
    );
}

#[test]
fn mix_covers_all_algorithms_with_requested_weights() {
    let jobs = big_trace(4);
    let n = jobs.len() as f64;
    // Weights [0.20, 0.25, 0.15, 0.30, 0.10] ± 4 points.
    let expect = [0.20, 0.25, 0.15, 0.30, 0.10];
    for (i, a) in MlAlgorithm::ALL.iter().enumerate() {
        let frac = jobs.iter().filter(|j| j.algorithm == *a).count() as f64 / n;
        assert!(
            (frac - expect[i]).abs() < 0.04,
            "{}: {frac} vs {}",
            a.name(),
            expect[i]
        );
    }
}

#[test]
fn accuracy_requirements_are_feasible_but_tight() {
    for j in big_trace(5) {
        let achievable = j.curve.achievable_accuracy();
        assert!(j.required_accuracy < achievable);
        assert!(
            j.required_accuracy > achievable * 0.8,
            "requirement too loose: {} vs {achievable}",
            j.required_accuracy
        );
    }
}

#[test]
fn time_factor_compresses_consistently() {
    // Same seed, different compression: job count identical, spans
    // scale, iteration budgets stay within sane bounds.
    let a = TraceGenerator::new(TraceConfig::paper_real(0.5, 1.0, 9)).generate();
    let b = TraceGenerator::new(TraceConfig::paper_real(0.5, 8.0, 9)).generate();
    assert_eq!(a.len(), b.len());
    let last_a = a.last().unwrap().arrival.as_hours_f64();
    let last_b = b.last().unwrap().arrival.as_hours_f64();
    assert!(
        last_a > last_b * 4.0,
        "span compression: {last_a} vs {last_b}"
    );
}
