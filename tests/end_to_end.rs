//! End-to-end integration tests: full pipeline (trace generation →
//! cluster simulation → scheduler → metrics) across crates.

use cluster::ClusterConfig;
use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::engine::{run, SimConfig};
use simcore::SimDuration;
use workload::{StopPolicy, TraceConfig, TraceGenerator};

/// A small but non-trivial workload on a 4-server cluster.
fn small_experiment(seed: u64, jobs: usize) -> (SimConfig, Vec<workload::JobSpec>) {
    let cfg = SimConfig {
        cluster: ClusterConfig {
            servers: 4,
            gpus_per_server: 4,
            gpu_capacity: 1.0,
            cpu_cores: 32.0,
            memory_gb: 244.0,
            nic_mbps: 1250.0,
            topology: cluster::Topology::default_flat(),
        },
        max_time: SimDuration::from_hours(24 * 7),
        ..Default::default()
    };
    let trace = TraceConfig {
        jobs,
        span: SimDuration::from_hours(2),
        duration_median_mins: 8.0,
        duration_sigma: 0.8,
        time_factor: 1.0,
        gpu_choices: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
        algorithm_weights: [0.2; 5],
        param_server_prob: 0.5,
        previously_run_prob: 0.7,
        stop_policy: StopPolicy::OptStop,
        deadline_slack_hours: (0.5, 4.0),
        seed,
    };
    (cfg, TraceGenerator::new(trace).generate())
}

#[test]
fn every_scheduler_completes_the_workload() {
    let (cfg, specs) = small_experiment(11, 25);
    for name in baselines::FIGURE_SCHEDULERS {
        let mut s = baselines::by_name(name, 5).unwrap();
        let m = run(cfg.clone(), specs.clone(), s.as_mut());
        assert_eq!(m.jobs_submitted, 25, "{name}");
        assert_eq!(m.jobs.len(), 25, "{name}");
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished >= 23, "{name}: only {finished}/25 jobs finished");
        assert_eq!(m.leaked_tasks, 0, "{name} leaked tasks");
        assert!(m.avg_jct_mins() > 0.0, "{name}");
        assert!(m.bandwidth_mb >= 0.0, "{name}");
        assert!(!m.decision_times_ms.is_empty(), "{name}");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let (cfg, specs) = small_experiment(13, 20);
    for name in ["MLF-H", "MLFS", "Gandiva", "Tiresias", "RL"] {
        let m1 = run(
            cfg.clone(),
            specs.clone(),
            baselines::by_name(name, 9).unwrap().as_mut(),
        );
        let m2 = run(
            cfg.clone(),
            specs.clone(),
            baselines::by_name(name, 9).unwrap().as_mut(),
        );
        assert_eq!(m1.avg_jct_mins(), m2.avg_jct_mins(), "{name}");
        assert_eq!(m1.bandwidth_mb, m2.bandwidth_mb, "{name}");
        assert_eq!(m1.deadline_ratio(), m2.deadline_ratio(), "{name}");
        assert_eq!(m1.migrations, m2.migrations, "{name}");
    }
}

#[test]
fn mlfh_emits_no_invalid_actions() {
    // MLFS components must be internally consistent with the engine's
    // validation (baselines may race stale state; MLF-H must not).
    let (cfg, specs) = small_experiment(17, 30);
    let m = run(cfg, specs, &mut Mlfs::heuristic(Params::default()));
    assert_eq!(m.invalid_actions, 0);
}

#[test]
fn jct_at_least_ideal_and_waiting_consistent() {
    let (cfg, specs) = small_experiment(19, 20);
    let ideal: std::collections::BTreeMap<u32, f64> = specs
        .iter()
        .map(|s| (s.id.0, s.ideal_runtime(s.max_iterations).as_mins_f64()))
        .collect();
    let m = run(cfg, specs, &mut Mlfs::heuristic(Params::default()));
    for j in &m.jobs {
        if let Some(jct) = j.jct_mins {
            assert!(jct >= ideal[&j.job] * 0.999, "job {}", j.job);
        }
        assert!(j.waiting_secs >= 0.0);
        // Waiting can never exceed the job's total time in the system.
        if let (Some(f), a) = (j.finished, j.arrival) {
            assert!(j.waiting_secs <= f.since(a).as_secs_f64() + 1e-6);
        }
    }
}

#[test]
fn full_mlfs_improves_over_fair_share_under_load() {
    // The headline claim at smoke-test scale: on an overloaded
    // cluster, MLFS beats the fair-share TensorFlow scheduler on JCT
    // and deadline ratio.
    let (mut cfg, specs) = small_experiment(23, 60);
    cfg.cluster.servers = 2; // force contention
    let m_fair = run(cfg.clone(), specs.clone(), &mut baselines::BorgFair::new());
    let mut mlfs_sched = Mlfs::full(
        Params::default(),
        MlfRlConfig {
            imitation_rounds: usize::MAX, // pure MLF-H decisions + MLF-C
            ..Default::default()
        },
    );
    let m_mlfs = run(cfg, specs, &mut mlfs_sched);
    assert!(
        m_mlfs.avg_jct_mins() < m_fair.avg_jct_mins(),
        "MLFS {} vs TensorFlow {}",
        m_mlfs.avg_jct_mins(),
        m_fair.avg_jct_mins()
    );
    assert!(
        m_mlfs.deadline_ratio() >= m_fair.deadline_ratio(),
        "MLFS {} vs TensorFlow {}",
        m_mlfs.deadline_ratio(),
        m_fair.deadline_ratio()
    );
}

#[test]
fn stop_reasons_are_recorded_for_mlfc_stops() {
    let (mut cfg, specs) = small_experiment(29, 40);
    cfg.cluster.servers = 2;
    let mut sched = Mlfs::full(
        Params::default(),
        MlfRlConfig {
            imitation_rounds: usize::MAX,
            ..Default::default()
        },
    );
    let m = run(cfg, specs, &mut sched);
    // Under overload with OptStop policies, some jobs must stop early
    // (fewer iterations than max — visible as shorter JCT than ideal
    // full-budget runtime for at least one job).
    let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
    assert!(finished > 0);
}
