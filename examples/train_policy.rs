//! The offline learning loop, end to end: record a decision trace,
//! replay it into a supervised dataset, pretrain a warm-start policy,
//! checkpoint it to disk, and evaluate the reloaded checkpoint against
//! MLF-H on an unseen trace (docs/TRAINING.md).
//!
//! ```sh
//! cargo run --release --example train_policy
//! # or via the wrapper (flags: --x, --tf, --seed, --epochs, --out):
//! scripts/train.sh --out target/policy.json
//! ```

use mlfs::features::FEATURE_DIM;
use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::experiments::fig4;

/// `--name value` flag lookup over `std::env::args`.
fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let x: f64 = flag("x").and_then(|v| v.parse().ok()).unwrap_or(0.25);
    let tf: f64 = flag("tf").and_then(|v| v.parse().ok()).unwrap_or(16.0);
    let seed: u64 = flag("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let epochs: usize = flag("epochs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let out = flag("out").unwrap_or_else(|| "target/policy.json".to_string());
    let trace_path = flag("trace").unwrap_or_else(|| "target/train_policy_trace.jsonl".to_string());

    // 1. Record: MLF-RL in full-imitation mode schedules exactly like
    //    MLF-H while the tracer writes one decision_example per
    //    teacher decision.
    let mut exp = fig4(x, tf, seed);
    exp.sim.trace = obs::TraceConfig::Jsonl {
        path: std::path::PathBuf::from(&trace_path),
    };
    let mut teacher = Mlfs::rl(
        Params::default(),
        MlfRlConfig {
            imitation_rounds: usize::MAX / 2,
            explore: false,
            seed,
            ..Default::default()
        },
    );
    let m_teacher = exp.run(&mut teacher);
    println!(
        "recorded {} rounds of MLF-H decisions to {trace_path}",
        m_teacher.rounds
    );

    // 2. Replay: filter the trace down to imitation decisions and
    //    rebuild the (candidate features, chosen index) pairs.
    let reader = obs::TraceReader::open(std::path::Path::new(&trace_path))
        .expect("recorded trace should exist");
    let mut builder = rl::DatasetBuilder::new(FEATURE_DIM).source("imitation");
    builder.ingest_all(reader);
    let dataset = builder.finish();
    println!(
        "replayed {} examples (fingerprint {:016x})",
        dataset.len(),
        dataset.fingerprint()
    );

    // 3. Pretrain: supervised imitation with the batched nn passes.
    let cfg = rl::PretrainConfig {
        epochs,
        seed,
        ..Default::default()
    };
    let (policy, report) = rl::warm_start(&dataset, &cfg);
    println!(
        "pretrained {} epochs: loss {:.3} -> {:.3}, agreement {:.3}",
        report.epoch_losses.len(),
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0),
        report.final_agreement
    );

    // 4. Checkpoint: the policy serializes to JSON; reloading it gives
    //    back bit-identical weights.
    let json = serde_json::to_string(&policy).expect("policy serializes");
    std::fs::write(&out, &json).expect("checkpoint written");
    let reloaded: rl::ScoringPolicy = serde_json::from_str(&json).expect("checkpoint parses");
    println!("checkpoint: {out} ({} bytes)", json.len());

    // 5. Evaluate: warm-start a frozen scheduler from the reloaded
    //    checkpoint on an unseen trace and compare with MLF-H.
    let mut eval_exp = fig4(x, tf, seed);
    eval_exp.trace.seed = seed.wrapping_add(1234);
    let mut warm = Mlfs::rl(
        Params::default(),
        MlfRlConfig {
            explore: false,
            online_training: false,
            seed,
            ..Default::default()
        },
    );
    warm.rl_mut()
        .expect("RL variant has an RL component")
        .import_policy(reloaded);
    let m_warm = eval_exp.run(&mut warm);
    let m_h = eval_exp.run(&mut Mlfs::heuristic(Params::default()));
    println!("\nunseen trace (same distribution):");
    println!(
        "  warm-started MLF-RL (frozen): avg JCT {:.1} min, deadlines {:.1} %",
        m_warm.avg_jct_mins(),
        100.0 * m_warm.deadline_ratio()
    );
    println!(
        "  MLF-H                       : avg JCT {:.1} min, deadlines {:.1} %",
        m_h.avg_jct_mins(),
        100.0 * m_h.deadline_ratio()
    );
}
