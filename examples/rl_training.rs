//! Watch MLF-RL learn (§3.4): imitation of MLF-H, the switch to RL
//! decisions, and REINFORCE fine-tuning on the Eq. 7 reward.
//!
//! Prints the policy's agreement with MLF-H after the imitation phase
//! and the reward trajectory across training episodes.
//!
//! ```sh
//! cargo run --release --example rl_training
//! ```

use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::experiments::fig4;

fn main() {
    let e = fig4(0.25, 16.0, 11);
    println!(
        "workload: {} jobs; imitation budget: {} rounds (half the trace, as in §4.1)\n",
        e.trace.jobs,
        e.expected_rounds() / 2
    );

    // Phase 1+2 happen inside one run: MLF-RL acts as MLF-H while
    // imitating, then switches to policy decisions with online
    // REINFORCE.
    let rl_cfg = MlfRlConfig {
        imitation_rounds: e.expected_rounds() / 2,
        explore: true,
        seed: 5,
        ..Default::default()
    };
    let mut warm = Mlfs::rl(Params::default(), rl_cfg.clone());
    let warm_metrics = e.run(&mut warm);
    let rl = warm.rl_mut().expect("RL component");
    println!("after the warm-up run:");
    println!("  episodes trained : {}", rl.episodes_trained);
    println!("  converged        : {}", rl.is_converged());
    println!(
        "  avg JCT (warm-up): {:.1} min",
        warm_metrics.avg_jct_mins()
    );

    // Transfer the trained policy into a fresh evaluation run
    // (greedy) and compare against plain MLF-H on the same trace.
    let policy = rl.export_policy();
    let mut eval = Mlfs::rl(Params::default(), rl_cfg);
    {
        let r = eval.rl_mut().unwrap();
        r.import_policy(policy);
        r.set_explore(false);
    }
    let mut eval_exp = e.clone();
    eval_exp.trace.seed = 1234; // unseen trace from the same distribution
    let m_rl = eval_exp.run(&mut eval);
    let m_h = eval_exp.run(&mut Mlfs::heuristic(Params::default()));

    println!("\nevaluation on an unseen trace (same distribution):");
    println!(
        "  MLF-RL (trained, greedy): avg JCT {:.1} min, deadline {:.1} %, accuracy {:.3}",
        m_rl.avg_jct_mins(),
        100.0 * m_rl.deadline_ratio(),
        m_rl.avg_accuracy()
    );
    println!(
        "  MLF-H  (heuristic)      : avg JCT {:.1} min, deadline {:.1} %, accuracy {:.3}",
        m_h.avg_jct_mins(),
        100.0 * m_h.deadline_ratio(),
        m_h.avg_accuracy()
    );
}
