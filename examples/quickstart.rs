//! Quickstart: simulate an 80-GPU cluster scheduling a mixed ML
//! workload with MLFS, and print the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::engine::{run, SimConfig};
use workload::{TraceConfig, TraceGenerator};

fn main() {
    // The paper's real testbed: 20 servers × 4 V100s (§4.1), with a
    // quarter-size workload (155 jobs over one compressed week).
    let sim_cfg = SimConfig::default();
    let trace = TraceConfig::paper_real(0.25, 16.0, 42);
    println!(
        "cluster: {} servers / {} GPUs;  workload: {} jobs over {:.1} h (compressed)",
        sim_cfg.cluster.servers,
        sim_cfg.cluster.total_gpus(),
        trace.jobs,
        trace.effective_span().as_hours_f64(),
    );

    let jobs = TraceGenerator::new(trace).generate();

    // Full MLFS: RL scheduling (bootstrapped by MLF-H imitation) plus
    // MLF-C load control, with the paper's default parameters.
    let mut scheduler = Mlfs::full(
        Params::default(),
        MlfRlConfig {
            imitation_rounds: 300,
            ..Default::default()
        },
    );
    let m = run(sim_cfg, jobs, &mut scheduler);

    println!("scheduler            : {}", m.scheduler);
    println!(
        "jobs finished        : {}/{}",
        m.jobs.iter().filter(|j| j.finished.is_some()).count(),
        m.jobs_submitted
    );
    println!("average JCT          : {:.1} min", m.avg_jct_mins());
    println!(
        "JCT < 100 min        : {:.0} % of jobs",
        100.0 * m.jct_cdf_at(100.0)
    );
    println!("deadline guarantee   : {:.1} %", 100.0 * m.deadline_ratio());
    println!("accuracy guarantee   : {:.1} %", 100.0 * m.accuracy_ratio());
    println!("average accuracy     : {:.3}", m.avg_accuracy());
    println!("average waiting time : {:.1} s", m.avg_waiting_secs());
    println!("bandwidth cost       : {:.2} TB", m.bandwidth_tb());
    println!("makespan             : {:.1} h", m.makespan_hours);
    println!(
        "scheduler overhead   : {:.3} ms/round over {} rounds",
        m.avg_decision_ms(),
        m.rounds
    );
}
