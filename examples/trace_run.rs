//! End-to-end observability demo: run one fig. 4 cell with a JSONL
//! trace sink attached, then inspect the run three ways —
//!
//! 1. the aggregated `RoundTelemetry` table folded into `RunMetrics`,
//! 2. a replay of the JSONL trace into per-event counts, and
//! 3. the span timings as flamegraph-compatible folded stacks.
//!
//! ```sh
//! cargo run --release --example trace_run [SCHEDULER]
//! # trace   -> target/trace/trace_run.jsonl
//! # stacks  -> target/trace/trace_run.folded
//! ```
//!
//! `SCHEDULER` is any figure-scheduler name (default `MLFS`); see
//! `baselines::FIGURE_SCHEDULERS`. The folded file feeds straight into
//! `flamegraph.pl` / `inferno-flamegraph`; `scripts/profile.sh` wraps
//! this binary into the documented profiling workflow
//! (docs/OBSERVABILITY.md).

use mlfs_repro::obs;
use mlfs_sim::engine::Simulation;
use std::collections::BTreeMap;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "MLFS".into());
    if !baselines::FIGURE_SCHEDULERS.contains(&name.as_str()) {
        eprintln!(
            "unknown scheduler {name:?}; pick one of {:?}",
            baselines::FIGURE_SCHEDULERS
        );
        std::process::exit(1);
    }

    let out_dir = std::path::Path::new("target/trace");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let trace_path = out_dir.join("trace_run.jsonl");
    let folded_path = out_dir.join("trace_run.folded");

    // A small fig. 4 cell: x = 0.25 week of jobs on the paper testbed.
    let mut e = mlfs_sim::experiments::fig4(0.25, 64.0, 7);
    e.trace.jobs = 20;
    e.sim.trace = obs::TraceConfig::Jsonl {
        path: trace_path.clone(),
    };

    // Keep a handle on the tracer before `run` consumes the
    // simulation: folded span stacks live there, not in the metrics.
    let sim = Simulation::new(e.sim.clone(), e.jobs());
    let tracer = sim.tracer();
    let mut scheduler = e.scheduler(&name, 7);
    println!("running {name} on a 20-job fig. 4 cell (seed 7)...\n");
    let m = sim.run(scheduler.as_mut());

    // 1. Aggregated per-round telemetry (always on, even untraced).
    println!("{}", m.telemetry_table());

    // 2. Replay the JSONL trace into per-event counts.
    let text = std::fs::read_to_string(&trace_path).unwrap_or_default();
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut skipped = 0u64;
    for line in text.lines() {
        match obs::TraceEvent::from_json_line(line) {
            Some(ev) => *counts.entry(ev.tag()).or_insert(0) += 1,
            None => skipped += 1,
        }
    }
    let mut t = metrics::Table::new(&["trace event", "count"]);
    for (tag, n) in &counts {
        t.row(vec![tag.to_string(), n.to_string()]);
    }
    println!("{t}");
    if skipped > 0 {
        println!("({skipped} unparseable lines skipped)");
    }

    // 3. Folded span stacks for flamegraph tooling.
    let folded = tracer.folded_stacks();
    if let Err(e) = std::fs::write(&folded_path, &folded) {
        eprintln!("cannot write {}: {e}", folded_path.display());
        std::process::exit(1);
    }
    println!(
        "rounds: {}   avg JCT: {:.1} min   trace: {}   folded stacks: {}",
        m.rounds,
        m.avg_jct_mins(),
        trace_path.display(),
        folded_path.display()
    );
    println!(
        "render: flamegraph.pl {} > flame.svg",
        folded_path.display()
    );
}
