//! Fault sweep: goodput vs throughput under server crashes.
//!
//! Runs the fault-sweep schedulers (MLFS, Tiresias, FIFO) across a
//! range of per-server MTBF values and prints, per cell, the goodput
//! ratio, restart/failure counts and lost GPU-hours — the robustness
//! study behind the "Fault tolerance" section of DESIGN.md.
//!
//! ```sh
//! cargo run --release --example fault_sweep -- [x] [time_factor]
//! cargo run --release --example fault_sweep -- --smoke
//! ```
//!
//! `--smoke` runs one tiny crash-heavy cell and asserts the fault
//! machinery actually fired (used by CI).

use metrics::Table;
use mlfs_sim::experiments::{fault_sweep, FAULT_SWEEP_SCHEDULERS};

/// Checkpoint interval for every cell: prime, so rollbacks rarely
/// land exactly on a checkpoint boundary (many jobs advance an
/// exact-integer iteration count per round).
const CHECKPOINT_ITERS: u64 = 499;

fn smoke() {
    let mut e = fault_sweep(1.0, 16.0, 0.25, 17, 3);
    e.trace.jobs = 16;
    let mut s = e.scheduler("MLFS", 3);
    let m = e.run(s.as_mut());
    assert!(
        m.server_failures > 0,
        "smoke: the fault process never fired"
    );
    assert!(m.task_restarts > 0, "smoke: no task was ever restarted");
    assert_eq!(m.leaked_tasks, 0, "smoke: placements leaked");
    let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
    assert!(finished > 0, "smoke: nothing finished under faults");
    println!(
        "fault smoke ok: {} failures, {} restarts, {:.3} lost GPU-h, {}/{} jobs finished",
        m.server_failures,
        m.task_restarts,
        m.lost_gpu_hours,
        finished,
        m.jobs.len()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let x: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let tf: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);

    let mut table = Table::new(&[
        "scheduler",
        "MTBF (h)",
        "failures",
        "restarts",
        "lost GPU-h",
        "goodput %",
        "avg JCT (min)",
        "finished",
    ]);
    // MTBF 0 = fault-free control; then increasingly flaky clusters.
    for mtbf in [0.0, 500.0, 100.0, 24.0, 8.0] {
        let e = fault_sweep(x, tf, mtbf, CHECKPOINT_ITERS, 42);
        for name in FAULT_SWEEP_SCHEDULERS {
            let mut s = e.scheduler(name, 7);
            let m = e.run(s.as_mut());
            let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
            table.row(vec![
                name.to_string(),
                format!("{mtbf:.0}"),
                format!("{}", m.server_failures),
                format!("{}", m.task_restarts),
                format!("{:.2}", m.lost_gpu_hours),
                format!("{:.2}", 100.0 * m.goodput_ratio()),
                format!("{:.1}", m.avg_jct_mins()),
                format!("{}/{}", finished, m.jobs.len()),
            ]);
        }
    }
    println!("{table}");
}
