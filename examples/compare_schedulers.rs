//! Run every scheduler of Figs. 4–5 on the same workload and print a
//! comparison table (one row per legend entry).
//!
//! ```sh
//! cargo run --release --example compare_schedulers -- [x] [time_factor]
//! ```
//!
//! `x` scales the job count (155·4x jobs; paper x ∈ {¼,½,1,2,3}), and
//! `time_factor` compresses simulated time (see DESIGN.md).

use metrics::Table;
use mlfs_sim::experiments::fig4;

fn main() {
    let x: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let tf: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let e = fig4(x, tf, 42);
    println!(
        "fig4-style run: {} jobs on {} GPUs, ~{} scheduler rounds\n",
        e.trace.jobs,
        e.sim.cluster.total_gpus(),
        e.expected_rounds()
    );

    let mut table = Table::new(&[
        "scheduler",
        "avg JCT (min)",
        "deadline %",
        "accuracy %",
        "avg acc",
        "wait (s)",
        "bw (TB)",
        "makespan (h)",
        "sched (ms)",
    ]);
    for name in baselines::FIGURE_SCHEDULERS {
        let mut s = e.trained_scheduler(name, 7);
        let m = e.run(s.as_mut());
        table.row(vec![
            name.to_string(),
            format!("{:.1}", m.avg_jct_mins()),
            format!("{:.1}", 100.0 * m.deadline_ratio()),
            format!("{:.1}", 100.0 * m.accuracy_ratio()),
            format!("{:.3}", m.avg_accuracy()),
            format!("{:.1}", m.avg_waiting_secs()),
            format!("{:.2}", m.bandwidth_tb()),
            format!("{:.1}", m.makespan_hours),
            format!("{:.3}", m.avg_decision_ms()),
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper §4.2.1): JCT MLFS < MLF-RL < MLF-H < Graphene < Tiresias ≈ HyperSched ≈ RL ≈ Gandiva < TensorFlow ⪅ SLAQ.");
}
