//! MLF-C system load control under overload (§3.5, Fig. 9).
//!
//! A deliberately under-provisioned cluster receives a burst of jobs.
//! We run MLFS with and without MLF-C and show how stop-policy
//! enforcement (OptStop / required-accuracy stopping, plus demotion
//! under overload) rescues JCT and the accuracy guarantee ratio.
//!
//! ```sh
//! cargo run --release --example overload_control
//! ```

use cluster::ClusterConfig;
use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::engine::{run, SimConfig};
use workload::{TraceConfig, TraceGenerator};

fn main() {
    // Five servers only (20 GPUs) but a half-scale week of jobs: the
    // queue will back up, which is exactly when MLF-C matters.
    let sim_cfg = SimConfig {
        cluster: ClusterConfig {
            servers: 5,
            ..ClusterConfig::paper_testbed()
        },
        ..Default::default()
    };
    let jobs = TraceGenerator::new(TraceConfig::paper_real(0.5, 16.0, 21)).generate();
    println!(
        "cluster: {} GPUs;  workload: {} jobs (deliberately overloaded)\n",
        sim_cfg.cluster.total_gpus(),
        jobs.len()
    );

    for (label, use_mlfc) in [("MLFS with MLF-C", true), ("MLFS without MLF-C", false)] {
        let params = Params {
            use_mlfc,
            ..Params::default()
        };
        let mut sched = Mlfs::full(
            params,
            MlfRlConfig {
                imitation_rounds: 200,
                ..Default::default()
            },
        );
        let m = run(sim_cfg.clone(), jobs.clone(), &mut sched);
        println!("{label}:");
        println!("  average JCT          : {:.1} min", m.avg_jct_mins());
        println!(
            "  accuracy guarantee   : {:.1} %",
            100.0 * m.accuracy_ratio()
        );
        println!(
            "  deadline guarantee   : {:.1} %",
            100.0 * m.deadline_ratio()
        );
        println!("  average waiting time : {:.0} s", m.avg_waiting_secs());
        println!(
            "  finished             : {}/{}\n",
            m.jobs.iter().filter(|j| j.finished.is_some()).count(),
            m.jobs_submitted
        );
    }
    println!("(Fig. 9's claim: MLF-C improves the accuracy guarantee ratio by 17–23% and average JCT by 28–42% under overload.)");
}
