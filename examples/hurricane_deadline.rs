//! The paper's motivating scenario (§1, Fig. 1): an *urgent* job — a
//! hurricane-path prediction that must finish before landfall with
//! high accuracy — competes with a fleet of routine training jobs.
//!
//! We submit the same workload twice to MLF-H: once with the urgency
//! coefficient enabled (Eq. 2's `L_J`) and once with it ablated, and
//! show how urgency changes the critical job's fate — the single-job
//! view of the paper's Fig. 6.
//!
//! ```sh
//! cargo run --release --example hurricane_deadline
//! ```

use cluster::JobId;
use mlfs::{Mlfs, Params};
use mlfs_sim::engine::{run, SimConfig};
use simcore::{SimDuration, SimTime};
use workload::{JobSpec, StopPolicy, TraceConfig, TraceGenerator};

/// Make job `id` the "hurricane job": maximum urgency, tight deadline,
/// high accuracy requirement.
fn make_urgent(spec: &mut JobSpec) {
    spec.urgency = 10;
    // Landfall in 40 minutes of compressed time.
    spec.deadline = spec.arrival + SimDuration::from_mins(40);
    spec.required_accuracy = spec.curve.achievable_accuracy() * 0.93;
    spec.stop_policy = StopPolicy::RequiredAccuracy;
}

fn main() {
    // A busy quarter-scale week on the 80-GPU testbed.
    let mut jobs = TraceGenerator::new(TraceConfig::paper_real(0.5, 16.0, 7)).generate();
    // Pick a job arriving mid-trace into a loaded cluster.
    let hurricane = JobId(jobs.len() as u32 / 2);
    let arrival = jobs[hurricane.0 as usize].arrival;
    make_urgent(&mut jobs[hurricane.0 as usize]);
    println!(
        "hurricane job {} arrives at t = {:.1} h with a 40-minute deadline\n",
        hurricane.0,
        arrival.as_hours_f64()
    );

    for (label, use_urgency) in [("with urgency (Eq. 2)", true), ("without urgency", false)] {
        let params = Params {
            use_urgency,
            ..Params::default()
        };
        let m = run(
            SimConfig::default(),
            jobs.clone(),
            &mut Mlfs::heuristic(params),
        );
        let rec = m
            .jobs
            .iter()
            .find(|j| j.job == hurricane.0)
            .expect("hurricane job is recorded");
        let finished = rec
            .finished
            .map(|f: SimTime| format!("{:.1} min after arrival", f.since(arrival).as_mins_f64()))
            .unwrap_or_else(|| "never".to_string());
        println!("{label}:");
        println!("  finished        : {finished}");
        println!("  met deadline    : {}", rec.met_deadline);
        println!(
            "  accuracy by deadline: {:.3} (required {:.3}) -> {}",
            rec.accuracy_by_deadline,
            rec.required_accuracy,
            if rec.met_accuracy { "OK" } else { "MISSED" }
        );
        println!(
            "  fleet deadline ratio: {:.2} (all {} jobs)\n",
            m.deadline_ratio(),
            m.jobs_submitted
        );
    }
}
