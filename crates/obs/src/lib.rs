//! # obs — structured tracing and telemetry for the MLFS reproduction
//!
//! Dependency-free observability layer shared by the sim engine and
//! the schedulers. Three concerns, three mechanisms:
//!
//! 1. **Structured trace events** ([`TraceEvent`]): typed records of
//!    what the scheduler did and why — placements with their Eq. 6
//!    priority, migrations off overloaded servers, MLF-RL policy
//!    decisions with their candidate counts, fault-pipeline crashes
//!    and recoveries. Events flow into a pluggable [`TraceSink`]
//!    (no-op, bounded in-memory ring, or JSONL file), selected by
//!    [`TraceConfig`] at `SimConfig` level.
//! 2. **Deterministic counters** ([`Counter`]): per-run tallies
//!    (placements, migrations, requeues, candidates scored, blacklist
//!    strikes) that are **always on**, independent of whether event
//!    emission is enabled. This is what keeps `RunMetrics` bit-identical
//!    between a traced and an untraced run of the same seed: the
//!    counters never depend on the sink, and the sink never feeds back
//!    into scheduling.
//! 3. **Wall-clock span timing** ([`Tracer::span`] / [`span!`]):
//!    scoped timers that aggregate into flamegraph-compatible folded
//!    stacks (`scripts/profile.sh`) and a log₂ decision-latency
//!    histogram. Wall-clock readings are the *only* nondeterministic
//!    output and are confined to duration fields — they never
//!    influence control flow, and determinism tests clear them via
//!    `RunMetrics::clear_wall_clock` before comparing runs.
//!
//! ## Invariants
//!
//! * **Zero-cost when disabled**: with [`TraceConfig::Disabled`],
//!   [`Tracer::emit`] is one relaxed atomic load (the event closure is
//!   never invoked) and [`Tracer::span`] returns an inert guard. The
//!   `hot_path` bench's `mlfrl_decision_traced` entry guards the ≤2%
//!   overhead budget.
//! * **No feedback**: nothing a sink or counter records may alter a
//!   scheduling decision. The tracer hands out no state to read back
//!   except via [`Tracer::snapshot`] at end of run.
//! * **Panic-free, `BTreeMap`-only**: the crate is in both `mlfs-lint`
//!   tiers (deterministic + hot-path); mutex poisoning is absorbed
//!   with `into_inner`, and the wall-clock exception is carried by
//!   explicit audited `det-wall-clock` lint escapes below.
//!
//! See `docs/OBSERVABILITY.md` for the trace schema, span taxonomy,
//! and the profiling walkthrough.

pub mod event;
pub mod replay;
pub mod sink;

pub use event::{parse_flat_json, JsonVal, TraceEvent};
pub use replay::{read_filtered, ReplayFilter, TraceReader};
pub use sink::{JsonlSink, NoopSink, RingSink, TraceSink};

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
// lint:allow(cfg-std-time) reason="obs owns the one sanctioned wall-clock read; readings feed only duration fields, never scheduling decisions"
use std::time::Instant;

/// Opaque wall-clock stamp. All clock reads in the workspace's
/// deterministic tier funnel through this wrapper so the exception is
/// auditable in one place.
#[derive(Debug, Clone, Copy)]
// lint:allow(det-wall-clock) reason="the sanctioned wall-clock wrapper itself; see module docs"
struct Stamp(Instant);

impl Stamp {
    fn now() -> Stamp {
        // lint:allow(det-wall-clock) reason="span timing is observability output only; cleared by RunMetrics::clear_wall_clock in determinism tests"
        Stamp(Instant::now())
    }

    fn elapsed_ns(&self) -> u64 {
        let nanos = self.0.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

/// How a simulation's tracer is configured (a `SimConfig` field).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No event emission, no span timing. Counters still accumulate.
    #[default]
    Disabled,
    /// Keep the newest `capacity` events in memory
    /// ([`Tracer::buffered`] reads them back).
    Ring { capacity: usize },
    /// Append every event as one JSON line to `path`.
    Jsonl { path: PathBuf },
}

/// Deterministic counters, one slot each. The enum discriminant is
/// the slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Candidate feature rows scored by the MLF-RL policy network.
    CandidatesScored = 0,
    /// `Action::Place` applied by the engine.
    Placements = 1,
    /// `Action::Migrate` applied by the engine.
    Migrations = 2,
    /// `Action::Evict` applied by the engine.
    Evictions = 3,
    /// Tasks returned to the waiting queue (evictions + crash requeues).
    Requeues = 4,
    /// New crash strikes registered by scheduler blacklists.
    BlacklistStrikes = 5,
    /// Records appended to a service write-ahead log.
    WalAppends = 6,
    /// `fsync` calls issued by a service write-ahead log.
    WalFsyncs = 7,
    /// Service snapshots written to disk.
    SnapshotWrites = 8,
    /// Crash recoveries completed (snapshot load + WAL replay).
    Recoveries = 9,
}

impl Counter {
    /// Every counter, in slot order (for table rendering).
    ///
    /// Slots 6–9 belong to the `mlfs-service` durability layer, which
    /// runs its own [`Tracer`]; the engine folds only slots 0–5 into
    /// `RunMetrics`, so extending this list never perturbs run
    /// bit-identity.
    pub const ALL: [Counter; 10] = [
        Counter::CandidatesScored,
        Counter::Placements,
        Counter::Migrations,
        Counter::Evictions,
        Counter::Requeues,
        Counter::BlacklistStrikes,
        Counter::WalAppends,
        Counter::WalFsyncs,
        Counter::SnapshotWrites,
        Counter::Recoveries,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Counter::CandidatesScored => "candidates scored",
            Counter::Placements => "placements",
            Counter::Migrations => "migrations",
            Counter::Evictions => "evictions",
            Counter::Requeues => "requeues",
            Counter::BlacklistStrikes => "blacklist strikes",
            Counter::WalAppends => "wal appends",
            Counter::WalFsyncs => "wal fsyncs",
            Counter::SnapshotWrites => "snapshot writes",
            Counter::Recoveries => "recoveries",
        }
    }
}

const COUNTERS: usize = Counter::ALL.len();

/// Log₂ buckets of the decision-latency histogram: bucket `i` counts
/// decisions whose wall-clock cost was in `[2^i, 2^{i+1})` ns.
pub const HIST_BUCKETS: usize = 32;

/// End-of-run view of the tracer's accumulated state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Deterministic counters, indexed by [`Counter`] slot.
    pub counts: Vec<u64>,
    /// Wall-clock decision-latency histogram ([`HIST_BUCKETS`] log₂
    /// buckets); nondeterministic by nature.
    pub decision_ns: Vec<u64>,
}

impl TelemetrySnapshot {
    /// Value of one counter (0 when the snapshot is empty).
    pub fn count(&self, c: Counter) -> u64 {
        self.counts.get(c as usize).copied().unwrap_or(0)
    }
}

/// Mutex-protected mutable half of the tracer.
struct TraceState {
    sink: Box<dyn TraceSink>,
    /// Open spans, outermost first.
    stack: Vec<&'static str>,
    /// Folded-stack aggregation: `;`-joined span path → total ns.
    folded: BTreeMap<String, u64>,
}

/// Per-simulation telemetry hub. One tracer exists per
/// `Simulation`; schedulers hold an `Arc` to the same instance, so a
/// run's counters, spans, and events all land in one place.
pub struct Tracer {
    /// Gates event emission and span timing (not the counters).
    enabled: AtomicBool,
    counters: [AtomicU64; COUNTERS],
    decision_ns: [AtomicU64; HIST_BUCKETS],
    state: Mutex<TraceState>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("counts", &self.snapshot().counts)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    fn with_sink(enabled: bool, sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(enabled),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            decision_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            state: Mutex::new(TraceState {
                sink,
                stack: Vec::new(),
                folded: BTreeMap::new(),
            }),
        }
    }

    /// A tracer that emits nothing (counters still work).
    pub fn disabled() -> Tracer {
        Tracer::with_sink(false, Box::new(NoopSink))
    }

    /// Build a tracer for the given configuration. The only fallible
    /// case is opening the JSONL file.
    pub fn from_config(cfg: &TraceConfig) -> io::Result<Tracer> {
        Ok(match cfg {
            TraceConfig::Disabled => Tracer::disabled(),
            TraceConfig::Ring { capacity } => {
                Tracer::with_sink(true, Box::new(RingSink::new(*capacity)))
            }
            TraceConfig::Jsonl { path } => {
                Tracer::with_sink(true, Box::new(JsonlSink::create(path)?))
            }
        })
    }

    /// Is event emission / span timing on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A mutex poisoned by a panicking holder still contains valid
    /// telemetry — absorb the poison instead of propagating a panic
    /// out of an observability call.
    fn lock_state(&self) -> MutexGuard<'_, TraceState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Bump a deterministic counter. Always active.
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(slot) = self.counters.get(c as usize) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one wall-clock decision latency into the log₂ histogram.
    pub fn record_decision_ns(&self, ns: u64) {
        let bucket = (ns.max(1).ilog2() as usize).min(HIST_BUCKETS - 1);
        if let Some(slot) = self.decision_ns.get(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emit one event. When disabled this is a single relaxed atomic
    /// load — the closure is never invoked, so event construction
    /// costs nothing on the hot path.
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, build: F) {
        if !self.is_enabled() {
            return;
        }
        let ev = build();
        self.lock_state().sink.record(&ev);
    }

    /// Open a timed span; the returned guard closes it on drop,
    /// folding the duration into the span-path aggregation and
    /// emitting a `span` event. Inert when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: None,
                start: None,
            };
        }
        self.lock_state().stack.push(name);
        SpanGuard {
            tracer: Some(self),
            start: Some(Stamp::now()),
        }
    }

    /// Deterministic counters + latency histogram, for folding into
    /// `RunMetrics::telemetry` at end of run.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counts: self
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            decision_ns: self
                .decision_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Folded-stack rendering of all closed spans: one
    /// `path ns` line per unique span path, `;`-joined ancestry,
    /// ready for `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded_stacks(&self) -> String {
        let st = self.lock_state();
        let mut out = String::new();
        for (path, ns) in &st.folded {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Events retained by a ring sink (empty for other sinks).
    pub fn buffered(&self) -> Vec<TraceEvent> {
        self.lock_state().sink.buffered()
    }

    /// Flush the sink (end of run; JSONL buffers otherwise).
    pub fn flush(&self) {
        self.lock_state().sink.flush();
    }
}

/// Guard returned by [`Tracer::span`]; closes the span on drop.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    start: Option<Stamp>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(tracer), Some(start)) = (self.tracer, self.start.take()) else {
            return;
        };
        let dur_ns = start.elapsed_ns();
        let mut st = tracer.lock_state();
        let path = st.stack.join(";");
        let name = st.stack.pop().unwrap_or("span");
        *st.folded.entry(path.clone()).or_insert(0) += dur_ns;
        st.sink.record(&TraceEvent::SpanEnd { name, path, dur_ns });
    }
}

/// Open a named span on a [`Tracer`]: `span!(tracer, round)`.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:ident) => {
        $tracer.span(stringify!($name))
    };
}

/// Emit a typed event on a [`Tracer`]:
/// `event!(tracer, Placement { t: 1.0, job: 3, task: 0, server: 2, score: 0.8 })`.
/// The struct body is only evaluated when tracing is enabled.
#[macro_export]
macro_rules! event {
    ($tracer:expr, $variant:ident { $($field:ident : $value:expr),* $(,)? }) => {
        $tracer.emit(|| $crate::TraceEvent::$variant { $($field: $value),* })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_regardless_of_enablement() {
        let off = Tracer::disabled();
        let on = Tracer::from_config(&TraceConfig::Ring { capacity: 8 }).unwrap();
        for t in [&off, &on] {
            t.add(Counter::Placements, 3);
            t.add(Counter::Migrations, 1);
            t.add(Counter::Placements, 2);
        }
        assert_eq!(off.snapshot().counts, on.snapshot().counts);
        assert_eq!(off.snapshot().count(Counter::Placements), 5);
        assert_eq!(off.snapshot().count(Counter::Migrations), 1);
        assert_eq!(off.snapshot().count(Counter::Evictions), 0);
    }

    #[test]
    fn disabled_tracer_never_invokes_the_event_closure() {
        let t = Tracer::disabled();
        let mut called = false;
        t.emit(|| {
            called = true;
            TraceEvent::ServerRecovery { t: 0.0, server: 0 }
        });
        assert!(!called);
        assert!(t.buffered().is_empty());
    }

    #[test]
    fn ring_tracer_records_macro_events() {
        let t = Tracer::from_config(&TraceConfig::Ring { capacity: 4 }).unwrap();
        event!(
            t,
            Placement {
                t: 1.0,
                job: 1,
                task: 0,
                server: 2,
                score: 0.75,
            }
        );
        let buf = t.buffered();
        assert_eq!(buf.len(), 1);
        assert!(matches!(
            buf.first(),
            Some(TraceEvent::Placement { server: 2, .. })
        ));
    }

    #[test]
    fn spans_fold_into_nested_paths() {
        let t = Tracer::from_config(&TraceConfig::Ring { capacity: 64 }).unwrap();
        {
            let _outer = span!(t, round);
            let _inner = span!(t, schedule);
        }
        {
            let _outer = span!(t, round);
        }
        let folded = t.folded_stacks();
        assert!(folded.contains("round;schedule "), "{folded}");
        assert!(folded.lines().any(|l| l.starts_with("round ")), "{folded}");
        // Both spans also reached the sink as events.
        let spans = t
            .buffered()
            .iter()
            .filter(|e| matches!(e, TraceEvent::SpanEnd { .. }))
            .count();
        assert_eq!(spans, 3);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let t = Tracer::disabled();
        {
            let _g = span!(t, round);
        }
        assert!(t.folded_stacks().is_empty());
    }

    #[test]
    fn decision_latency_lands_in_log2_buckets() {
        let t = Tracer::disabled();
        t.record_decision_ns(0); // clamps to bucket 0
        t.record_decision_ns(1);
        t.record_decision_ns(1024);
        t.record_decision_ns(1500);
        let hist = t.snapshot().decision_ns;
        assert_eq!(hist.len(), HIST_BUCKETS);
        assert_eq!(hist.first().copied(), Some(2));
        assert_eq!(hist.get(10).copied(), Some(2)); // 2^10 ≤ 1024,1500 < 2^11
    }

    #[test]
    fn jsonl_config_writes_a_replayable_file() {
        let path = std::env::temp_dir().join("obs_tracer_test.jsonl");
        let t = Tracer::from_config(&TraceConfig::Jsonl { path: path.clone() }).unwrap();
        event!(
            t,
            ServerCrash {
                t: 5.0,
                server: 1,
                evicted: 2
            }
        );
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .filter_map(TraceEvent::from_json_line)
            .collect();
        assert_eq!(
            events,
            vec![TraceEvent::ServerCrash {
                t: 5.0,
                server: 1,
                evicted: 2
            }]
        );
        let _ = std::fs::remove_file(&path);
    }
}
