//! Trace sinks: where emitted events go.
//!
//! Three implementations cover the intended operating points:
//!
//! * [`NoopSink`] — discard everything. Combined with the tracer's
//!   disabled flag this is the zero-cost default.
//! * [`RingSink`] — keep the last `capacity` events in memory, for
//!   tests and in-process inspection (crash-dump style "what just
//!   happened" queries).
//! * [`JsonlSink`] — append one JSON object per event to a file, for
//!   offline replay (`examples/trace_run.rs`, docs/OBSERVABILITY.md).

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Destination for emitted [`TraceEvent`]s. Implementations must be
/// `Send`: one tracer (and sink) exists per simulation, and parallel
/// sweeps move whole simulations across worker threads.
pub trait TraceSink: Send {
    /// Record one event. Called only while tracing is enabled.
    fn record(&mut self, event: &TraceEvent);
    /// Flush buffered output (end of run). Default: nothing to do.
    fn flush(&mut self) {}
    /// The buffered events, newest last, for sinks that retain them
    /// (the ring sink). File-backed and no-op sinks return nothing.
    fn buffered(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Bounded in-memory ring: keeps the newest `capacity` events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
}

impl RingSink {
    /// New ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }

    fn buffered(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
}

/// Appends one JSON line per event to a file.
pub struct JsonlSink {
    out: BufWriter<File>,
    /// First write error, if any — reported once via `flush`'s eprintln
    /// rather than panicking mid-simulation.
    failed: bool,
}

impl JsonlSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            failed: false,
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        let line = event.to_json_line();
        if writeln!(self.out, "{line}").is_err() {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(server: u32) -> TraceEvent {
        TraceEvent::ServerRecovery { t: 1.0, server }
    }

    #[test]
    fn ring_keeps_newest_events() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&ev(i));
        }
        let kept = ring.buffered();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept.first(), Some(&ev(2)));
        assert_eq!(kept.last(), Some(&ev(4)));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("obs_sink_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(&ev(7));
            sink.record(&TraceEvent::Placement {
                t: 0.5,
                job: 1,
                task: 0,
                server: 2,
                score: 0.5,
            });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .filter_map(TraceEvent::from_json_line)
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events.first(), Some(&ev(7)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn noop_sink_buffers_nothing() {
        let mut s = NoopSink;
        s.record(&ev(0));
        assert!(s.buffered().is_empty());
    }
}
