//! Trace replay: stream [`TraceEvent`]s back out of a JSONL file.
//!
//! This is the read half of the observability loop — the piece that
//! turns a recorded trace from a debugging artifact into training
//! input. A [`TraceReader`] wraps any `BufRead` source and yields
//! events in file order; malformed or unknown lines are skipped (and
//! counted) rather than aborting the stream, matching the forward
//! compatibility contract of [`TraceEvent::from_json_line`].
//!
//! Replay is **deterministic**: the same bytes always yield the same
//! event sequence, in the same order, with no wall-clock or ambient
//! RNG involvement — the property the byte-identical-dataset test in
//! `mlfs-rl` pins.
//!
//! Filtering and windowing compose on top of the raw stream through
//! [`ReplayFilter`], which selects by `"ev"` tag, simulated-time
//! window, and round window — the three axes a dataset builder needs
//! to carve a training slice out of a long production trace.

use crate::event::TraceEvent;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Streaming reader over one JSONL trace.
///
/// Iterates [`TraceEvent`]s in file order. Lines that fail to parse
/// are skipped and tallied in [`TraceReader::skipped`]; I/O errors end
/// the stream (the error is surfaced via [`TraceReader::io_error`]).
pub struct TraceReader<R> {
    src: R,
    line: String,
    skipped: u64,
    io_error: Option<io::Error>,
}

impl TraceReader<BufReader<File>> {
    /// Open a JSONL trace file for replay.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(TraceReader::from_reader(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Replay from any buffered source (in-memory traces in tests).
    pub fn from_reader(src: R) -> Self {
        TraceReader {
            src,
            line: String::new(),
            skipped: 0,
            io_error: None,
        }
    }

    /// Lines that were present but did not parse as a known event.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The I/O error that terminated the stream, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            self.line.clear();
            match self.src.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.io_error = Some(e);
                    return None;
                }
            }
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match TraceEvent::from_json_line(trimmed) {
                Some(ev) => return Some(ev),
                None => self.skipped += 1,
            }
        }
    }
}

/// Deterministic event selector: tag set ∧ time window ∧ round window.
///
/// All constraints default to "accept everything"; each builder call
/// narrows one axis. Windows are half-open (`lo ≤ x < hi`) so adjacent
/// windows partition a trace without overlap.
#[derive(Debug, Clone, Default)]
pub struct ReplayFilter {
    tags: Vec<&'static str>,
    time: Option<(f64, f64)>,
    rounds: Option<(u64, u64)>,
}

impl ReplayFilter {
    /// Accept every event (identity filter).
    pub fn new() -> Self {
        ReplayFilter::default()
    }

    /// Keep only events whose [`TraceEvent::tag`] is in `tags`.
    pub fn tags(mut self, tags: &[&'static str]) -> Self {
        self.tags = tags.to_vec();
        self
    }

    /// Keep only events with simulated time in `[lo, hi)`. Events
    /// that carry no time (spans, durability records) are rejected.
    pub fn time_window(mut self, lo: f64, hi: f64) -> Self {
        self.time = Some((lo, hi));
        self
    }

    /// Keep only events with round in `[lo, hi)`. Events that carry
    /// no round are rejected.
    pub fn round_window(mut self, lo: u64, hi: u64) -> Self {
        self.rounds = Some((lo, hi));
        self
    }

    /// Does `ev` pass every active constraint?
    pub fn accepts(&self, ev: &TraceEvent) -> bool {
        if !self.tags.is_empty() && !self.tags.contains(&ev.tag()) {
            return false;
        }
        if let Some((lo, hi)) = self.time {
            match ev.time() {
                Some(t) if t >= lo && t < hi => {}
                _ => return false,
            }
        }
        if let Some((lo, hi)) = self.rounds {
            match ev.round() {
                Some(r) if r >= lo && r < hi => {}
                _ => return false,
            }
        }
        true
    }

    /// Apply the filter to an event stream.
    pub fn apply<I: Iterator<Item = TraceEvent>>(self, it: I) -> impl Iterator<Item = TraceEvent> {
        it.filter(move |ev| self.accepts(ev))
    }
}

/// Read an entire trace file through a filter into memory.
///
/// Convenience for dataset-sized traces; for very long traces compose
/// [`TraceReader`] with [`ReplayFilter::apply`] and stream instead.
pub fn read_filtered(path: &Path, filter: ReplayFilter) -> io::Result<Vec<TraceEvent>> {
    let mut reader = TraceReader::open(path)?;
    let mut out = Vec::new();
    for ev in reader.by_ref() {
        if filter.accepts(&ev) {
            out.push(ev);
        }
    }
    if let Some(e) = reader.io_error.take() {
        return Err(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_trace() -> String {
        let evs = [
            TraceEvent::RoundStart {
                round: 0,
                t: 0.0,
                queued: 4,
            },
            TraceEvent::PolicyDecision {
                t: 0.5,
                job: 1,
                task: 0,
                candidates: 5,
                chosen: 2,
                queued: false,
            },
            TraceEvent::DecisionExample {
                round: 1,
                t: 1.0,
                job: 1,
                task: 0,
                src: "imitation",
                action: 1,
                dim: 2,
                rows: 2,
                feats: "0.5 1 -0.25 0.125".to_string(),
            },
            TraceEvent::RoundStart {
                round: 1,
                t: 1.0,
                queued: 3,
            },
            TraceEvent::DecisionExample {
                round: 7,
                t: 7.0,
                job: 2,
                task: 1,
                src: "rl",
                action: 0,
                dim: 2,
                rows: 2,
                feats: "1 2 3 4".to_string(),
            },
        ];
        let mut s = String::new();
        for ev in &evs {
            s.push_str(&ev.to_json_line());
            s.push('\n');
        }
        s
    }

    #[test]
    fn reader_streams_events_in_file_order() {
        let text = sample_trace();
        let events: Vec<_> = TraceReader::from_reader(Cursor::new(text.as_bytes())).collect();
        assert_eq!(events.len(), 5);
        assert!(matches!(
            events.first(),
            Some(TraceEvent::RoundStart { round: 0, .. })
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::DecisionExample { round: 7, .. })
        ));
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let text = format!(
            "garbage\n{}\n\n{{\"ev\":\"martian\"}}\n",
            TraceEvent::ServerRecovery { t: 1.0, server: 2 }.to_json_line()
        );
        let mut reader = TraceReader::from_reader(Cursor::new(text.into_bytes()));
        let events: Vec<_> = reader.by_ref().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(reader.skipped(), 2); // blank line is not counted
        assert!(reader.io_error().is_none());
    }

    #[test]
    fn filter_selects_by_tag_time_and_round() {
        let text = sample_trace();
        let by_tag: Vec<_> = ReplayFilter::new()
            .tags(&["decision_example"])
            .apply(TraceReader::from_reader(Cursor::new(text.as_bytes())))
            .collect();
        assert_eq!(by_tag.len(), 2);

        let by_time: Vec<_> = ReplayFilter::new()
            .time_window(0.0, 1.0)
            .apply(TraceReader::from_reader(Cursor::new(text.as_bytes())))
            .collect();
        // half-open: the two t=1.0 events fall outside [0, 1)
        assert_eq!(by_time.len(), 2);

        let by_round: Vec<_> = ReplayFilter::new()
            .tags(&["decision_example"])
            .round_window(0, 2)
            .apply(TraceReader::from_reader(Cursor::new(text.as_bytes())))
            .collect();
        assert_eq!(by_round.len(), 1);
        assert!(matches!(
            by_round.first(),
            Some(TraceEvent::DecisionExample { round: 1, .. })
        ));
    }

    #[test]
    fn replay_is_deterministic_across_reads() {
        let text = sample_trace();
        let a: Vec<_> = TraceReader::from_reader(Cursor::new(text.as_bytes())).collect();
        let b: Vec<_> = TraceReader::from_reader(Cursor::new(text.as_bytes())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn read_filtered_round_trips_a_file() {
        let path = std::env::temp_dir().join("obs_replay_test.jsonl");
        std::fs::write(&path, sample_trace()).unwrap();
        let evs = read_filtered(&path, ReplayFilter::new().tags(&["decision_example"])).unwrap();
        assert_eq!(evs.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
