//! Typed trace events and their JSONL wire form.
//!
//! One event is one JSON object on one line, with an `"ev"` tag naming
//! the variant and flat scalar fields — no nesting, so the format can
//! be grepped, `jq`-ed, or re-parsed by [`TraceEvent::from_json_line`]
//! without a full JSON library. String-valued fields are drawn from a
//! closed set of identifiers (span names, requeue reasons), which is
//! what lets parsing return `&'static str` again.

/// A single structured trace event.
///
/// Scalar field conventions: `t` is simulated minutes, `job` is the
/// raw `JobId`, `task` the task index within the job, `server` the raw
/// `ServerId`. Durations are wall-clock nanoseconds (the only
/// wall-clock quantity in the trace; everything else is simulated).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A scheduler round began (`queued` = queue length entering it).
    RoundStart { round: u64, t: f64, queued: u32 },
    /// A scheduler round ended. `decision_ns` is the wall-clock cost
    /// of the `schedule()` call alone.
    RoundEnd {
        round: u64,
        t: f64,
        actions: u32,
        decision_ns: u64,
    },
    /// A named span closed after `dur_ns` wall-clock nanoseconds.
    /// `path` is the full `;`-joined ancestry (folded-stack form).
    SpanEnd {
        name: &'static str,
        path: String,
        dur_ns: u64,
    },
    /// A task was (or will be, once the engine applies the action)
    /// placed on a server. `score` is the task's Eq. 6 priority.
    Placement {
        t: f64,
        job: u32,
        task: u32,
        server: u32,
        score: f64,
    },
    /// A running task migrates off an overloaded server.
    Migration {
        t: f64,
        job: u32,
        task: u32,
        from: u32,
        to: u32,
        state_mb: f64,
    },
    /// A running task was evicted back to the queue.
    Eviction {
        t: f64,
        job: u32,
        task: u32,
        server: u32,
    },
    /// A task returned to the waiting queue (`reason` ∈ the closed set
    /// in [`intern_reason`]).
    Requeue {
        t: f64,
        job: u32,
        task: u32,
        reason: &'static str,
    },
    /// MLF-RL's policy network picked among `candidates` destination
    /// options (`queued` = it chose the stay-in-queue option).
    PolicyDecision {
        t: f64,
        job: u32,
        task: u32,
        candidates: u32,
        chosen: u32,
        queued: bool,
    },
    /// A scheduler's blacklist registered a new crash strike.
    BlacklistStrike { t: f64, server: u32, strikes: u32 },
    /// Fault pipeline: a server crashed, evicting `evicted` tasks.
    ServerCrash { t: f64, server: u32, evicted: u32 },
    /// Fault pipeline: a crashed server came back up.
    ServerRecovery { t: f64, server: u32 },
    /// A server exceeded the overload threshold entering a round.
    Overload { t: f64, server: u32, degree: f64 },
    /// MLF-C (or a stop policy) stopped a job.
    JobStopped {
        t: f64,
        job: u32,
        reason: &'static str,
    },
    /// Durability: a submission was appended to the write-ahead log.
    /// `seq` is the record's 1-based acceptance sequence number,
    /// `round` the scheduler round it was submitted in, `bytes` the
    /// encoded record size (header + payload).
    WalAppend {
        seq: u64,
        round: u64,
        job: u32,
        bytes: u32,
    },
    /// Durability: recovery truncated a torn final WAL record at byte
    /// offset `at`, dropping `dropped` trailing bytes.
    WalTruncated { at: u64, dropped: u64 },
    /// Durability: a service snapshot reached disk (atomic rename).
    /// `accepted` is the submission count the snapshot covers.
    SnapshotWrite {
        round: u64,
        accepted: u64,
        bytes: u64,
    },
    /// Durability: a crash recovery completed. `snap_round` is the
    /// round of the snapshot used (0 when recovering from empty
    /// state), `replayed` the WAL records re-injected, `resumed_round`
    /// the round the service resumed at.
    Recovery {
        snap_round: u64,
        replayed: u32,
        resumed_round: u64,
    },
    /// Training substrate: one supervised example — the candidate
    /// feature matrix the policy saw and the action index it (or its
    /// MLF-H teacher) chose. `src` is `"imitation"` (teacher decision)
    /// or `"rl"` (the policy's own pick); `feats` is the `rows × dim`
    /// matrix flattened row-major into space-separated `f64`s (Rust's
    /// shortest-round-trip `Display`, so parsing recovers the exact
    /// bits). This is the event `mlfs-rl`'s dataset builder consumes.
    DecisionExample {
        round: u64,
        t: f64,
        job: u32,
        task: u32,
        src: &'static str,
        action: u32,
        dim: u32,
        rows: u32,
        feats: String,
    },
    /// Training substrate: the online drift monitor triggered a
    /// retraining window. `short`/`long` are the short- and long-term
    /// reward EMAs at the trigger point.
    DriftRetrain { round: u64, short: f64, long: f64 },
}

impl TraceEvent {
    /// The `"ev"` tag of this variant.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::SpanEnd { .. } => "span",
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::Requeue { .. } => "requeue",
            TraceEvent::PolicyDecision { .. } => "policy_decision",
            TraceEvent::BlacklistStrike { .. } => "blacklist_strike",
            TraceEvent::ServerCrash { .. } => "server_crash",
            TraceEvent::ServerRecovery { .. } => "server_recovery",
            TraceEvent::Overload { .. } => "overload",
            TraceEvent::JobStopped { .. } => "job_stopped",
            TraceEvent::WalAppend { .. } => "wal_append",
            TraceEvent::WalTruncated { .. } => "wal_truncated",
            TraceEvent::SnapshotWrite { .. } => "snapshot_write",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::DecisionExample { .. } => "decision_example",
            TraceEvent::DriftRetrain { .. } => "drift_retrain",
        }
    }

    /// Simulated time of the event in minutes, for variants that carry
    /// one (`None` for wall-clock spans and durability bookkeeping).
    pub fn time(&self) -> Option<f64> {
        match self {
            TraceEvent::RoundStart { t, .. }
            | TraceEvent::RoundEnd { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::Migration { t, .. }
            | TraceEvent::Eviction { t, .. }
            | TraceEvent::Requeue { t, .. }
            | TraceEvent::PolicyDecision { t, .. }
            | TraceEvent::BlacklistStrike { t, .. }
            | TraceEvent::ServerCrash { t, .. }
            | TraceEvent::ServerRecovery { t, .. }
            | TraceEvent::Overload { t, .. }
            | TraceEvent::JobStopped { t, .. }
            | TraceEvent::DecisionExample { t, .. } => Some(*t),
            _ => None,
        }
    }

    /// Scheduler round of the event, for variants that carry one.
    pub fn round(&self) -> Option<u64> {
        match self {
            TraceEvent::RoundStart { round, .. }
            | TraceEvent::RoundEnd { round, .. }
            | TraceEvent::WalAppend { round, .. }
            | TraceEvent::SnapshotWrite { round, .. }
            | TraceEvent::DecisionExample { round, .. }
            | TraceEvent::DriftRetrain { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new(self.tag());
        match self {
            TraceEvent::RoundStart { round, t, queued } => {
                w.num("round", *round as f64);
                w.num("t", *t);
                w.num("queued", *queued as f64);
            }
            TraceEvent::RoundEnd {
                round,
                t,
                actions,
                decision_ns,
            } => {
                w.num("round", *round as f64);
                w.num("t", *t);
                w.num("actions", *actions as f64);
                w.num("decision_ns", *decision_ns as f64);
            }
            TraceEvent::SpanEnd { name, path, dur_ns } => {
                w.str("name", name);
                w.str("path", path);
                w.num("dur_ns", *dur_ns as f64);
            }
            TraceEvent::Placement {
                t,
                job,
                task,
                server,
                score,
            } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.num("server", *server as f64);
                w.num("score", *score);
            }
            TraceEvent::Migration {
                t,
                job,
                task,
                from,
                to,
                state_mb,
            } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.num("from", *from as f64);
                w.num("to", *to as f64);
                w.num("state_mb", *state_mb);
            }
            TraceEvent::Eviction {
                t,
                job,
                task,
                server,
            } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.num("server", *server as f64);
            }
            TraceEvent::Requeue {
                t,
                job,
                task,
                reason,
            } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.str("reason", reason);
            }
            TraceEvent::PolicyDecision {
                t,
                job,
                task,
                candidates,
                chosen,
                queued,
            } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.num("candidates", *candidates as f64);
                w.num("chosen", *chosen as f64);
                w.bool("queued", *queued);
            }
            TraceEvent::BlacklistStrike { t, server, strikes } => {
                w.num("t", *t);
                w.num("server", *server as f64);
                w.num("strikes", *strikes as f64);
            }
            TraceEvent::ServerCrash { t, server, evicted } => {
                w.num("t", *t);
                w.num("server", *server as f64);
                w.num("evicted", *evicted as f64);
            }
            TraceEvent::ServerRecovery { t, server } => {
                w.num("t", *t);
                w.num("server", *server as f64);
            }
            TraceEvent::Overload { t, server, degree } => {
                w.num("t", *t);
                w.num("server", *server as f64);
                w.num("degree", *degree);
            }
            TraceEvent::JobStopped { t, job, reason } => {
                w.num("t", *t);
                w.num("job", *job as f64);
                w.str("reason", reason);
            }
            TraceEvent::WalAppend {
                seq,
                round,
                job,
                bytes,
            } => {
                w.num("seq", *seq as f64);
                w.num("round", *round as f64);
                w.num("job", *job as f64);
                w.num("bytes", *bytes as f64);
            }
            TraceEvent::WalTruncated { at, dropped } => {
                w.num("at", *at as f64);
                w.num("dropped", *dropped as f64);
            }
            TraceEvent::SnapshotWrite {
                round,
                accepted,
                bytes,
            } => {
                w.num("round", *round as f64);
                w.num("accepted", *accepted as f64);
                w.num("bytes", *bytes as f64);
            }
            TraceEvent::Recovery {
                snap_round,
                replayed,
                resumed_round,
            } => {
                w.num("snap_round", *snap_round as f64);
                w.num("replayed", *replayed as f64);
                w.num("resumed_round", *resumed_round as f64);
            }
            TraceEvent::DecisionExample {
                round,
                t,
                job,
                task,
                src,
                action,
                dim,
                rows,
                feats,
            } => {
                w.num("round", *round as f64);
                w.num("t", *t);
                w.num("job", *job as f64);
                w.num("task", *task as f64);
                w.str("src", src);
                w.num("action", *action as f64);
                w.num("dim", *dim as f64);
                w.num("rows", *rows as f64);
                w.str("feats", feats);
            }
            TraceEvent::DriftRetrain { round, short, long } => {
                w.num("round", *round as f64);
                w.num("short", *short);
                w.num("long", *long);
            }
        }
        w.finish()
    }

    /// Parse one JSONL line back into an event. Returns `None` for
    /// malformed lines or unknown tags (replay tools skip those).
    pub fn from_json_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_flat_json(line)?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let num = |k: &str| -> Option<f64> {
            match get(k) {
                Some(JsonVal::Num(n)) => Some(*n),
                _ => None,
            }
        };
        let s = |k: &str| -> Option<&str> {
            match get(k) {
                Some(JsonVal::Str(v)) => Some(v.as_str()),
                _ => None,
            }
        };
        let b = |k: &str| -> Option<bool> {
            match get(k) {
                Some(JsonVal::Bool(v)) => Some(*v),
                _ => None,
            }
        };
        Some(match s("ev")? {
            "round_start" => TraceEvent::RoundStart {
                round: num("round")? as u64,
                t: num("t")?,
                queued: num("queued")? as u32,
            },
            "round_end" => TraceEvent::RoundEnd {
                round: num("round")? as u64,
                t: num("t")?,
                actions: num("actions")? as u32,
                decision_ns: num("decision_ns")? as u64,
            },
            "span" => TraceEvent::SpanEnd {
                name: intern_reason(s("name")?),
                path: s("path")?.to_string(),
                dur_ns: num("dur_ns")? as u64,
            },
            "placement" => TraceEvent::Placement {
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                server: num("server")? as u32,
                score: num("score")?,
            },
            "migration" => TraceEvent::Migration {
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                from: num("from")? as u32,
                to: num("to")? as u32,
                state_mb: num("state_mb")?,
            },
            "eviction" => TraceEvent::Eviction {
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                server: num("server")? as u32,
            },
            "requeue" => TraceEvent::Requeue {
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                reason: intern_reason(s("reason")?),
            },
            "policy_decision" => TraceEvent::PolicyDecision {
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                candidates: num("candidates")? as u32,
                chosen: num("chosen")? as u32,
                queued: b("queued")?,
            },
            "blacklist_strike" => TraceEvent::BlacklistStrike {
                t: num("t")?,
                server: num("server")? as u32,
                strikes: num("strikes")? as u32,
            },
            "server_crash" => TraceEvent::ServerCrash {
                t: num("t")?,
                server: num("server")? as u32,
                evicted: num("evicted")? as u32,
            },
            "server_recovery" => TraceEvent::ServerRecovery {
                t: num("t")?,
                server: num("server")? as u32,
            },
            "overload" => TraceEvent::Overload {
                t: num("t")?,
                server: num("server")? as u32,
                degree: num("degree")?,
            },
            "job_stopped" => TraceEvent::JobStopped {
                t: num("t")?,
                job: num("job")? as u32,
                reason: intern_reason(s("reason")?),
            },
            "wal_append" => TraceEvent::WalAppend {
                seq: num("seq")? as u64,
                round: num("round")? as u64,
                job: num("job")? as u32,
                bytes: num("bytes")? as u32,
            },
            "wal_truncated" => TraceEvent::WalTruncated {
                at: num("at")? as u64,
                dropped: num("dropped")? as u64,
            },
            "snapshot_write" => TraceEvent::SnapshotWrite {
                round: num("round")? as u64,
                accepted: num("accepted")? as u64,
                bytes: num("bytes")? as u64,
            },
            "recovery" => TraceEvent::Recovery {
                snap_round: num("snap_round")? as u64,
                replayed: num("replayed")? as u32,
                resumed_round: num("resumed_round")? as u64,
            },
            "decision_example" => TraceEvent::DecisionExample {
                round: num("round")? as u64,
                t: num("t")?,
                job: num("job")? as u32,
                task: num("task")? as u32,
                src: intern_reason(s("src")?),
                action: num("action")? as u32,
                dim: num("dim")? as u32,
                rows: num("rows")? as u32,
                feats: s("feats")?.to_string(),
            },
            "drift_retrain" => TraceEvent::DriftRetrain {
                round: num("round")? as u64,
                short: num("short")?,
                long: num("long")?,
            },
            _ => return None,
        })
    }
}

/// Map a parsed string back to the closed identifier set used by
/// event producers; unknown strings collapse to `"other"`. Keeping
/// the set closed is what allows `&'static str` fields (no per-event
/// allocation on the emit side).
pub fn intern_reason(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "round",
        "advance",
        "faults",
        "schedule",
        "apply_actions",
        "finalize",
        "mlfh_plan",
        "imitation_round",
        "rl_round",
        "control",
        "evicted",
        "crash",
        "checkpoint_rollback",
        "policy",
        "deadline",
        "accuracy",
        "budget",
        "imitation",
        "rl",
    ];
    KNOWN.iter().find(|k| **k == s).copied().unwrap_or("other")
}

/// Value of one flat-JSON field.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    Num(f64),
    Str(String),
    Bool(bool),
}

/// Incremental writer for one flat JSON object line.
struct JsonWriter {
    buf: String,
}

impl JsonWriter {
    fn new(tag: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"ev\":\"");
        buf.push_str(tag);
        buf.push('"');
        JsonWriter { buf }
    }

    fn key(&mut self, k: &str) {
        self.buf.push_str(",\"");
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Integral values print without a fractional part so u64-backed
    /// fields round-trip exactly through the f64 writer.
    fn num(&mut self, k: &str, v: f64) {
        self.key(k);
        if v.fract() == 0.0 && v.abs() < 9.0e15 {
            let _ = write_int(&mut self.buf, v as i64);
        } else {
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                s.push_str(".0");
            }
            self.buf.push_str(&s);
        }
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn write_int(buf: &mut String, v: i64) -> std::fmt::Result {
    use std::fmt::Write;
    write!(buf, "{v}")
}

/// Parse a one-line flat JSON object (`{"k":v,...}` with scalar
/// values only) into key/value pairs. Not a general JSON parser: no
/// nested objects or arrays, which the trace schema never emits.
pub fn parse_flat_json(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let line = line.trim();
    let inner = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let bytes: Vec<char> = inner.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();
    let skip_ws = |i: &mut usize| {
        while *i < n && bytes.get(*i).is_some_and(|c| c.is_whitespace()) {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Option<String> {
        if bytes.get(*i) != Some(&'"') {
            return None;
        }
        *i += 1;
        let mut s = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Some(s),
                '\\' => match bytes.get(*i) {
                    Some('n') => {
                        s.push('\n');
                        *i += 1;
                    }
                    Some(&e) => {
                        s.push(e);
                        *i += 1;
                    }
                    None => return None,
                },
                c => s.push(c),
            }
        }
        None
    };
    loop {
        skip_ws(&mut i);
        if i >= n {
            break;
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&':') {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let val = match bytes.get(i) {
            Some('"') => JsonVal::Str(parse_string(&mut i)?),
            Some('t') if inner_starts_with(&bytes, i, "true") => {
                i += 4;
                JsonVal::Bool(true)
            }
            Some('f') if inner_starts_with(&bytes, i, "false") => {
                i += 5;
                JsonVal::Bool(false)
            }
            Some(_) => {
                let start = i;
                while i < n && bytes.get(i).is_some_and(|c| !matches!(c, ',')) {
                    i += 1;
                }
                let text: String = bytes.get(start..i)?.iter().collect();
                JsonVal::Num(text.trim().parse().ok()?)
            }
            None => return None,
        };
        out.push((key, val));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(',') => i += 1,
            None => break,
            Some(_) => return None,
        }
    }
    Some(out)
}

fn inner_starts_with(bytes: &[char], i: usize, word: &str) -> bool {
    word.chars()
        .enumerate()
        .all(|(k, c)| bytes.get(i + k) == Some(&c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart {
                round: 3,
                t: 1.5,
                queued: 12,
            },
            TraceEvent::RoundEnd {
                round: 3,
                t: 1.5,
                actions: 4,
                decision_ns: 73_421,
            },
            TraceEvent::SpanEnd {
                name: "mlfh_plan",
                path: "round;schedule;mlfh_plan".to_string(),
                dur_ns: 900,
            },
            TraceEvent::Placement {
                t: 2.0,
                job: 7,
                task: 1,
                server: 3,
                score: 0.8125,
            },
            TraceEvent::Migration {
                t: 2.0,
                job: 7,
                task: 1,
                from: 3,
                to: 4,
                state_mb: 120.5,
            },
            TraceEvent::Eviction {
                t: 2.0,
                job: 7,
                task: 1,
                server: 3,
            },
            TraceEvent::Requeue {
                t: 2.0,
                job: 7,
                task: 1,
                reason: "crash",
            },
            TraceEvent::PolicyDecision {
                t: 2.0,
                job: 7,
                task: 1,
                candidates: 13,
                chosen: 2,
                queued: false,
            },
            TraceEvent::BlacklistStrike {
                t: 2.0,
                server: 3,
                strikes: 2,
            },
            TraceEvent::ServerCrash {
                t: 2.0,
                server: 3,
                evicted: 5,
            },
            TraceEvent::ServerRecovery { t: 9.0, server: 3 },
            TraceEvent::Overload {
                t: 2.0,
                server: 3,
                degree: 1.25,
            },
            TraceEvent::JobStopped {
                t: 2.0,
                job: 7,
                reason: "accuracy",
            },
            TraceEvent::WalAppend {
                seq: 17,
                round: 4,
                job: 9,
                bytes: 412,
            },
            TraceEvent::WalTruncated {
                at: 8_192,
                dropped: 37,
            },
            TraceEvent::SnapshotWrite {
                round: 50,
                accepted: 120,
                bytes: 65_536,
            },
            TraceEvent::Recovery {
                snap_round: 50,
                replayed: 14,
                resumed_round: 61,
            },
            TraceEvent::DecisionExample {
                round: 12,
                t: 3.25,
                job: 7,
                task: 1,
                src: "imitation",
                action: 2,
                dim: 3,
                rows: 2,
                feats: "0.5 -1.25 0.3333333333333333 1 0 2e-9".to_string(),
            },
            TraceEvent::DriftRetrain {
                round: 90,
                short: -0.75,
                long: -0.25,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for ev in all_variants() {
            let line = ev.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            let back = TraceEvent::from_json_line(&line);
            assert_eq!(back.as_ref(), Some(&ev), "{line}");
        }
    }

    #[test]
    fn integral_fields_have_no_fraction() {
        let line = TraceEvent::RoundEnd {
            round: 42,
            t: 0.25,
            actions: 0,
            decision_ns: 161_916,
        }
        .to_json_line();
        assert!(line.contains("\"round\":42,"), "{line}");
        assert!(line.contains("\"decision_ns\":161916"), "{line}");
        assert!(line.contains("\"t\":0.25"), "{line}");
    }

    #[test]
    fn malformed_and_unknown_lines_are_skipped() {
        assert_eq!(TraceEvent::from_json_line("not json"), None);
        assert_eq!(TraceEvent::from_json_line("{\"ev\":\"martian\"}"), None);
        assert_eq!(TraceEvent::from_json_line("{\"ev\":\"placement\"}"), None);
    }

    #[test]
    fn unknown_reason_interns_to_other() {
        assert_eq!(intern_reason("crash"), "crash");
        assert_eq!(intern_reason("???"), "other");
    }
}
