//! MLF-RL: the ML-feature-based RL task scheduler (§3.4).
//!
//! Lifecycle, as in the paper:
//!
//! 1. **Imitation phase** — "MLFS initially runs MLF-H for a certain
//!    time period and uses the data to train MLF-RL". During this
//!    phase the scheduler *acts* exactly like MLF-H while training the
//!    policy network to imitate MLF-H's host choices (cross-entropy).
//! 2. **RL phase** — once the imitation budget is exhausted, decisions
//!    come from the policy network and REINFORCE fine-tuning continues
//!    online with the Eq. 7 reward, discounted by `η` over the
//!    post-decision window (`observe_reward` is called by the engine
//!    every scheduling round).
//!
//! Victim selection on overloaded servers stays heuristic
//! (ideal-virtual-task); the policy decides *destinations* — server or
//! queue — which is where the combinatorial choice lies.

use crate::features::candidate_features;
use crate::mlfh::MlfH;
use crate::params::Params;
use crate::placement::select_victim;
use crate::scheduler::{Action, RewardComponents, Scheduler, SchedulerContext};
use cluster::{ClusterOverlay, ClusterView, ServerId, TaskId};
use rl::{Convergence, ReinforceTrainer, ScoringPolicy, Step, TrainerConfig};
use simcore::SimRng;

/// MLF-RL hyperparameters.
#[derive(Debug, Clone)]
pub struct MlfRlConfig {
    /// Hidden layer sizes of the policy MLP.
    pub hidden: Vec<usize>,
    /// Scheduling rounds spent imitating MLF-H before switching
    /// (the paper trains on the first 50% of the trace; benches set
    /// this per experiment).
    pub imitation_rounds: usize,
    /// Cap on server candidates offered per decision (keeps decision
    /// cost bounded on large clusters; nearest-by-load servers win).
    pub max_candidates: usize,
    /// Rounds per REINFORCE episode.
    pub train_interval: usize,
    /// Trainer hyperparameters (η lives here).
    pub trainer: TrainerConfig,
    /// Sample actions during RL (exploration) instead of greedy.
    pub explore: bool,
    /// RNG seed for the policy init and sampling.
    pub seed: u64,
}

impl Default for MlfRlConfig {
    fn default() -> Self {
        MlfRlConfig {
            hidden: vec![64, 32],
            imitation_rounds: 200,
            max_candidates: 12,
            train_interval: 8,
            trainer: TrainerConfig::default(),
            explore: true,
            seed: 0xA11CE,
        }
    }
}

/// The MLF-RL scheduler.
pub struct MlfRl {
    /// Tunables shared with MLF-H.
    pub params: Params,
    cfg: MlfRlConfig,
    inner_h: MlfH,
    trainer: ReinforceTrainer,
    convergence: Convergence,
    rng: SimRng,
    rounds: usize,
    /// Steps taken in the round awaiting their reward.
    pending: Vec<Step>,
    /// Closed (step, reward) pairs of the current episode.
    episode: Vec<(Step, f64)>,
    /// Replay buffer of MLF-H decisions for imitation training.
    imitation_buffer: Vec<Step>,
    /// Total REINFORCE episodes trained.
    pub episodes_trained: usize,
}

impl MlfRl {
    /// New MLF-RL scheduler.
    pub fn new(params: Params, cfg: MlfRlConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let policy = ScoringPolicy::new(crate::features::FEATURE_DIM, &cfg.hidden, &mut rng);
        let trainer = ReinforceTrainer::new(policy, cfg.trainer);
        MlfRl {
            params,
            inner_h: MlfH::new(params),
            trainer,
            convergence: Convergence::new(0.02, 10),
            rng,
            rounds: 0,
            pending: Vec::new(),
            episode: Vec::new(),
            imitation_buffer: Vec::new(),
            episodes_trained: 0,
            cfg,
        }
    }

    /// Still copying MLF-H?
    pub fn in_imitation_phase(&self) -> bool {
        self.rounds < self.cfg.imitation_rounds
    }

    /// Snapshot the trained policy (for transfer into an evaluation
    /// scheduler after a warm-up run, per §4.1's offline pre-training).
    pub fn export_policy(&self) -> ScoringPolicy {
        self.trainer.policy.clone()
    }

    /// Replace the policy with a pre-trained one and skip imitation:
    /// the scheduler starts in the RL phase immediately.
    pub fn import_policy(&mut self, policy: ScoringPolicy) {
        self.trainer.policy = policy;
        self.cfg.imitation_rounds = 0;
    }

    /// Toggle exploration (sampling) vs greedy action selection.
    pub fn set_explore(&mut self, explore: bool) {
        self.cfg.explore = explore;
    }

    /// Has the return EMA stabilised (§3.4's "well trained")?
    pub fn is_converged(&self) -> bool {
        self.convergence.is_converged()
    }

    /// Fraction of buffered MLF-H decisions the current policy would
    /// reproduce greedily (imitation-quality diagnostic).
    pub fn imitation_agreement(&self) -> f64 {
        self.trainer.agreement(&self.imitation_buffer)
    }

    /// Candidate servers for `task` on the speculative cluster:
    /// underloaded hosts that fit, capped to the least-loaded
    /// `max_candidates` (by overload degree).
    fn candidate_servers<V: ClusterView>(
        &self,
        plan: &V,
        ctx: &SchedulerContext<'_>,
        task: TaskId,
    ) -> Vec<ServerId> {
        let job = &ctx.jobs[&task.job];
        let spec = &job.spec.tasks[task.idx as usize];
        // Softer admission limit than MLF-H's fixed h_r: the paper
        // motivates MLF-RL by MLF-H's possibly sub-optimal fixed
        // parameters (§3.4). The policy is shown these riskier hosts
        // (their utilization features expose the risk) and the Eq. 7
        // reward arbitrates whether using the headroom pays off.
        let soft = (self.params.h_r + 0.08).min(0.98);
        let mut hosts: Vec<(f64, ServerId)> = (0..plan.server_count())
            .map(|i| plan.server(ServerId(i as u32)))
            .filter(|s| !s.is_overloaded(soft) && s.can_host(&spec.demand, spec.gpu_share, soft))
            .map(|s| (s.overload_degree(), s.id))
            .collect();
        hosts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        hosts
            .into_iter()
            .take(self.cfg.max_candidates)
            .map(|(_, s)| s)
            .collect()
    }

    /// Imitation round: emit MLF-H's actions and record its decisions
    /// as supervised examples, replaying them against an evolving plan
    /// so the features match what the RL phase will later see. Each
    /// round also trains several minibatches from a replay buffer —
    /// single-pass imitation underfits badly.
    fn imitation_round(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let actions = self.inner_h.schedule(ctx);
        let mut plan = ClusterOverlay::new(ctx.cluster, self.params.h_r);
        for (task, chosen) in self.inner_h.last_decisions.clone() {
            let job = &ctx.jobs[&task.job];
            // Migration decisions move an already-placed task: detach
            // it first so the plan mirrors MLF-H's speculative state.
            plan.remove(task);
            // Candidates exactly as the RL phase generates them.
            let mut servers = self.candidate_servers(&plan, ctx, task);
            if !servers.contains(&chosen) {
                servers.push(chosen);
            }
            let action_idx = servers
                .iter()
                .position(|&s| s == chosen)
                .expect("chosen host was just inserted");
            let mut feats: Vec<Vec<f64>> = servers
                .iter()
                .map(|&s| {
                    candidate_features(
                        &plan,
                        job,
                        task,
                        Some(s),
                        s == chosen,
                        ctx.now,
                        &self.params,
                    )
                })
                .collect();
            feats.push(candidate_features(
                &plan,
                job,
                task,
                None,
                false,
                ctx.now,
                &self.params,
            ));
            self.imitation_buffer.push(Step {
                candidates: feats,
                action: action_idx,
            });
            let spec = &job.spec.tasks[task.idx as usize];
            plan.place(task, chosen, spec.demand, spec.gpu_share)
                .expect("speculative placement cannot fail");
        }
        // Bound the buffer (drop oldest).
        const BUFFER_CAP: usize = 50_000;
        if self.imitation_buffer.len() > BUFFER_CAP {
            let excess = self.imitation_buffer.len() - BUFFER_CAP;
            self.imitation_buffer.drain(..excess);
        }
        // Replay minibatches.
        if !self.imitation_buffer.is_empty() {
            for _ in 0..4 {
                let batch: Vec<Step> = (0..64.min(self.imitation_buffer.len()))
                    .map(|_| {
                        self.imitation_buffer[self.rng.index(self.imitation_buffer.len())].clone()
                    })
                    .collect();
                self.trainer.imitate(&batch);
            }
        }
        actions
    }

    /// RL round: the policy chooses destinations.
    fn rl_round(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let p = self.params;
        let mut actions = Vec::new();
        let mut plan = ClusterOverlay::new(ctx.cluster, p.h_r);
        let overloaded = plan.overloaded_servers(p.h_r);
        let priorities = MlfH::candidate_priorities(ctx, &p, &overloaded);

        // Victims off overloaded servers (heuristic, as in MLF-H).
        #[derive(Clone, Copy)]
        enum Origin {
            Queue,
            Server(ServerId),
        }
        let mut work: Vec<(TaskId, f64, Origin)> = Vec::new();
        if p.use_migration {
            for sid in overloaded {
                while plan.server(sid).is_overloaded(p.h_r) {
                    let Some(victim) = select_victim(&plan, ctx.jobs, sid, &priorities, &p) else {
                        break;
                    };
                    plan.remove(victim);
                    let prio = priorities.get(&victim).copied().unwrap_or(0.0);
                    work.push((victim, prio, Origin::Server(sid)));
                }
            }
        }
        for &t in ctx.queue {
            work.push((t, priorities.get(&t).copied().unwrap_or(0.0), Origin::Queue));
        }
        // Job-gang processing, mirroring MLF-H (see mlfh.rs): jobs by
        // max task priority; victims re-placed individually; waiting
        // tasks gang (the policy parking any task parks the job).
        let mut job_key: std::collections::BTreeMap<cluster::JobId, f64> =
            std::collections::BTreeMap::new();
        for (t, prio, _) in &work {
            let e = job_key.entry(t.job).or_insert(f64::NEG_INFINITY);
            if *prio > *e {
                *e = *prio;
            }
        }
        let mut job_order: Vec<cluster::JobId> = job_key.keys().copied().collect();
        job_order.sort_by(|a, b| {
            job_key[b]
                .partial_cmp(&job_key[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });

        for jid in job_order {
            let mut group: Vec<(TaskId, f64, Origin)> = work
                .iter()
                .filter(|(t, _, _)| t.job == jid)
                .cloned()
                .collect();
            group.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            let job = &ctx.jobs[&jid];

            // One policy decision for `task`; returns the chosen host.
            let decide = |this: &mut Self,
                          plan: &ClusterOverlay<'_>,
                          task: TaskId,
                          migration_from: Option<ServerId>|
             -> Option<ServerId> {
                let mut servers = this.candidate_servers(plan, ctx, task);
                let rial = crate::placement::select_host(plan, ctx.jobs, task, migration_from, &p);
                // RIAL may prefer a loaded server (communication
                // affinity) outside the least-loaded cap — offer it.
                if let Some(r) = rial {
                    if !servers.contains(&r) {
                        servers.push(r);
                    }
                }
                let mut feats: Vec<Vec<f64>> = servers
                    .iter()
                    .map(|&s| {
                        candidate_features(plan, job, task, Some(s), rial == Some(s), ctx.now, &p)
                    })
                    .collect();
                feats.push(candidate_features(
                    plan,
                    job,
                    task,
                    None,
                    rial.is_none(),
                    ctx.now,
                    &p,
                ));
                let choice = if this.cfg.explore {
                    this.trainer.policy.sample(&feats, &mut this.rng)
                } else {
                    this.trainer.policy.greedy(&feats)
                };
                this.pending.push(Step {
                    candidates: feats,
                    action: choice,
                });
                if choice < servers.len() {
                    Some(servers[choice])
                } else {
                    None
                }
            };

            // Victims first. A "queue" decision for a victim leaves it
            // where it is (matching MLF-H's no-thrash rule).
            for (task, _, origin) in group.iter() {
                let Origin::Server(src) = *origin else {
                    continue;
                };
                match decide(self, &plan, *task, Some(src)) {
                    Some(host) => {
                        let spec = &job.spec.tasks[task.idx as usize];
                        plan.place(*task, host, spec.demand, spec.gpu_share)
                            .expect("speculative placement cannot fail");
                        if src != host {
                            actions.push(Action::Migrate {
                                task: *task,
                                to: host,
                            });
                        }
                    }
                    None => {
                        let spec = &job.spec.tasks[task.idx as usize];
                        plan.place(*task, src, spec.demand, spec.gpu_share)
                            .expect("victim slot was just freed");
                    }
                }
            }

            // Waiting tasks: gang with rollback.
            let waiting: Vec<TaskId> = group
                .iter()
                .filter(|(_, _, o)| matches!(o, Origin::Queue))
                .map(|(t, _, _)| *t)
                .collect();
            if waiting.is_empty() {
                continue;
            }
            let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
            let mut ok = true;
            for &task in &waiting {
                match decide(self, &plan, task, None) {
                    Some(host) => {
                        let spec = &job.spec.tasks[task.idx as usize];
                        plan.place(task, host, spec.demand, spec.gpu_share)
                            .expect("speculative placement cannot fail");
                        placed.push((task, host));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for (task, host) in placed {
                    actions.push(Action::Place { task, server: host });
                }
            } else {
                for (task, _) in placed {
                    plan.remove(task);
                }
            }
        }
        actions
    }
}

impl Scheduler for MlfRl {
    fn name(&self) -> &'static str {
        "MLF-RL"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let actions = if self.in_imitation_phase() {
            self.imitation_round(ctx)
        } else {
            self.rl_round(ctx)
        };
        self.rounds += 1;
        actions
    }

    fn observe_reward(&mut self, reward: &RewardComponents) {
        // Eq. 7: weighted sum of the five objective components.
        let r = reward.weighted(&self.params.beta);
        // Close out the previous round's steps with this reward.
        for s in self.pending.drain(..) {
            self.episode.push((s, r));
        }
        // Train an episode every `train_interval` rounds' worth of steps.
        if self.episode.len() >= self.cfg.train_interval {
            let ep: Vec<(Step, f64)> = self.episode.drain(..).collect();
            let ret = self.trainer.train_episode(&ep);
            self.convergence.record(ret);
            self.episodes_trained += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::{SimDuration, SimTime};
    use std::collections::BTreeMap;
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{JobState, LearningProfile, MlAlgorithm};

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 4,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    fn job(id: u32, n: usize) -> JobState {
        let jid = JobId(id);
        let tasks = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 50.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(6),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 300,
            tasks,
            dag: Dag::sequential(n),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 50.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.01, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    #[test]
    fn imitation_phase_mirrors_mlfh() {
        let c = cluster();
        let j = job(1, 3);
        let queue: Vec<TaskId> = (0..3).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: BTreeMap<JobId, JobState> = [(JobId(1), j)].into();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 5,
                ..Default::default()
            },
        );
        let mut h = MlfH::new(Params::default());
        assert!(rl.in_imitation_phase());
        let a_rl = rl.schedule(&ctx);
        let a_h = h.schedule(&ctx);
        assert_eq!(a_rl, a_h);
    }

    #[test]
    fn switches_to_rl_after_budget() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: BTreeMap<JobId, JobState> = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 3,
                ..Default::default()
            },
        );
        for round in 0..5 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [1.0; 5] });
        }
        assert!(!rl.in_imitation_phase());
    }

    #[test]
    fn rl_phase_emits_valid_actions() {
        let c = cluster();
        let j = job(1, 4);
        let queue: Vec<TaskId> = (0..4).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: BTreeMap<JobId, JobState> = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                explore: false,
                ..Default::default()
            },
        );
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = rl.schedule(&ctx);
        // Every emitted placement targets a queued task and an existing
        // server; no duplicates.
        let mut placed = Vec::new();
        for a in &actions {
            match a {
                Action::Place { task, server } => {
                    assert!(queue.contains(task));
                    assert!((server.0 as usize) < c.server_count());
                    assert!(!placed.contains(task));
                    placed.push(*task);
                }
                Action::Migrate { .. } | Action::Evict { .. } => {
                    panic!("no running tasks to migrate/evict: {a:?}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn rewards_drive_training() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: BTreeMap<JobId, JobState> = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                train_interval: 4,
                ..Default::default()
            },
        );
        for round in 0..16 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [0.5; 5] });
        }
        assert!(rl.episodes_trained >= 2, "{}", rl.episodes_trained);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster();
        let j = job(1, 4);
        let queue: Vec<TaskId> = (0..4).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: BTreeMap<JobId, JobState> = [(JobId(1), j)].into();
        let mk = || {
            MlfRl::new(
                Params::default(),
                MlfRlConfig {
                    imitation_rounds: 0,
                    seed: 99,
                    ..Default::default()
                },
            )
        };
        let mut a = mk();
        let mut b = mk();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        assert_eq!(a.schedule(&ctx), b.schedule(&ctx));
    }
}
