//! MLF-RL: the ML-feature-based RL task scheduler (§3.4).
//!
//! Lifecycle, as in the paper:
//!
//! 1. **Imitation phase** — "MLFS initially runs MLF-H for a certain
//!    time period and uses the data to train MLF-RL". During this
//!    phase the scheduler *acts* exactly like MLF-H while training the
//!    policy network to imitate MLF-H's host choices (cross-entropy).
//! 2. **RL phase** — once the imitation budget is exhausted, decisions
//!    come from the policy network and REINFORCE fine-tuning continues
//!    online with the Eq. 7 reward, discounted by `η` over the
//!    post-decision window (`observe_reward` is called by the engine
//!    every scheduling round).
//!
//! Victim selection on overloaded servers stays heuristic
//! (ideal-virtual-task); the policy decides *destinations* — server or
//! queue — which is where the combinatorial choice lies.

use crate::blacklist::ServerBlacklist;
use crate::features::{candidate_features_into, FEATURE_DIM};
use crate::mlfh::{MlfH, MlfHState};
use crate::params::Params;
use crate::placement::{select_host, select_host_filtered, select_victim};
use crate::scheduler::{
    state_from_json, state_to_json, Action, RewardComponents, Scheduler, SchedulerContext,
};
use cluster::{ClusterOverlay, ClusterView, ServerId, TaskId};
use rl::{
    Convergence, DriftConfig, DriftMonitor, FeatureBatch, ReinforceTrainer, ScoringPolicy, Step,
    TrainerConfig, TrainerState,
};
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// Continuous-retraining policy: when the [`DriftMonitor`] flags that
/// online reward has fallen below its long-run level, the scheduler
/// re-enters an imitation window against its inner MLF-H teacher for
/// `retrain_rounds` rounds, retraining the policy on the *current*
/// workload distribution (docs/TRAINING.md).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftRetrainConfig {
    /// Reward-EMA drift detector tuning.
    pub monitor: DriftConfig,
    /// Length of the imitation window opened on each trigger.
    pub retrain_rounds: usize,
}

impl Default for DriftRetrainConfig {
    fn default() -> Self {
        DriftRetrainConfig {
            monitor: DriftConfig::default(),
            retrain_rounds: 60,
        }
    }
}

/// MLF-RL hyperparameters.
#[derive(Debug, Clone)]
pub struct MlfRlConfig {
    /// Hidden layer sizes of the policy MLP.
    pub hidden: Vec<usize>,
    /// Scheduling rounds spent imitating MLF-H before switching
    /// (the paper trains on the first 50% of the trace; benches set
    /// this per experiment).
    pub imitation_rounds: usize,
    /// Cap on server candidates offered per decision (keeps decision
    /// cost bounded on large clusters; nearest-by-load servers win).
    pub max_candidates: usize,
    /// Rounds per REINFORCE episode.
    pub train_interval: usize,
    /// Trainer hyperparameters (η lives here).
    pub trainer: TrainerConfig,
    /// Sample actions during RL (exploration) instead of greedy.
    pub explore: bool,
    /// RNG seed for the policy init and sampling.
    pub seed: u64,
    /// Online learning master switch. `false` freezes the policy
    /// completely: no REINFORCE updates, no imitation minibatches, no
    /// drift retraining — the evaluation mode for a warm-started
    /// policy (`rl::warm_start` + [`MlfRl::import_policy`]).
    pub online_training: bool,
    /// Continuous retraining under workload drift (`None` = off, the
    /// pre-drift behavior, bit-identical to earlier releases).
    pub drift: Option<DriftRetrainConfig>,
    /// Convergence detector: relative return-EMA change below this
    /// tolerance counts as stable (§3.4's "well trained"). Tune to the
    /// workload's episode-return noise floor — a tolerance below the
    /// per-episode noise means the detector never fires.
    pub convergence_tol: f64,
    /// Consecutive stable episodes required before `is_converged`.
    pub convergence_window: usize,
}

impl Default for MlfRlConfig {
    fn default() -> Self {
        MlfRlConfig {
            hidden: vec![64, 32],
            imitation_rounds: 200,
            max_candidates: 12,
            train_interval: 8,
            trainer: TrainerConfig::default(),
            explore: true,
            seed: 0xA11CE,
            online_training: true,
            drift: None,
            convergence_tol: 0.02,
            convergence_window: 10,
        }
    }
}

/// Reusable decision-loop buffers, mirroring the `HostScratch`
/// pattern in `placement.rs`: the steady-state hot path draws from
/// these instead of the allocator.
#[derive(Default)]
struct RlScratch {
    /// `(overload_degree, id)` ranking buffer for candidate selection.
    ranked: Vec<(f64, ServerId)>,
    /// Selected candidate hosts for the current decision.
    servers: Vec<ServerId>,
    /// Recycled candidate batches: decisions pop a cleared batch here
    /// and trained/expired `Step`s push theirs back.
    batch_pool: Vec<FeatureBatch>,
    /// Replay-minibatch index buffer for `imitate_indices`.
    minibatch_idx: Vec<usize>,
}

/// Retained `FeatureBatch` allocations; decisions churn through
/// batches far faster than the pool grows, so a small cap suffices.
const BATCH_POOL_CAP: usize = 64;

/// Evolving MLF-RL state carried across a service restart: the
/// trained policy and optimizer, the RNG stream, the learning buffers,
/// and the two config fields mutated at runtime (`set_explore`,
/// `import_policy`). Scratch buffers are rebuilt on the next round.
#[derive(Serialize, Deserialize)]
pub(crate) struct MlfRlState {
    inner_h: MlfHState,
    trainer: TrainerState,
    convergence: Convergence,
    rng: [u64; 4],
    rounds: u64,
    pending: Vec<Step>,
    episode: Vec<(Step, f64)>,
    imitation_buffer: Vec<Step>,
    episodes_trained: u64,
    blacklist: ServerBlacklist,
    explore: bool,
    imitation_rounds: u64,
    /// Drift-retraining state (absent in pre-drift snapshots; the
    /// vendored serde maps a missing `Option` to `None`).
    drift_monitor: Option<DriftMonitor>,
    imitation_until: u64,
    retrains: u64,
}

/// The MLF-RL scheduler.
pub struct MlfRl {
    /// Tunables shared with MLF-H.
    pub params: Params,
    cfg: MlfRlConfig,
    inner_h: MlfH,
    trainer: ReinforceTrainer,
    convergence: Convergence,
    rng: SimRng,
    rounds: usize,
    /// Steps taken in the round awaiting their reward.
    pending: Vec<Step>,
    /// Closed (step, reward) pairs of the current episode.
    episode: Vec<(Step, f64)>,
    /// Replay buffer of MLF-H decisions for imitation training.
    imitation_buffer: Vec<Step>,
    /// Total REINFORCE episodes trained.
    pub episodes_trained: usize,
    scratch: RlScratch,
    /// Crash history: recently-failed servers are dropped from the
    /// candidate set with exponential backoff (the RIAL fallback pick
    /// ignores the ban when nothing else fits, so no round stalls).
    blacklist: ServerBlacklist,
    /// Telemetry hub (attached by the engine; `None` in bare use).
    tracer: Option<std::sync::Arc<obs::Tracer>>,
    /// Online reward drift detector (present iff `cfg.drift` is set).
    drift_monitor: Option<DriftMonitor>,
    /// Drift retraining keeps imitating until this round (0 = no
    /// active window; independent of the initial `imitation_rounds`
    /// budget).
    imitation_until: usize,
    /// Completed drift-retraining windows.
    retrains: usize,
}

impl MlfRl {
    /// New MLF-RL scheduler.
    pub fn new(params: Params, cfg: MlfRlConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let policy = ScoringPolicy::new(crate::features::FEATURE_DIM, &cfg.hidden, &mut rng);
        let trainer = ReinforceTrainer::new(policy, cfg.trainer);
        MlfRl {
            params,
            inner_h: MlfH::new(params),
            trainer,
            convergence: Convergence::new(cfg.convergence_tol, cfg.convergence_window),
            rng,
            rounds: 0,
            pending: Vec::new(),
            episode: Vec::new(),
            imitation_buffer: Vec::new(),
            episodes_trained: 0,
            scratch: RlScratch::default(),
            blacklist: ServerBlacklist::default(),
            tracer: None,
            drift_monitor: cfg.drift.map(|d| DriftMonitor::new(d.monitor)),
            imitation_until: 0,
            retrains: 0,
            cfg,
        }
    }

    /// Evolving state for `Scheduler::export_state`.
    pub(crate) fn state(&self) -> MlfRlState {
        MlfRlState {
            inner_h: self.inner_h.state(),
            trainer: self.trainer.export_state(),
            convergence: self.convergence.clone(),
            rng: self.rng.state(),
            rounds: self.rounds as u64,
            pending: self.pending.clone(),
            episode: self.episode.clone(),
            imitation_buffer: self.imitation_buffer.clone(),
            episodes_trained: self.episodes_trained as u64,
            blacklist: self.blacklist.clone(),
            explore: self.cfg.explore,
            imitation_rounds: self.cfg.imitation_rounds as u64,
            drift_monitor: self.drift_monitor.clone(),
            imitation_until: self.imitation_until as u64,
            retrains: self.retrains as u64,
        }
    }

    /// Adopt state captured by [`MlfRl::state`]; the batch pool and
    /// other scratch reset (they are performance caches, not state).
    pub(crate) fn restore_state(&mut self, st: MlfRlState) {
        self.inner_h.restore_state(st.inner_h);
        self.trainer.import_state(st.trainer);
        self.convergence = st.convergence;
        self.rng = SimRng::from_state(st.rng);
        self.rounds = st.rounds as usize;
        self.pending = st.pending;
        self.episode = st.episode;
        self.imitation_buffer = st.imitation_buffer;
        self.episodes_trained = st.episodes_trained as usize;
        self.blacklist = st.blacklist;
        self.cfg.explore = st.explore;
        self.cfg.imitation_rounds = st.imitation_rounds as usize;
        self.drift_monitor = st.drift_monitor;
        self.imitation_until = st.imitation_until as usize;
        self.retrains = st.retrains as usize;
        self.scratch = RlScratch::default();
    }

    /// Pop a cleared candidate batch from the pool (or allocate the
    /// pool's first few).
    fn take_batch(&mut self) -> FeatureBatch {
        self.scratch
            .batch_pool
            .pop()
            .unwrap_or_else(|| FeatureBatch::new(FEATURE_DIM))
    }

    /// Return a batch to the pool once its `Step` is done.
    fn recycle_batch(&mut self, mut batch: FeatureBatch) {
        if self.scratch.batch_pool.len() < BATCH_POOL_CAP {
            batch.clear();
            self.scratch.batch_pool.push(batch);
        }
    }

    /// Still copying MLF-H? True during the initial imitation budget
    /// and inside any drift-triggered retraining window.
    pub fn in_imitation_phase(&self) -> bool {
        self.rounds < self.cfg.imitation_rounds || self.rounds < self.imitation_until
    }

    /// Completed drift-retraining windows (0 when drift is off).
    pub fn retrains(&self) -> usize {
        self.retrains
    }

    /// Snapshot the trained policy (for transfer into an evaluation
    /// scheduler after a warm-up run, per §4.1's offline pre-training).
    pub fn export_policy(&self) -> ScoringPolicy {
        self.trainer.policy.clone()
    }

    /// Replace the policy with a pre-trained one and skip imitation:
    /// the scheduler starts in the RL phase immediately.
    pub fn import_policy(&mut self, policy: ScoringPolicy) {
        self.trainer.policy = policy;
        self.cfg.imitation_rounds = 0;
    }

    /// Toggle exploration (sampling) vs greedy action selection.
    pub fn set_explore(&mut self, explore: bool) {
        self.cfg.explore = explore;
    }

    /// Has the return EMA stabilised (§3.4's "well trained")?
    pub fn is_converged(&self) -> bool {
        self.convergence.is_converged()
    }

    /// Current return EMA of the convergence detector, if any episode
    /// has been trained yet (convergence diagnostics for benches).
    pub fn convergence_ema(&self) -> Option<f64> {
        self.convergence.ema()
    }

    /// REINFORCE episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// Fraction of buffered MLF-H decisions the current policy would
    /// reproduce greedily (imitation-quality diagnostic).
    pub fn imitation_agreement(&self) -> f64 {
        self.trainer.agreement(&self.imitation_buffer)
    }

    /// Candidate servers for `task` on the speculative cluster:
    /// underloaded hosts that fit, capped to the least-loaded
    /// `max_candidates` (by overload degree). Writes into
    /// caller-provided buffers and only partially sorts: hosts beyond
    /// the cap are discarded by `select_nth_unstable_by` without ever
    /// being ordered. The `(degree, id)` key is a total order that
    /// reproduces the old full stable sort's sequence exactly (equal
    /// degrees tie-break by id, which is the insertion order a stable
    /// sort preserved), so selections are unchanged.
    #[allow(clippy::too_many_arguments)]
    fn candidate_servers_into<V: ClusterView>(
        params: &Params,
        max_candidates: usize,
        plan: &V,
        ctx: &SchedulerContext<'_>,
        task: TaskId,
        blacklist: &ServerBlacklist,
        ranked: &mut Vec<(f64, ServerId)>,
        out: &mut Vec<ServerId>,
    ) {
        out.clear();
        let Some(spec) = ctx
            .jobs
            .get(&task.job)
            .and_then(|job| job.spec.tasks.get(task.idx as usize))
        else {
            return;
        };
        // Softer admission limit than MLF-H's fixed h_r: the paper
        // motivates MLF-RL by MLF-H's possibly sub-optimal fixed
        // parameters (§3.4). The policy is shown these riskier hosts
        // (their utilization features expose the risk) and the Eq. 7
        // reward arbitrates whether using the headroom pays off.
        // Recently-crashed servers are dropped entirely (an empty
        // candidate set still leaves the RIAL pick and the queue).
        let soft = (params.h_r + 0.08).min(0.98);
        ranked.clear();
        ranked.extend(
            (0..plan.server_count())
                .map(|i| plan.server(ServerId(i as u32)))
                .filter(|s| {
                    !blacklist.is_banned(s.id)
                        && !s.is_overloaded(soft)
                        && s.can_host(&spec.demand, spec.gpu_share, soft)
                })
                .map(|s| (s.overload_degree(), s.id)),
        );
        let key = |a: &(f64, ServerId), b: &(f64, ServerId)| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        };
        let k = max_candidates.min(ranked.len());
        if k > 0 && k < ranked.len() {
            ranked.select_nth_unstable_by(k - 1, key);
            ranked.truncate(k);
        }
        ranked.sort_unstable_by(key);
        out.clear();
        out.extend(ranked.iter().map(|&(_, s)| s));
    }

    /// Imitation round: emit MLF-H's actions and record its decisions
    /// as supervised examples, replaying them against an evolving plan
    /// so the features match what the RL phase will later see. Each
    /// round also trains several minibatches from a replay buffer —
    /// single-pass imitation underfits badly.
    fn imitation_round(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let actions = self.inner_h.schedule(ctx);
        let mut plan = ClusterOverlay::new(ctx.cluster, self.params.h_r);
        // Borrow-split: the decision list is moved out (and restored
        // below) so the loop can mutate `self` without cloning it.
        let decisions = std::mem::take(&mut self.inner_h.last_decisions);
        for &(task, chosen) in &decisions {
            let Some(job) = ctx.jobs.get(&task.job) else {
                continue;
            };
            // Migration decisions move an already-placed task: detach
            // it first so the plan mirrors MLF-H's speculative state.
            plan.remove(task);
            // Candidates exactly as the RL phase generates them.
            let mut servers = std::mem::take(&mut self.scratch.servers);
            let mut ranked = std::mem::take(&mut self.scratch.ranked);
            Self::candidate_servers_into(
                &self.params,
                self.cfg.max_candidates,
                &plan,
                ctx,
                task,
                &self.blacklist,
                &mut ranked,
                &mut servers,
            );
            self.scratch.ranked = ranked;
            let action_idx = match servers.iter().position(|&s| s == chosen) {
                Some(i) => i,
                None => {
                    servers.push(chosen);
                    servers.len() - 1
                }
            };
            let mut feats = self.take_batch();
            for &s in &servers {
                candidate_features_into(
                    &plan,
                    job,
                    task,
                    Some(s),
                    s == chosen,
                    ctx.now,
                    &self.params,
                    &mut feats,
                );
            }
            candidate_features_into(
                &plan,
                job,
                task,
                None,
                false,
                ctx.now,
                &self.params,
                &mut feats,
            );
            if let Some(t) = self.tracer.as_deref() {
                t.add(obs::Counter::CandidatesScored, feats.rows() as u64);
                // The training substrate: every teacher decision goes
                // to the trace with its full candidate matrix, so an
                // offline dataset can be replayed from the JSONL file
                // (rl::DatasetBuilder). Built only when tracing is on.
                let round = self.rounds as u64;
                t.emit(|| obs::TraceEvent::DecisionExample {
                    round,
                    t: ctx.now.as_mins_f64(),
                    job: task.job.0,
                    task: task.idx as u32,
                    src: "imitation",
                    action: action_idx as u32,
                    dim: feats.dim() as u32,
                    rows: feats.rows() as u32,
                    feats: rl::encode_feats(&feats),
                });
            }
            self.imitation_buffer.push(Step {
                candidates: feats,
                action: action_idx,
            });
            servers.clear();
            self.scratch.servers = servers;
            // MLF-H already committed to this placement on its own
            // overlay; if the replay overlay still refuses (the host
            // failed mid-round), the features simply under-count it.
            if let Some(spec) = job.spec.tasks.get(task.idx as usize) {
                let _ = plan.place(task, chosen, spec.demand, spec.gpu_share);
            }
        }
        self.inner_h.last_decisions = decisions;
        // Bound the buffer (drop oldest, recycling their batches).
        const BUFFER_CAP: usize = 50_000;
        if self.imitation_buffer.len() > BUFFER_CAP {
            let excess = self.imitation_buffer.len() - BUFFER_CAP;
            let expired: Vec<Step> = self.imitation_buffer.drain(..excess).collect();
            for s in expired {
                self.recycle_batch(s.candidates);
            }
        }
        // Replay minibatches, resampled by index — the `Step`s (and
        // their feature batches) stay in the buffer uncloned.
        if self.cfg.online_training && !self.imitation_buffer.is_empty() {
            for _ in 0..4 {
                let n = 64.min(self.imitation_buffer.len());
                self.scratch.minibatch_idx.clear();
                for _ in 0..n {
                    let i = self.rng.index(self.imitation_buffer.len());
                    self.scratch.minibatch_idx.push(i);
                }
                self.trainer
                    .imitate_indices(&self.imitation_buffer, &self.scratch.minibatch_idx);
            }
        }
        actions
    }

    /// RL round: the policy chooses destinations.
    fn rl_round(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let p = self.params;
        let mut actions = Vec::new();
        let mut plan = ClusterOverlay::new(ctx.cluster, p.h_r);
        let overloaded = plan.overloaded_servers(p.h_r);
        let priorities = MlfH::candidate_priorities(ctx, &p, &overloaded);

        // Victims off overloaded servers (heuristic, as in MLF-H).
        #[derive(Clone, Copy)]
        enum Origin {
            Queue,
            Server(ServerId),
        }
        let mut work: Vec<(TaskId, f64, Origin)> = Vec::new();
        if p.use_migration {
            for sid in overloaded {
                while plan.server(sid).is_overloaded(p.h_r) {
                    let Some(victim) = select_victim(&plan, ctx.jobs, sid, &priorities, &p) else {
                        break;
                    };
                    plan.remove(victim);
                    let prio = priorities.get(&victim).unwrap_or(0.0);
                    work.push((victim, prio, Origin::Server(sid)));
                }
            }
        }
        for &t in ctx.queue {
            work.push((t, priorities.get(&t).unwrap_or(0.0), Origin::Queue));
        }
        // Job-gang processing, mirroring MLF-H (see mlfh.rs): jobs by
        // max task priority; victims re-placed individually; waiting
        // tasks gang (the policy parking any task parks the job).
        //
        // One global sort by (job, priority desc, task) replaces the
        // former per-job filter-and-sort passes (O(jobs × work) scans
        // plus a BTreeMap of per-job maxima). Within each job run the
        // order matches the old per-job sort exactly, and the run head
        // carries the job's maximum priority — so ordering runs by
        // (head priority desc, job asc) reproduces the old job order,
        // decision for decision.
        work.sort_by(|a, b| {
            a.0.job
                .cmp(&b.0.job)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        for i in 1..=work.len() {
            let boundary = match (work.get(i), work.get(start)) {
                (Some(a), Some(b)) => a.0.job != b.0.job,
                _ => true,
            };
            if boundary {
                runs.push((start, i));
                start = i;
            }
        }
        // Run heads carry each job's max priority; missing indices
        // (impossible — runs index into `work`) sink to the end.
        let head = |r: &(usize, usize)| {
            work.get(r.0)
                .map(|w| (w.1, w.0.job))
                .unwrap_or((f64::NEG_INFINITY, cluster::JobId(u32::MAX)))
        };
        runs.sort_by(|a, b| {
            let (pa, ja) = head(a);
            let (pb, jb) = head(b);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| ja.cmp(&jb))
        });

        for &(lo, hi) in &runs {
            let Some(group) = work.get(lo..hi) else {
                continue;
            };
            let Some(jid) = group.first().map(|g| g.0.job) else {
                continue;
            };
            let Some(job) = ctx.jobs.get(&jid) else {
                continue;
            };

            // One policy decision for `task`; returns the chosen host.
            let decide = |this: &mut Self,
                          plan: &ClusterOverlay<'_>,
                          task: TaskId,
                          migration_from: Option<ServerId>|
             -> Option<ServerId> {
                let mut servers = std::mem::take(&mut this.scratch.servers);
                let mut ranked = std::mem::take(&mut this.scratch.ranked);
                Self::candidate_servers_into(
                    &this.params,
                    this.cfg.max_candidates,
                    plan,
                    ctx,
                    task,
                    &this.blacklist,
                    &mut ranked,
                    &mut servers,
                );
                this.scratch.ranked = ranked;
                let bl = &this.blacklist;
                let rial = select_host_filtered(plan, ctx.jobs, task, migration_from, &p, |sid| {
                    bl.is_banned(sid)
                })
                .or_else(|| {
                    if bl.any_banned() {
                        select_host(plan, ctx.jobs, task, migration_from, &p)
                    } else {
                        None
                    }
                });
                // RIAL may prefer a loaded server (communication
                // affinity) outside the least-loaded cap — offer it.
                if let Some(r) = rial {
                    if !servers.contains(&r) {
                        servers.push(r);
                    }
                }
                let mut feats = this.take_batch();
                for &s in &servers {
                    candidate_features_into(
                        plan,
                        job,
                        task,
                        Some(s),
                        rial == Some(s),
                        ctx.now,
                        &p,
                        &mut feats,
                    );
                }
                candidate_features_into(
                    plan,
                    job,
                    task,
                    None,
                    rial.is_none(),
                    ctx.now,
                    &p,
                    &mut feats,
                );
                let choice = if this.cfg.explore {
                    this.trainer.policy.sample(&feats, &mut this.rng)
                } else {
                    this.trainer.policy.greedy(&feats)
                };
                let host = servers.get(choice).copied();
                if let Some(t) = this.tracer.as_deref() {
                    t.add(obs::Counter::CandidatesScored, feats.rows() as u64);
                    obs::event!(
                        t,
                        PolicyDecision {
                            t: ctx.now.as_mins_f64(),
                            job: task.job.0,
                            task: task.idx as u32,
                            candidates: feats.rows() as u32,
                            chosen: choice as u32,
                            queued: host.is_none(),
                        }
                    );
                    let round = this.rounds as u64;
                    t.emit(|| obs::TraceEvent::DecisionExample {
                        round,
                        t: ctx.now.as_mins_f64(),
                        job: task.job.0,
                        task: task.idx as u32,
                        src: "rl",
                        action: choice as u32,
                        dim: feats.dim() as u32,
                        rows: feats.rows() as u32,
                        feats: rl::encode_feats(&feats),
                    });
                }
                servers.clear();
                this.scratch.servers = servers;
                this.pending.push(Step {
                    candidates: feats,
                    action: choice,
                });
                host
            };

            // Victims first. A "queue" decision for a victim leaves it
            // where it is (matching MLF-H's no-thrash rule).
            for (task, _, origin) in group.iter() {
                let Origin::Server(src) = *origin else {
                    continue;
                };
                let Some(spec) = job.spec.tasks.get(task.idx as usize) else {
                    continue;
                };
                match decide(self, &plan, *task, Some(src)) {
                    Some(host) if plan.place(*task, host, spec.demand, spec.gpu_share).is_ok() => {
                        if src != host {
                            actions.push(Action::Migrate {
                                task: *task,
                                to: host,
                            });
                        }
                    }
                    _ => {
                        // No destination (or the chosen host refused):
                        // put the victim back; if even the source
                        // refuses (it is draining), the plan just
                        // under-counts it and no action is emitted.
                        let _ = plan.place(*task, src, spec.demand, spec.gpu_share);
                    }
                }
            }

            // Waiting tasks: gang with rollback.
            let waiting: Vec<TaskId> = group
                .iter()
                .filter(|(_, _, o)| matches!(o, Origin::Queue))
                .map(|(t, _, _)| *t)
                .collect();
            if waiting.is_empty() {
                continue;
            }
            let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
            let mut ok = true;
            for &task in &waiting {
                let Some(spec) = job.spec.tasks.get(task.idx as usize) else {
                    ok = false;
                    break;
                };
                match decide(self, &plan, task, None) {
                    Some(host) if plan.place(task, host, spec.demand, spec.gpu_share).is_ok() => {
                        placed.push((task, host));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for (task, host) in placed {
                    if let Some(t) = self.tracer.as_deref() {
                        obs::event!(
                            t,
                            Placement {
                                t: ctx.now.as_mins_f64(),
                                job: task.job.0,
                                task: task.idx as u32,
                                server: host.0,
                                score: priorities.get(&task).unwrap_or(0.0),
                            }
                        );
                    }
                    actions.push(Action::Place { task, server: host });
                }
            } else {
                for (task, _) in placed {
                    plan.remove(task);
                }
            }
        }
        actions
    }
}

impl Scheduler for MlfRl {
    fn name(&self) -> &'static str {
        "MLF-RL"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let strikes = self.blacklist.observe(ctx.cluster);
        // Cloning the Arc keeps the span guard's borrow off `self`
        // (the round below takes `&mut self`).
        let tracer = self.tracer.clone();
        // Imitation rounds delegate to the inner MLF-H, whose own
        // blacklist observes the same cluster and reports the same
        // strikes — skip ours there to avoid double-counting.
        if let Some(t) = tracer.as_deref().filter(|_| !self.in_imitation_phase()) {
            if strikes > 0 {
                t.add(obs::Counter::BlacklistStrikes, strikes as u64);
                for &(sid, total) in self.blacklist.recent_strikes() {
                    obs::event!(
                        t,
                        BlacklistStrike {
                            t: ctx.now.as_mins_f64(),
                            server: sid.0,
                            strikes: total,
                        }
                    );
                }
            }
        }
        let actions = if self.in_imitation_phase() {
            let _span = tracer.as_ref().map(|t| obs::span!(t, imitation_round));
            self.imitation_round(ctx)
        } else {
            let _span = tracer.as_ref().map(|t| obs::span!(t, rl_round));
            self.rl_round(ctx)
        };
        self.rounds += 1;
        actions
    }

    fn observe_reward(&mut self, reward: &RewardComponents) {
        // Eq. 7: weighted sum of the five objective components.
        let r = reward.weighted(&self.params.beta);
        if !self.cfg.online_training {
            // Frozen evaluation: close out the round's steps without
            // learning from them.
            while let Some(s) = self.pending.pop() {
                self.recycle_batch(s.candidates);
            }
            return;
        }
        // Close out the previous round's steps with this reward.
        for s in self.pending.drain(..) {
            self.episode.push((s, r));
        }
        // Train an episode every `train_interval` rounds' worth of
        // steps. The episode is borrowed in place (trainer and episode
        // are disjoint fields) and its batches recycled afterwards.
        if self.episode.len() >= self.cfg.train_interval {
            let ret = self.trainer.train_episode(&self.episode);
            self.convergence.record(ret);
            self.episodes_trained += 1;
            while let Some((s, _)) = self.episode.pop() {
                self.recycle_batch(s.candidates);
            }
        }
        // Continuous retraining: watch the online reward outside
        // imitation windows (the teacher's rounds would skew the fast
        // EMA) and open a fresh imitation window on drift.
        let imitating = self.in_imitation_phase();
        let mut trigger = None;
        if let Some(m) = self.drift_monitor.as_mut() {
            if !imitating && m.observe(r) {
                trigger = Some((m.short().unwrap_or(r), m.long().unwrap_or(r)));
            }
        }
        if let (Some((short, long)), Some(dcfg)) = (trigger, self.cfg.drift) {
            self.imitation_until = self.rounds + dcfg.retrain_rounds;
            self.retrains += 1;
            // The buffered teacher examples and the in-flight episode
            // predate the drift — training on them would pull the
            // policy back toward the old distribution.
            let stale: Vec<Step> = self.imitation_buffer.drain(..).collect();
            for s in stale {
                self.recycle_batch(s.candidates);
            }
            while let Some((s, _)) = self.episode.pop() {
                self.recycle_batch(s.candidates);
            }
            if let Some(t) = self.tracer.clone() {
                obs::event!(
                    t,
                    DriftRetrain {
                        round: self.rounds as u64,
                        short: short,
                        long: long,
                    }
                );
            }
        }
    }

    fn attach_tracer(&mut self, tracer: std::sync::Arc<obs::Tracer>) {
        // The imitation phase delegates whole rounds to the inner
        // MLF-H, which then emits the placement/migration events.
        self.inner_h.attach_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    fn export_state(&self) -> Option<String> {
        Some(state_to_json(&self.state()))
    }

    fn import_state(&mut self, state: &str) -> bool {
        match state_from_json::<MlfRlState>(state) {
            Some(st) => {
                self.restore_state(st);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{JobArena, JobState, LearningProfile, MlAlgorithm};

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 4,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    fn job(id: u32, n: usize) -> JobState {
        let jid = JobId(id);
        let tasks = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 50.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(6),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 300,
            tasks,
            dag: Dag::sequential(n),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 50.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.01, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    #[test]
    fn imitation_phase_mirrors_mlfh() {
        let c = cluster();
        let j = job(1, 3);
        let queue: Vec<TaskId> = (0..3).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 5,
                ..Default::default()
            },
        );
        let mut h = MlfH::new(Params::default());
        assert!(rl.in_imitation_phase());
        let a_rl = rl.schedule(&ctx);
        let a_h = h.schedule(&ctx);
        assert_eq!(a_rl, a_h);
    }

    #[test]
    fn switches_to_rl_after_budget() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 3,
                ..Default::default()
            },
        );
        for round in 0..5 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [1.0; 5] });
        }
        assert!(!rl.in_imitation_phase());
    }

    #[test]
    fn rl_phase_emits_valid_actions() {
        let c = cluster();
        let j = job(1, 4);
        let queue: Vec<TaskId> = (0..4).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                explore: false,
                ..Default::default()
            },
        );
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = rl.schedule(&ctx);
        // Every emitted placement targets a queued task and an existing
        // server; no duplicates.
        let mut placed = Vec::new();
        for a in &actions {
            match a {
                Action::Place { task, server } => {
                    assert!(queue.contains(task));
                    assert!((server.0 as usize) < c.server_count());
                    assert!(!placed.contains(task));
                    placed.push(*task);
                }
                Action::Migrate { .. } | Action::Evict { .. } => {
                    panic!("no running tasks to migrate/evict: {a:?}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn rewards_drive_training() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                train_interval: 4,
                ..Default::default()
            },
        );
        for round in 0..16 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [0.5; 5] });
        }
        assert!(rl.episodes_trained >= 2, "{}", rl.episodes_trained);
    }

    #[test]
    fn frozen_policy_never_trains() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                train_interval: 2,
                online_training: false,
                explore: false,
                ..Default::default()
            },
        );
        for round in 0..12 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [0.5; 5] });
        }
        assert_eq!(rl.episodes_trained, 0);
        assert!(rl.pending.is_empty(), "pending steps must still drain");
    }

    #[test]
    fn drift_opens_a_retraining_window() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 0,
                drift: Some(DriftRetrainConfig {
                    monitor: rl::DriftConfig {
                        short_decay: 0.5,
                        long_decay: 0.98,
                        threshold: 0.2,
                        warmup: 8,
                        cooldown: 50,
                    },
                    retrain_rounds: 10,
                }),
                ..Default::default()
            },
        );
        let drive = |rl: &mut MlfRl, rounds: u64, reward: f64, from: u64| {
            for round in 0..rounds {
                let ctx = SchedulerContext {
                    now: SimTime::from_mins(from + round + 1),
                    jobs: &jobs,
                    cluster: &c,
                    queue: &queue,
                };
                rl.schedule(&ctx);
                rl.observe_reward(&RewardComponents { g: [reward; 5] });
            }
        };
        drive(&mut rl, 40, 1.0, 0);
        assert_eq!(rl.retrains(), 0);
        assert!(!rl.in_imitation_phase());
        // Reward collapse → drift → a bounded imitation window opens.
        drive(&mut rl, 10, -1.0, 40);
        assert_eq!(rl.retrains(), 1);
        assert!(rl.in_imitation_phase());
        // The window closes again after retrain_rounds.
        drive(&mut rl, 15, 1.0, 50);
        assert!(!rl.in_imitation_phase());
    }

    #[test]
    fn traced_rounds_emit_decision_examples() {
        let c = cluster();
        let j = job(1, 2);
        let queue: Vec<TaskId> = (0..2).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let tracer = std::sync::Arc::new(
            obs::Tracer::from_config(&obs::TraceConfig::Ring { capacity: 256 }).unwrap(),
        );
        // One imitation round + one RL round, both traced.
        let mut rl = MlfRl::new(
            Params::default(),
            MlfRlConfig {
                imitation_rounds: 1,
                explore: false,
                ..Default::default()
            },
        );
        rl.attach_tracer(tracer.clone());
        for round in 0..2 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            rl.schedule(&ctx);
            rl.observe_reward(&RewardComponents { g: [1.0; 5] });
        }
        let buffered = tracer.buffered();
        let mut srcs: Vec<&str> = buffered
            .iter()
            .filter_map(|e| match e {
                obs::TraceEvent::DecisionExample {
                    src,
                    dim,
                    rows,
                    feats,
                    action,
                    ..
                } => {
                    // Every example is internally consistent and replayable.
                    let batch = rl::decode_feats(feats, *dim as usize, *rows as usize)
                        .expect("feats decode");
                    assert_eq!(batch.dim(), FEATURE_DIM);
                    assert!((*action as usize) < *rows as usize);
                    Some(*src)
                }
                _ => None,
            })
            .collect();
        srcs.dedup();
        assert_eq!(srcs, vec!["imitation", "rl"], "one phase each: {srcs:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster();
        let j = job(1, 4);
        let queue: Vec<TaskId> = (0..4).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), j)].into();
        let mk = || {
            MlfRl::new(
                Params::default(),
                MlfRlConfig {
                    imitation_rounds: 0,
                    seed: 99,
                    ..Default::default()
                },
            )
        };
        let mut a = mk();
        let mut b = mk();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        assert_eq!(a.schedule(&ctx), b.schedule(&ctx));
    }
}
