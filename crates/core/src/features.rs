//! State featurisation for the MLF-RL policy network.
//!
//! §3.4 lists the RL state: per-task information (queue/running
//! status, resource demand, waiting/running time), per-job information
//! (algorithm, urgency, deadline, iterations, loss reductions, sizes,
//! dependency graph) and per-server information (utilization per
//! resource, per GPU, running tasks). We encode each *(task,
//! destination-candidate)* pair as one fixed-length vector: the shared
//! policy MLP scores every candidate and the softmax over scores is
//! the action distribution (see the `rl` crate).
//!
//! All features are squashed to roughly [0, 1] — raw hours or MB would
//! drown the rest.

use crate::params::Params;
use crate::placement::affinity_mb;
use cluster::{ClusterView, Resource, ServerId, TaskId};
use rl::FeatureBatch;
use simcore::SimTime;
use workload::JobState;

/// Dimensionality of a candidate feature vector.
pub const FEATURE_DIM: usize = 21;

/// Index of the heuristic-pick flag (the dimension marking MLF-H's
/// RIAL choice). Offline pipelines mask this teacher hint during
/// pretraining so the student learns the rule, not the answer — see
/// `rl::PretrainConfig::mask_dims`.
pub const HEURISTIC_PICK_DIM: usize = 12;

/// Squash a non-negative quantity into [0, 1): `x / (1 + x)`.
fn squash(x: f64) -> f64 {
    let x = x.max(0.0);
    x / (1.0 + x)
}

/// Features describing the task itself (first 12 dims).
fn task_features(job: &JobState, task_idx: usize, now: SimTime, p: &Params) -> [f64; 12] {
    let spec = &job.spec;
    let Some(t) = spec.tasks.get(task_idx) else {
        return [0.0; 12];
    };
    let slack_h = spec.deadline.since(now).as_hours_f64();
    [
        1.0 / job.current_iteration().max(1.0),
        spec.curve.normalized_delta_loss(job.iterations),
        spec.normalized_partition(task_idx),
        spec.urgency as f64 / p.urgency_levels.max(1) as f64,
        1.0 / (1.0 + slack_h),
        squash(job.remaining_runtime().as_hours_f64()),
        squash(job.task_waiting_time(task_idx, now).as_hours_f64()),
        t.gpu_share,
        squash(t.demand.get(Resource::Cpu) / 8.0),
        squash(t.demand.get(Resource::Memory) / 32.0),
        squash(t.demand.get(Resource::NetBw) / 250.0),
        if t.is_param_server { 1.0 } else { 0.0 },
    ]
}

/// Build the feature vector for placing `task` on `server`
/// (`None` = the "stay in queue" option).
/// `heuristic_pick` marks the candidate MLF-H's RIAL rule would choose
/// (`None` server + `heuristic_pick` marks "RIAL found no host", i.e.
/// MLF-H would queue the task). Feeding the heuristic's
/// recommendation to the policy is a standard learned-scheduler
/// design: imitation converges to MLF-H quickly and policy-gradient
/// fine-tuning deviates only where the Eq. 7 reward justifies it.
pub fn candidate_features<V: ClusterView>(
    cluster: &V,
    job: &JobState,
    task: TaskId,
    server: Option<ServerId>,
    heuristic_pick: bool,
    now: SimTime,
    p: &Params,
) -> Vec<f64> {
    let mut batch = FeatureBatch::new(FEATURE_DIM);
    candidate_features_into(
        cluster,
        job,
        task,
        server,
        heuristic_pick,
        now,
        p,
        &mut batch,
    );
    batch.row(0).to_vec()
}

/// Append the candidate's feature vector as a new row of `out` — the
/// allocation-free variant ([`candidate_features`] wraps it). The row
/// is written in place into the batch's flat buffer, so building a
/// full candidate set touches the heap only while the batch grows to
/// its high-water capacity.
#[allow(clippy::too_many_arguments)]
pub fn candidate_features_into<V: ClusterView>(
    cluster: &V,
    job: &JobState,
    task: TaskId,
    server: Option<ServerId>,
    heuristic_pick: bool,
    now: SimTime,
    p: &Params,
    out: &mut FeatureBatch,
) {
    debug_assert_eq!(out.dim(), FEATURE_DIM);
    let tf = task_features(job, task.idx as usize, now, p);
    let hp = if heuristic_pick { 1.0 } else { 0.0 };
    // Dims 12..=20: heuristic-pick flag, four utilizations, affinity,
    // no-fit flag, least-loaded-GPU utilization, queue-option flag.
    // The queue option keeps the sentinel zeros everywhere but dim 20.
    let tail: [f64; 9] = match (server, job.spec.tasks.get(task.idx as usize)) {
        (Some(sid), Some(spec)) => {
            let srv = cluster.server(sid);
            let u = srv.utilization();
            let neighbors = crate::placement::comm_degree(job, task.idx as usize) as f64;
            let max_affinity = (neighbors * job.spec.comm_mb).max(1.0);
            [
                hp,
                u.get(Resource::GpuCompute),
                u.get(Resource::Cpu),
                u.get(Resource::Memory),
                u.get(Resource::NetBw),
                affinity_mb(job, task.idx as usize, sid, cluster) / max_affinity,
                if srv.can_host(&spec.demand, spec.gpu_share, p.h_r) {
                    0.0
                } else {
                    1.0
                },
                srv.gpu_utilization(srv.least_loaded_gpu()),
                0.0, // not the queue option
            ]
        }
        (s, _) => {
            let queue_flag = if s.is_none() { 1.0 } else { 0.0 };
            [hp, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, queue_flag]
        }
    };
    let row = out.push_row();
    for (slot, v) in row.iter_mut().zip(tf.into_iter().chain(tail)) {
        *slot = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::SimDuration;
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{LearningProfile, MlAlgorithm};

    fn setup() -> (Cluster, JobState) {
        let c = Cluster::new(&ClusterConfig {
            servers: 2,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        });
        let jid = JobId(1);
        let tasks = (0..2)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i),
                partition_mb: 100.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(4),
            required_accuracy: 0.6,
            urgency: 7,
            max_iterations: 200,
            tasks,
            dag: Dag::sequential(2),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 200.0,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.02, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        (c, JobState::new(spec, SimTime::ZERO))
    }

    #[test]
    fn feature_vectors_have_fixed_dim_and_bounded_values() {
        let (c, job) = setup();
        let p = Params::default();
        for server in [Some(ServerId(0)), Some(ServerId(1)), None] {
            let f = candidate_features(
                &c,
                &job,
                TaskId::new(JobId(1), 0),
                server,
                false,
                SimTime::from_mins(5),
                &p,
            );
            assert_eq!(f.len(), FEATURE_DIM);
            for (i, v) in f.iter().enumerate() {
                assert!(v.is_finite(), "dim {i} not finite");
                assert!((-0.01..=10.01).contains(v), "dim {i} = {v} out of range");
            }
        }
    }

    #[test]
    fn queue_option_sets_sentinel_flag() {
        let (c, job) = setup();
        let p = Params::default();
        let f = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            None,
            false,
            SimTime::ZERO,
            &p,
        );
        assert_eq!(f[FEATURE_DIM - 1], 1.0);
        assert!(f[13..FEATURE_DIM - 1].iter().all(|v| *v == 0.0));
        let g = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            Some(ServerId(0)),
            false,
            SimTime::ZERO,
            &p,
        );
        assert_eq!(g[FEATURE_DIM - 1], 0.0);
    }

    #[test]
    fn loaded_server_shows_in_features() {
        let (mut c, job) = setup();
        let p = Params::default();
        c.place(
            TaskId::new(JobId(9), 0),
            ServerId(0),
            ResourceVec::new(1.0, 8.0, 64.0, 500.0),
            1.0,
        )
        .unwrap();
        let f0 = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            Some(ServerId(0)),
            false,
            SimTime::ZERO,
            &p,
        );
        let f1 = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            Some(ServerId(1)),
            false,
            SimTime::ZERO,
            &p,
        );
        // Utilization dims 13..17 are higher on server 0.
        for d in 13..17 {
            assert!(f0[d] > f1[d], "dim {d}");
        }
    }

    #[test]
    fn affinity_dim_reflects_colocated_neighbor() {
        let (mut c, job) = setup();
        let p = Params::default();
        // Place task 0 on server 1; task 1's candidate row for server 1
        // gets positive affinity.
        c.place(
            TaskId::new(JobId(1), 0),
            ServerId(1),
            ResourceVec::new(0.5, 2.0, 8.0, 50.0),
            0.5,
        )
        .unwrap();
        let f1 = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 1),
            Some(ServerId(1)),
            false,
            SimTime::ZERO,
            &p,
        );
        let f0 = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 1),
            Some(ServerId(0)),
            false,
            SimTime::ZERO,
            &p,
        );
        assert!(f1[17] > 0.0);
        assert_eq!(f0[17], 0.0);
    }

    #[test]
    fn batch_rows_match_single_candidate_vectors() {
        let (c, job) = setup();
        let p = Params::default();
        let options = [Some(ServerId(0)), Some(ServerId(1)), None];
        let mut batch = FeatureBatch::new(FEATURE_DIM);
        for (i, server) in options.iter().enumerate() {
            candidate_features_into(
                &c,
                &job,
                TaskId::new(JobId(1), 0),
                *server,
                i == 1,
                SimTime::from_mins(5),
                &p,
                &mut batch,
            );
        }
        assert_eq!(batch.rows(), 3);
        for (i, server) in options.iter().enumerate() {
            let single = candidate_features(
                &c,
                &job,
                TaskId::new(JobId(1), 0),
                *server,
                i == 1,
                SimTime::from_mins(5),
                &p,
            );
            assert_eq!(batch.row(i), single.as_slice(), "candidate {i}");
        }
        // Pooled reuse: clearing keeps capacity and rows rebuild
        // identically.
        let before = batch.row(0).to_vec();
        batch.clear();
        candidate_features_into(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            Some(ServerId(0)),
            false,
            SimTime::from_mins(5),
            &p,
            &mut batch,
        );
        assert_eq!(batch.row(0), before.as_slice());
    }

    #[test]
    fn urgency_and_iteration_features_move_as_expected() {
        let (c, mut job) = setup();
        let p = Params::default();
        let before = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            None,
            false,
            SimTime::ZERO,
            &p,
        );
        job.advance(100.0);
        let after = candidate_features(
            &c,
            &job,
            TaskId::new(JobId(1), 0),
            None,
            false,
            SimTime::ZERO,
            &p,
        );
        assert!(after[0] < before[0]); // 1/I shrinks
        assert!(after[1] < before[1]); // normalized δl shrinks
        assert!((before[3] - 0.7).abs() < 1e-12); // urgency 7 of 10
    }
}
