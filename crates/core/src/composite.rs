//! The composed MLFS scheduler and its evaluated variants.
//!
//! The paper evaluates three of its own configurations (Figs. 4–5):
//!
//! * **MLF-H** — the heuristic scheduler alone;
//! * **MLF-RL** — imitation-bootstrapped RL scheduling (no load
//!   control);
//! * **MLFS** — MLF-RL plus MLF-C load control ("MLFS improves MLF-RL
//!   … due to additional MLF-C").
//!
//! [`Mlfs`] wraps all three behind one type so the simulation engine
//! and bench harness treat them uniformly, and threads the ablation
//! switches in [`crate::Params`] through every component.

use crate::mlfc::{MlfC, MlfCState};
use crate::mlfh::{MlfH, MlfHState};
use crate::mlfrl::{MlfRl, MlfRlConfig, MlfRlState};
use crate::params::Params;
use crate::scheduler::{
    state_from_json, state_to_json, Action, RewardComponents, Scheduler, SchedulerContext,
};
use serde::{Deserialize, Serialize};

/// Which MLFS configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlfsVariant {
    /// Heuristic only.
    H,
    /// RL (with imitation bootstrap), no load control.
    Rl,
    /// Full system: RL + MLF-C.
    Full,
}

/// Configuration of the composite scheduler.
#[derive(Debug, Clone)]
pub struct MlfsConfig {
    /// Scheduling parameters and ablation switches.
    pub params: Params,
    /// RL hyperparameters (ignored by the `H` variant).
    pub rl: MlfRlConfig,
    /// Which variant to run.
    pub variant: MlfsVariant,
}

impl Default for MlfsConfig {
    fn default() -> Self {
        MlfsConfig {
            params: Params::default(),
            rl: MlfRlConfig::default(),
            variant: MlfsVariant::Full,
        }
    }
}

/// Evolving state of the composite: one slot per live component.
/// A slot's presence must match the variant's wiring for import to
/// succeed (a mismatch means the state came from a different variant).
#[derive(Serialize, Deserialize)]
struct MlfsState {
    h: Option<MlfHState>,
    rl: Option<MlfRlState>,
    c: Option<MlfCState>,
}

/// The composed MLFS scheduler.
pub struct Mlfs {
    variant: MlfsVariant,
    h: Option<MlfH>,
    rl: Option<MlfRl>,
    c: Option<MlfC>,
}

impl Mlfs {
    /// Build the requested variant.
    pub fn new(cfg: MlfsConfig) -> Self {
        let (h, rl) = match cfg.variant {
            MlfsVariant::H => (Some(MlfH::new(cfg.params)), None),
            MlfsVariant::Rl | MlfsVariant::Full => {
                (None, Some(MlfRl::new(cfg.params, cfg.rl.clone())))
            }
        };
        let c = if cfg.variant == MlfsVariant::Full {
            Some(MlfC::new(cfg.params))
        } else {
            None
        };
        Mlfs {
            variant: cfg.variant,
            h,
            rl,
            c,
        }
    }

    /// Convenience constructors for the three evaluated lines.
    pub fn heuristic(params: Params) -> Self {
        Mlfs::new(MlfsConfig {
            params,
            variant: MlfsVariant::H,
            ..Default::default()
        })
    }

    /// MLF-RL variant.
    pub fn rl(params: Params, rl: MlfRlConfig) -> Self {
        Mlfs::new(MlfsConfig {
            params,
            rl,
            variant: MlfsVariant::Rl,
        })
    }

    /// Full MLFS.
    pub fn full(params: Params, rl: MlfRlConfig) -> Self {
        Mlfs::new(MlfsConfig {
            params,
            rl,
            variant: MlfsVariant::Full,
        })
    }

    /// The active variant.
    pub fn variant(&self) -> MlfsVariant {
        self.variant
    }

    /// Mutable access to the RL component (policy transfer), if any.
    pub fn rl_mut(&mut self) -> Option<&mut MlfRl> {
        self.rl.as_mut()
    }
}

impl Scheduler for Mlfs {
    fn name(&self) -> &'static str {
        match self.variant {
            MlfsVariant::H => "MLF-H",
            MlfsVariant::Rl => "MLF-RL",
            MlfsVariant::Full => "MLFS",
        }
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        // Load control first: stopping a job this round frees capacity
        // that the engine reflects before the *next* round (the paper's
        // components also interleave at round granularity).
        let mut actions = Vec::new();
        if let Some(c) = &mut self.c {
            actions.extend(c.control(ctx));
        }
        let stopped: Vec<cluster::JobId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::StopJob { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        let mut placement = match (&mut self.h, &mut self.rl) {
            (Some(h), _) => h.schedule(ctx),
            (_, Some(rl)) => rl.schedule(ctx),
            // Constructors always install a scheduling component; if
            // none exists, an idle round is strictly better than
            // aborting the simulation.
            _ => Vec::new(),
        };
        // Don't place/migrate tasks of jobs MLF-C just stopped.
        placement.retain(|a| match a {
            Action::Place { task, .. } | Action::Migrate { task, .. } | Action::Evict { task } => {
                !stopped.contains(&task.job)
            }
            _ => true,
        });
        actions.extend(placement);
        actions
    }

    fn observe_reward(&mut self, reward: &RewardComponents) {
        if let Some(rl) = &mut self.rl {
            rl.observe_reward(reward);
        }
    }

    fn attach_tracer(&mut self, tracer: std::sync::Arc<obs::Tracer>) {
        // MLF-C stop decisions surface as engine-side `JobStopped`
        // events, so only the placement components take the handle.
        if let Some(h) = &mut self.h {
            h.attach_tracer(tracer.clone());
        }
        if let Some(rl) = &mut self.rl {
            rl.attach_tracer(tracer);
        }
    }

    fn export_state(&self) -> Option<String> {
        Some(state_to_json(&MlfsState {
            h: self.h.as_ref().map(MlfH::state),
            rl: self.rl.as_ref().map(MlfRl::state),
            c: self.c.as_ref().map(MlfC::state),
        }))
    }

    fn import_state(&mut self, state: &str) -> bool {
        let Some(st) = state_from_json::<MlfsState>(state) else {
            return false;
        };
        // Component wiring must match the exporting variant; refuse
        // (without mutating) otherwise.
        if st.h.is_some() != self.h.is_some()
            || st.rl.is_some() != self.rl.is_some()
            || st.c.is_some() != self.c.is_some()
        {
            return false;
        }
        if let (Some(h), Some(hs)) = (&mut self.h, st.h) {
            h.restore_state(hs);
        }
        if let (Some(rl), Some(rs)) = (&mut self.rl, st.rl) {
            rl.restore_state(rs);
        }
        if let (Some(c), Some(cs)) = (&mut self.c, st.c) {
            c.restore_state(cs);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper_legends() {
        let p = Params::default();
        assert_eq!(Mlfs::heuristic(p).name(), "MLF-H");
        assert_eq!(Mlfs::rl(p, MlfRlConfig::default()).name(), "MLF-RL");
        assert_eq!(Mlfs::full(p, MlfRlConfig::default()).name(), "MLFS");
    }

    #[test]
    fn variants_wire_the_right_components() {
        let p = Params::default();
        let h = Mlfs::heuristic(p);
        assert!(h.h.is_some() && h.rl.is_none() && h.c.is_none());
        let r = Mlfs::rl(p, MlfRlConfig::default());
        assert!(r.h.is_none() && r.rl.is_some() && r.c.is_none());
        let f = Mlfs::full(p, MlfRlConfig::default());
        assert!(f.h.is_none() && f.rl.is_some() && f.c.is_some());
    }
}
