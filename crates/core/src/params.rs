//! MLFS tunable parameters with the paper's §4.1 defaults, plus the
//! ablation switches exercised in Figs. 6–9.

use serde::{Deserialize, Serialize};

/// All MLFS knobs. Field docs quote the paper's interpretation of each.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Eq. 6 weight between ML features and computation features
    /// ("a larger α means that the ML job features have higher
    /// weights"). Default 0.3.
    pub alpha: f64,
    /// Eq. 3/5 child-priority discount ("a larger γ means a higher
    /// weight is given to the priorities of a task's children").
    /// Default 0.8.
    pub gamma: f64,
    /// Eq. 4 deadline weight. Default 0.3.
    pub gamma_d: f64,
    /// Eq. 4 remaining-time weight. Default 0.3.
    pub gamma_r: f64,
    /// Eq. 4 waiting-time weight. Default 0.35.
    pub gamma_w: f64,
    /// Number of urgency levels `m` (urgency ∈ [1, m]). Default 10.
    pub urgency_levels: u8,
    /// Per-resource overload threshold `h_r` (default 0.9).
    pub h_r: f64,
    /// Cluster overload threshold `h_s` on the mean overload degree
    /// (default 0.9).
    pub h_s: f64,
    /// Fraction of lowest-priority tasks eligible for migration when a
    /// GPU is overloaded, `p_s` (default 0.1).
    pub p_s: f64,
    /// Eq. 7 reward weights β₁…β₅ (defaults 0.5, 0.55, 0.25, 0.15,
    /// 0.15; "larger β₂ means more weights on deadline guarantee").
    pub beta: [f64; 5],
    /// Reward discount η (default 0.95).
    pub eta: f64,

    // ---- ablation switches (each corresponds to one paper figure) ----
    /// Fig. 6: include the urgency coefficient `L_J` in Eq. 2.
    pub use_urgency: bool,
    /// Fig. 6: include the deadline term in Eq. 4.
    pub use_deadline: bool,
    /// Fig. 7: include bandwidth terms in the RIAL ideal vectors.
    pub use_bandwidth: bool,
    /// Fig. 8: enable overloaded-server task migration.
    pub use_migration: bool,
    /// Fig. 9: enable MLF-C load control.
    pub use_mlfc: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            alpha: 0.3,
            gamma: 0.8,
            gamma_d: 0.3,
            gamma_r: 0.3,
            gamma_w: 0.35,
            urgency_levels: 10,
            h_r: 0.9,
            h_s: 0.9,
            p_s: 0.1,
            beta: [0.5, 0.55, 0.25, 0.15, 0.15],
            eta: 0.95,
            use_urgency: true,
            use_deadline: true,
            use_bandwidth: true,
            use_migration: true,
            use_mlfc: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = Params::default();
        assert_eq!(p.alpha, 0.3);
        assert_eq!(p.gamma, 0.8);
        assert_eq!(p.gamma_d, 0.3);
        assert_eq!(p.gamma_r, 0.3);
        assert_eq!(p.gamma_w, 0.35);
        assert_eq!(p.beta, [0.5, 0.55, 0.25, 0.15, 0.15]);
        assert_eq!(p.eta, 0.95);
        assert_eq!(p.h_r, 0.9);
        assert_eq!(p.h_s, 0.9);
        assert_eq!(p.p_s, 0.1);
        assert!(p.use_urgency && p.use_deadline && p.use_bandwidth);
        assert!(p.use_migration && p.use_mlfc);
    }
}
