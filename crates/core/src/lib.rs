//! # mlfs — ML-Feature-based job Scheduling (the paper's contribution)
//!
//! Implements the three components of MLFS (Wang, Liu & Shen, CoNEXT
//! '20) plus the scheduler interface shared with the baseline
//! schedulers:
//!
//! * [`scheduler`] — the [`Scheduler`] trait, the per-tick
//!   [`SchedulerContext`] view and the [`Action`] vocabulary
//!   (place / migrate / evict / stop / set-policy);
//! * [`priority`] — task priorities from ML spatial/temporal features
//!   and computation features (Eqs. 2–6);
//! * [`placement`] — RIAL-style ideal-point host selection and
//!   migration-victim selection (§3.3.2–3.3.3, method of \[47\]);
//! * [`mlfh`] — the heuristic scheduler MLF-H;
//! * [`features`] — state featurisation for the RL policy (§3.4's
//!   state description);
//! * [`mlfrl`] — MLF-RL: imitation-bootstrapped, policy-gradient
//!   fine-tuned RL scheduler with the Eq. 7 reward;
//! * [`mlfc`] — MLF-C: system load control via stop-policy enforcement
//!   and demotion under overload (§3.5);
//! * [`composite`] — the full MLFS pipeline (MLF-H → trained MLF-RL,
//!   plus MLF-C), with ablation switches for every figure-6…9
//!   experiment.
//!
//! # Example
//!
//! Build the three evaluated MLFS variants:
//!
//! ```
//! use mlfs::{Mlfs, MlfRlConfig, Params, Scheduler};
//!
//! let params = Params::default(); // the paper's §4.1 values
//! let heuristic = Mlfs::heuristic(params);
//! let rl = Mlfs::rl(params, MlfRlConfig::default());
//! let full = Mlfs::full(params, MlfRlConfig::default());
//! assert_eq!(heuristic.name(), "MLF-H");
//! assert_eq!(rl.name(), "MLF-RL");
//! assert_eq!(full.name(), "MLFS");
//! ```

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blacklist;
pub mod composite;
pub mod features;
pub mod mlfc;
pub mod mlfh;
pub mod mlfrl;
pub mod params;
pub mod placement;
pub mod priority;
pub mod scheduler;

pub use blacklist::ServerBlacklist;
pub use composite::{Mlfs, MlfsConfig, MlfsVariant};
pub use mlfc::MlfC;
pub use mlfh::MlfH;
pub use mlfrl::{DriftRetrainConfig, MlfRl, MlfRlConfig};
pub use params::Params;
pub use scheduler::{
    state_from_json, state_to_json, Action, RewardComponents, Scheduler, SchedulerContext,
};
