//! Flaky-server blacklist with exponential backoff.
//!
//! Schedulers observe cluster health once per round. A server that
//! goes down earns a *strike*; when it comes back up it is banned from
//! placement for `base_rounds * 2^(strikes-1)` rounds (capped), so
//! repeat offenders are avoided for exponentially longer. Down and
//! draining servers are already refused by [`cluster::Server::can_host`];
//! the blacklist adds memory of *past* crashes on top of that.
//!
//! The ban is a soft preference: callers fall back to the unfiltered
//! candidate set when every feasible host is banned, so a mostly-dead
//! cluster still schedules rather than stalling.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use cluster::{ClusterView, HealthState, ServerId};

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Entry {
    /// How many distinct crashes this server has accumulated.
    strikes: u32,
    /// Whether the server was observed down last round (edge detection).
    down: bool,
    /// First round at which the server may host tasks again.
    banned_until: u64,
}

/// Tracks crash history per server and answers "should placement
/// avoid this server right now?".
///
/// Serializable so schedulers can carry crash memory across a service
/// restart (`Scheduler::export_state`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerBlacklist {
    /// Backoff after the first crash, in scheduler rounds.
    base_rounds: u64,
    /// Ceiling on any single backoff, in scheduler rounds.
    max_rounds: u64,
    round: u64,
    entries: BTreeMap<ServerId, Entry>,
    /// Strikes registered by the most recent `observe` call, as
    /// `(server, total strikes)` — consumed by telemetry.
    new_strikes: Vec<(ServerId, u32)>,
}

impl Default for ServerBlacklist {
    fn default() -> Self {
        Self {
            base_rounds: 3,
            max_rounds: 120,
            round: 0,
            entries: BTreeMap::new(),
            new_strikes: Vec::new(),
        }
    }
}

impl ServerBlacklist {
    /// Advance one scheduler round and fold in the current health of
    /// every server. Call exactly once per `plan()`. Returns the
    /// number of *new* strikes (crash edges) seen this round;
    /// [`ServerBlacklist::recent_strikes`] lists them.
    pub fn observe<V: ClusterView>(&mut self, view: &V) -> u32 {
        self.round += 1;
        self.new_strikes.clear();
        for i in 0..view.server_count() {
            let sid = ServerId(i as u32);
            let down = matches!(view.server(sid).health(), HealthState::Down { .. });
            let e = self.entries.entry(sid).or_default();
            if down && !e.down {
                // Crash edge: one strike per distinct outage.
                e.strikes += 1;
                self.new_strikes.push((sid, e.strikes));
            } else if !down && e.down {
                // Recovery edge: start the backoff window.
                let shift = e.strikes.min(20).saturating_sub(1);
                let backoff = self
                    .base_rounds
                    .saturating_mul(1u64 << shift)
                    .min(self.max_rounds);
                e.banned_until = self.round + backoff;
            }
            e.down = down;
        }
        self.new_strikes.len() as u32
    }

    /// The `(server, total strikes)` pairs struck by the most recent
    /// `observe` call (crash edges only; empty on healthy rounds).
    pub fn recent_strikes(&self) -> &[(ServerId, u32)] {
        &self.new_strikes
    }

    /// Whether placement should avoid `server` this round.
    pub fn is_banned(&self, server: ServerId) -> bool {
        self.entries
            .get(&server)
            .is_some_and(|e| e.down || self.round < e.banned_until)
    }

    /// Whether any server is currently banned (used to decide whether
    /// an unfiltered retry could possibly help).
    pub fn any_banned(&self) -> bool {
        self.entries
            .values()
            .any(|e| e.down || self.round < e.banned_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, Topology};

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 3,
            gpus_per_server: 4,
            gpu_capacity: 1.0,
            cpu_cores: 32.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    #[test]
    fn backoff_doubles_per_strike_and_caps() {
        let mut c = cluster();
        let mut bl = ServerBlacklist::default();
        let sid = ServerId(1);

        // Healthy cluster: nothing banned.
        bl.observe(&c);
        assert!(!bl.any_banned());

        // First crash: banned while down, then 3 rounds after recovery.
        c.fail_server(sid, None);
        bl.observe(&c);
        assert!(bl.is_banned(sid));
        assert!(!bl.is_banned(ServerId(0)));
        c.recover_server(sid);
        bl.observe(&c);
        for _ in 0..3 {
            assert!(bl.is_banned(sid));
            bl.observe(&c);
        }
        assert!(!bl.is_banned(sid));

        // Second crash: the window doubles to 6 rounds.
        c.fail_server(sid, None);
        bl.observe(&c);
        c.recover_server(sid);
        bl.observe(&c);
        for _ in 0..6 {
            assert!(bl.is_banned(sid));
            bl.observe(&c);
        }
        assert!(!bl.is_banned(sid));
        assert!(!bl.any_banned());
    }

    #[test]
    fn observe_reports_new_strikes() {
        let mut c = cluster();
        let mut bl = ServerBlacklist::default();
        assert_eq!(bl.observe(&c), 0);
        c.fail_server(ServerId(0), None);
        c.fail_server(ServerId(2), None);
        assert_eq!(bl.observe(&c), 2);
        assert_eq!(bl.recent_strikes(), &[(ServerId(0), 1), (ServerId(2), 1)]);
        // Staying down is not a new strike.
        assert_eq!(bl.observe(&c), 0);
        assert!(bl.recent_strikes().is_empty());
    }

    #[test]
    fn draining_is_not_a_strike() {
        let mut c = cluster();
        let mut bl = ServerBlacklist::default();
        c.drain_server(ServerId(2));
        bl.observe(&c);
        assert!(!bl.is_banned(ServerId(2)));
        c.recover_server(ServerId(2));
        bl.observe(&c);
        assert!(!bl.any_banned());
    }
}
