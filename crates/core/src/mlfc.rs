//! MLF-C: ML-feature-based system load control (§3.5).
//!
//! Two responsibilities:
//!
//! * **Stop-policy enforcement** — apply each job's effective option:
//!   option ii (OptStop) stops a job at (near) its maximum accuracy;
//!   option iii stops once the required accuracy is reached, or when
//!   the learning-curve ensemble confidently predicts the requirement
//!   unreachable.
//! * **Overload reaction** — the cluster is overloaded "when there are
//!   tasks in the queue or when `O_c^t > h_s`"; then jobs that allowed
//!   it have their option demoted (i → ii → iii) to shed iterations.
//!
//! Ensemble fits are throttled: a job is re-examined only after its
//! iteration count grew by ≥ 2% since the last examination, keeping
//! the per-round cost low while "monitor\[ing\] the accuracy change in
//! real time".

use crate::params::Params;
use crate::scheduler::{Action, SchedulerContext};
use cluster::JobId;
use learncurve::{OptStopDecision, OptStopRule};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workload::{JobState, StopPolicy, StopReason};

/// Maximum history points offered to the curve-fitting ensemble.
const MAX_FIT_POINTS: usize = 100;

/// Evolving MLF-C state carried across a service restart: the
/// examination throttle. (`params` and `rule` are static config.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct MlfCState {
    last_checked: BTreeMap<JobId, f64>,
}

/// The MLF-C load controller.
#[derive(Debug, Clone)]
pub struct MlfC {
    /// Tunables (`h_s` and the ablation switch live here).
    pub params: Params,
    /// The early-stopping rule.
    pub rule: OptStopRule,
    /// Iterations at which each job was last examined.
    last_checked: BTreeMap<JobId, f64>,
}

impl MlfC {
    /// New controller.
    pub fn new(params: Params) -> Self {
        MlfC {
            params,
            rule: OptStopRule::default(),
            last_checked: BTreeMap::new(),
        }
    }

    /// Evolving state for `Scheduler::export_state`.
    pub(crate) fn state(&self) -> MlfCState {
        MlfCState {
            last_checked: self.last_checked.clone(),
        }
    }

    /// Adopt state captured by [`MlfC::state`].
    pub(crate) fn restore_state(&mut self, st: MlfCState) {
        self.last_checked = st.last_checked;
    }

    /// Is the cluster overloaded per §3.5?
    pub fn system_overloaded(&self, ctx: &SchedulerContext<'_>) -> bool {
        !ctx.queue.is_empty() || ctx.cluster.cluster_overload_degree() > self.params.h_s
    }

    /// Subsampled `(iteration, accuracy)` history for curve fitting.
    fn accuracy_history(job: &JobState) -> Vec<(f64, f64)> {
        let n = job.recorded_iterations();
        if n == 0 {
            return Vec::new();
        }
        let stride = (n / MAX_FIT_POINTS).max(1);
        (1..=n)
            .step_by(stride)
            .map(|i| (i as f64, job.spec.curve.accuracy_at(i as f64)))
            .collect()
    }

    /// Produce this round's load-control actions.
    pub fn control(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        if !self.params.use_mlfc {
            return Vec::new();
        }
        let overloaded = self.system_overloaded(ctx);
        let mut actions = Vec::new();
        for job in ctx.active_jobs() {
            let id = job.spec.id;

            // Overload reaction: demote one level if the user allows.
            let mut policy = job.effective_policy;
            if overloaded && job.spec.allow_demotion {
                let demoted = policy.demoted();
                if demoted != policy {
                    policy = demoted;
                    actions.push(Action::SetPolicy { job: id, policy });
                }
            }

            // Throttle the expensive examination.
            let last = self.last_checked.get(&id).copied().unwrap_or(-1.0);
            let grown = job.iterations >= last * 1.02 + 1.0;
            if !grown {
                continue;
            }

            match policy {
                StopPolicy::MaxIterations => {
                    // Option i: the engine enforces the iteration
                    // budget; nothing to do.
                }
                StopPolicy::OptStop => {
                    self.last_checked.insert(id, job.iterations);
                    let hist = Self::accuracy_history(job);
                    let decision = self.rule.decide_peak(
                        &hist,
                        job.spec.max_iterations as f64,
                        job.accuracy(),
                    );
                    if decision == OptStopDecision::StopReached {
                        actions.push(Action::StopJob {
                            job: id,
                            reason: StopReason::OptStop,
                        });
                    }
                }
                StopPolicy::RequiredAccuracy => {
                    self.last_checked.insert(id, job.iterations);
                    // Cheap fast path first.
                    if job.accuracy() >= job.spec.required_accuracy {
                        actions.push(Action::StopJob {
                            job: id,
                            reason: StopReason::RequiredAccuracy,
                        });
                        continue;
                    }
                    let hist = Self::accuracy_history(job);
                    match self.rule.decide_required(
                        &hist,
                        job.spec.max_iterations as f64,
                        job.accuracy(),
                        job.spec.required_accuracy,
                    ) {
                        OptStopDecision::StopReached => actions.push(Action::StopJob {
                            job: id,
                            reason: StopReason::RequiredAccuracy,
                        }),
                        OptStopDecision::StopUnreachable => actions.push(Action::StopJob {
                            job: id,
                            reason: StopReason::PredictedUnreachable,
                        }),
                        OptStopDecision::Continue => {}
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, ResourceVec, TaskId, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, TaskSpec};
    use workload::JobArena;
    use workload::{LearningProfile, MlAlgorithm};

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 2,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    fn job(id: u32, policy: StopPolicy, allow_demotion: bool, k: f64) -> JobState {
        let jid = JobId(id);
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(6),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 2000,
            tasks: vec![TaskSpec {
                id: TaskId::new(jid, 0),
                partition_mb: 50.0,
                demand: ResourceVec::splat(0.3),
                gpu_share: 0.3,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            }],
            dag: Dag::independent(1),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 50.0,
            train_data_mb: 300.0,
            // achievable = 0.9 × (1 − 0.1) = 0.81 ≥ required 0.6
            curve: LearningProfile::new(2.0, 0.2, k, 0.9),
            stop_policy: policy,
            allow_demotion,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    fn ctx<'a>(
        jobs: &'a JobArena,
        cluster: &'a Cluster,
        queue: &'a [TaskId],
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now: SimTime::from_mins(30),
            jobs,
            cluster,
            queue,
        }
    }

    #[test]
    fn overload_detection_via_queue_and_degree() {
        let c = cluster();
        let jobs = JobArena::new();
        let mlfc = MlfC::new(Params::default());
        let empty: Vec<TaskId> = vec![];
        assert!(!mlfc.system_overloaded(&ctx(&jobs, &c, &empty)));
        let queued = vec![TaskId::new(JobId(1), 0)];
        assert!(mlfc.system_overloaded(&ctx(&jobs, &c, &queued)));
        // Degree-based: saturate both servers.
        let mut c2 = cluster();
        for s in 0..2 {
            c2.place(
                TaskId::new(JobId(9), s as u16),
                cluster::ServerId(s),
                ResourceVec::new(2.0, 16.0, 128.0, 1000.0),
                1.0,
            )
            .unwrap();
        }
        assert!(mlfc.system_overloaded(&ctx(&jobs, &c2, &empty)));
    }

    #[test]
    fn required_accuracy_job_stops_when_reached() {
        let c = cluster();
        let mut j = job(1, StopPolicy::RequiredAccuracy, false, 0.05);
        // Run enough iterations that accuracy (→0.81) passes 0.6.
        j.advance(100.0);
        assert!(j.accuracy() >= 0.6);
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut mlfc = MlfC::new(Params::default());
        let actions = mlfc.control(&ctx(&jobs, &c, &[]));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::StopJob {
                job: JobId(1),
                reason: StopReason::RequiredAccuracy
            }
        )));
    }

    #[test]
    fn optstop_job_stops_after_saturation() {
        let c = cluster();
        let mut j = job(2, StopPolicy::OptStop, false, 0.05);
        // k = 0.05 saturates within ~200 iterations of a 2000 budget.
        j.advance(400.0);
        let jobs: JobArena = [(JobId(2), j)].into();
        let mut mlfc = MlfC::new(Params::default());
        let actions = mlfc.control(&ctx(&jobs, &c, &[]));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::StopJob {
                    job: JobId(2),
                    reason: StopReason::OptStop
                }
            )),
            "{actions:?}"
        );
    }

    #[test]
    fn optstop_job_keeps_running_early() {
        let c = cluster();
        let mut j = job(3, StopPolicy::OptStop, false, 0.002);
        j.advance(30.0); // far from the ~2300-iteration saturation
        let jobs: JobArena = [(JobId(3), j)].into();
        let mut mlfc = MlfC::new(Params::default());
        let actions = mlfc.control(&ctx(&jobs, &c, &[]));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::StopJob { .. })),
            "{actions:?}"
        );
    }

    #[test]
    fn demotion_only_under_overload_and_permission() {
        let c = cluster();
        let j_allow = job(1, StopPolicy::MaxIterations, true, 0.002);
        let j_deny = job(2, StopPolicy::MaxIterations, false, 0.002);
        let jobs: JobArena = [(JobId(1), j_allow), (JobId(2), j_deny)].into();
        let mut mlfc = MlfC::new(Params::default());
        // Not overloaded: no demotion.
        let a = mlfc.control(&ctx(&jobs, &c, &[]));
        assert!(!a.iter().any(|x| matches!(x, Action::SetPolicy { .. })));
        // Overloaded (non-empty queue): only the permitting job demotes.
        let queued = vec![TaskId::new(JobId(1), 0)];
        let a = mlfc.control(&ctx(&jobs, &c, &queued));
        let demotions: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                Action::SetPolicy { job, policy } => Some((*job, *policy)),
                _ => None,
            })
            .collect();
        assert_eq!(demotions, vec![(JobId(1), StopPolicy::OptStop)]);
    }

    #[test]
    fn ablation_disables_everything() {
        let c = cluster();
        let mut j = job(1, StopPolicy::RequiredAccuracy, true, 0.05);
        j.advance(200.0);
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut mlfc = MlfC::new(Params {
            use_mlfc: false,
            ..Params::default()
        });
        assert!(mlfc.control(&ctx(&jobs, &c, &[])).is_empty());
    }

    #[test]
    fn throttling_skips_unchanged_jobs() {
        let c = cluster();
        let mut j = job(1, StopPolicy::OptStop, false, 0.002);
        j.advance(30.0);
        let jobs: JobArena = [(JobId(1), j)].into();
        let mut mlfc = MlfC::new(Params::default());
        mlfc.control(&ctx(&jobs, &c, &[]));
        // Second call with no progress: the job is skipped (no panic,
        // no duplicate work — verified via the recorded checkpoint).
        let before = mlfc.last_checked.clone();
        mlfc.control(&ctx(&jobs, &c, &[]));
        assert_eq!(before, mlfc.last_checked);
    }
}
