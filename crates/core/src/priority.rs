//! Task priority determination (§3.3.1, Eqs. 2–6).
//!
//! Combines:
//! * **ML features** (Eq. 2): urgency `L_J`, iteration importance
//!   `1/I`, normalized loss reduction `δl_{I−1}/Σδl`, and partition
//!   size `S_k/S_J`; propagated up the dependency graph with discount
//!   `γ` (Eq. 3);
//! * **computation features** (Eq. 4): deadline proximity
//!   `1/(d_{k,J} − t)`, remaining time `1/r_{k,J}` and waiting time
//!   `w_{k,J}`, propagated identically (Eq. 5);
//! * a weighted blend `P = α·P^ML + (1−α)·P^C` (Eq. 6).
//!
//! Time quantities are expressed in **hours** so the three Eq. 4 terms
//! share a scale (the paper leaves units unspecified). `1/(d−t)` is
//! clamped: a task at or past its deadline gets the maximum deadline
//! urgency rather than a singular or negative value.

use crate::params::Params;
use cluster::TaskId;
use simcore::SimTime;
use workload::JobState;

/// Cap applied to the `1/(d−t)` and `1/r` hyperbolic terms (reached
/// when the deadline is ≤ 36 s away). Keeps priorities finite.
const HYPERBOLIC_CAP: f64 = 100.0;

/// Reusable buffers for [`job_task_priorities_into`] — one set serves
/// every job in a scheduling round, so the hot path performs no
/// per-job allocation.
#[derive(Debug, Default)]
pub struct PriorityScratch {
    ml: Vec<f64>,
    comp: Vec<f64>,
    /// Blended Eq. 6 priorities for the last job processed (workers
    /// first, then the parameter server if present).
    pub out: Vec<f64>,
}

/// Priorities for every task of `job` (workers first, then the
/// parameter server if present), per Eqs. 2–6.
pub fn job_task_priorities(job: &JobState, now: SimTime, p: &Params) -> Vec<f64> {
    let mut s = PriorityScratch::default();
    job_task_priorities_into(job, now, p, &mut s);
    s.out
}

/// [`job_task_priorities`] into reusable scratch (results in
/// `s.out`). Identical numerics — the per-task terms, the reverse
/// topological propagation and the Eq. 6 blend run in the same order,
/// so values are bit-identical to the allocating form.
pub fn job_task_priorities_into(job: &JobState, now: SimTime, p: &Params, s: &mut PriorityScratch) {
    let spec = &job.spec;
    let n_workers = spec.worker_count();

    // ---- ML feature base priorities (Eq. 2) ----
    let urgency = if p.use_urgency {
        spec.urgency as f64
    } else {
        1.0
    };
    let iter_importance = 1.0 / job.current_iteration().max(1.0);
    let norm_delta = spec.curve.normalized_delta_loss(job.iterations);
    let temporal = urgency * iter_importance * norm_delta;
    s.ml.clear();
    s.ml.extend((0..n_workers).map(|k| temporal * spec.normalized_partition(k)));

    // ---- computation feature base priorities (Eq. 4) ----
    let remaining_h = job.remaining_runtime().as_hours_f64().max(1e-9);
    s.comp.clear();
    s.comp.extend((0..n_workers).map(|k| {
        let deadline_term = if p.use_deadline {
            let d = spec.task_deadline(k);
            if now >= d {
                // Deadline already missed: the term exists to
                // "help meet the job deadline", which is no longer
                // possible — a missed-deadline job must not
                // outrank jobs that can still make theirs.
                0.0
            } else {
                let slack_h = d.since(now).as_hours_f64();
                p.gamma_d * (1.0 / slack_h.max(1.0 / HYPERBOLIC_CAP)).min(HYPERBOLIC_CAP)
            }
        } else {
            0.0
        };
        let remaining_term = p.gamma_r * (1.0 / remaining_h).min(HYPERBOLIC_CAP);
        let waiting_term = p.gamma_w * job.task_waiting_time(k, now).as_hours_f64();
        deadline_term + remaining_term + waiting_term
    }));

    // ---- child propagation (Eqs. 3 and 5): reverse topological pass ----
    let order = spec.dag.topological_order();
    let (ml, comp) = (&mut s.ml, &mut s.comp);
    for &k in order.iter().rev() {
        let k = k as usize;
        let (mut ml_kids, mut c_kids) = (0.0, 0.0);
        for &c in spec.dag.children(k) {
            ml_kids += ml.get(c as usize).copied().unwrap_or(0.0);
            c_kids += comp.get(c as usize).copied().unwrap_or(0.0);
        }
        if let Some(v) = ml.get_mut(k) {
            *v += p.gamma * ml_kids;
        }
        if let Some(v) = comp.get_mut(k) {
            *v += p.gamma * c_kids;
        }
    }

    // ---- blend (Eq. 6) ----
    s.out.clear();
    s.out.extend(
        ml.iter()
            .zip(comp.iter())
            .map(|(m, c)| p.alpha * m + (1.0 - p.alpha) * c),
    );

    // Parameter-server task: "assigned with the highest priority"
    // (§3.3.1) — rank it above all of this job's workers.
    if spec.has_param_server() {
        let max = s.out.iter().cloned().fold(0.0, f64::max);
        s.out.push(max * 1.05 + 1.0);
    }
}

/// Task-priority lookup table backed by a flat sorted vector.
///
/// The schedulers only ever *point-look-up* priorities (ordering comes
/// from sorting the round's work list), so a binary-searched
/// `Vec<(TaskId, f64)>` replaces the former `BTreeMap<TaskId, f64>`:
/// one contiguous allocation instead of a node per task, and
/// cache-friendly lookups.
#[derive(Debug, Clone, Default)]
pub struct PriorityMap {
    entries: Vec<(TaskId, f64)>,
}

impl PriorityMap {
    /// Empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        PriorityMap {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Append an entry. Keys must arrive in strictly ascending
    /// `TaskId` order (the builders iterate jobs in id order and tasks
    /// in index order, which is exactly that).
    pub fn push(&mut self, task: TaskId, prio: f64) {
        debug_assert!(
            self.entries.last().is_none_or(|(last, _)| *last < task),
            "PriorityMap keys must be pushed in ascending order"
        );
        self.entries.push((task, prio));
    }

    /// The priority recorded for `task`, if any.
    pub fn get(&self, task: &TaskId) -> Option<f64> {
        self.entries
            .binary_search_by(|(t, _)| t.cmp(task))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|&(_, prio)| prio)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(TaskId, f64)> for PriorityMap {
    /// Build from unordered pairs (test convenience) — sorts by key.
    fn from_iter<I: IntoIterator<Item = (TaskId, f64)>>(iter: I) -> Self {
        let mut entries: Vec<(TaskId, f64)> = iter.into_iter().collect();
        entries.sort_by_key(|e| e.0);
        PriorityMap { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobId, ResourceVec, TaskId};
    use simcore::SimDuration;
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{LearningProfile, MlAlgorithm};

    fn make_job(urgency: u8, with_ps: bool, sizes: &[f64]) -> JobState {
        let id = JobId(1);
        let n = sizes.len();
        let model_mb: f64 = sizes.iter().sum();
        let mut tasks: Vec<TaskSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| TaskSpec {
                id: TaskId::new(id, i as u16),
                partition_mb: s,
                demand: ResourceVec::splat(0.5),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        if with_ps {
            tasks.push(TaskSpec {
                id: TaskId::new(id, n as u16),
                partition_mb: 0.0,
                demand: ResourceVec::splat(0.1),
                gpu_share: 0.0,
                compute: SimDuration::from_secs(1),
                is_param_server: true,
            });
        }
        let spec = JobSpec {
            id,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(10),
            required_accuracy: 0.7,
            urgency,
            max_iterations: 1000,
            tasks,
            dag: Dag::sequential(n),
            comm: if with_ps {
                CommStructure::ParameterServer
            } else {
                CommStructure::AllReduce
            },
            comm_mb: 60.0,
            model_mb,
            train_data_mb: 500.0,
            curve: LearningProfile::new(2.0, 0.2, 0.01, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(2),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    #[test]
    fn chain_head_outranks_tail() {
        // In a sequential chain, earlier tasks accumulate discounted
        // child priority and must rank higher.
        let job = make_job(5, false, &[100.0, 100.0, 100.0]);
        let pr = job_task_priorities(&job, SimTime::from_mins(1), &Params::default());
        assert!(pr[0] > pr[1] && pr[1] > pr[2], "{pr:?}");
    }

    #[test]
    fn early_iterations_outrank_late() {
        let early = make_job(5, false, &[100.0, 100.0]);
        let mut late = make_job(5, false, &[100.0, 100.0]);
        late.advance(500.0);
        let p = Params::default();
        let pe = job_task_priorities(&early, SimTime::from_mins(1), &p);
        let pl = job_task_priorities(&late, SimTime::from_mins(1), &p);
        // Note: late jobs gain a little from the smaller remaining
        // time; the ML temporal term must dominate for the default α.
        assert!(pe[0] > pl[0], "early {} late {}", pe[0], pl[0]);
    }

    #[test]
    fn urgency_raises_priority_only_when_enabled() {
        let meek = make_job(1, false, &[100.0]);
        let urgent = make_job(10, false, &[100.0]);
        let p = Params::default();
        let pm = job_task_priorities(&meek, SimTime::from_mins(1), &p)[0];
        let pu = job_task_priorities(&urgent, SimTime::from_mins(1), &p)[0];
        assert!(pu > pm);
        let p_no = Params {
            use_urgency: false,
            ..Params::default()
        };
        let pm = job_task_priorities(&meek, SimTime::from_mins(1), &p_no)[0];
        let pu = job_task_priorities(&urgent, SimTime::from_mins(1), &p_no)[0];
        assert_eq!(pu, pm);
    }

    #[test]
    fn larger_partition_gets_higher_ml_priority() {
        let job = make_job(5, false, &[50.0, 200.0]);
        // Use pure-ML weighting to isolate the spatial term; kill the
        // child propagation contribution by comparing an edgeless pair
        // via a data-parallel-like check: task 1 is the chain tail so
        // it has no children — compare base effect via α=1, γ→0.
        let p = Params {
            alpha: 1.0,
            gamma: 1e-9,
            ..Params::default()
        };
        let pr = job_task_priorities(&job, SimTime::from_mins(1), &p);
        assert!(pr[1] > pr[0], "{pr:?}");
    }

    #[test]
    fn near_deadline_tasks_surge_then_drop_when_missed() {
        let job = make_job(5, false, &[100.0]);
        let p = Params::default();
        let far = job_task_priorities(&job, SimTime::from_mins(1), &p)[0];
        // One minute before the 10-hour deadline: maximal urgency.
        let near = job_task_priorities(&job, SimTime::from_mins(10 * 60 - 1), &p)[0];
        assert!(near > far, "near {near} far {far}");
        // Past the deadline the surge disappears (a missed-deadline
        // job must not outrank jobs that can still make theirs); what
        // remains is the slowly-growing waiting term.
        let past = job_task_priorities(&job, SimTime::from_mins(10 * 60 + 1), &p)[0];
        assert!(past.is_finite());
        assert!(past < near, "past {past} should drop below near {near}");
        let much_later = job_task_priorities(&job, SimTime::from_hours(20), &p)[0];
        assert!(much_later > past); // waiting keeps accruing
        assert!(much_later < near); // but never re-surges
    }

    #[test]
    fn deadline_ablation_removes_the_surge() {
        let job = make_job(5, false, &[100.0]);
        let p = Params {
            use_deadline: false,
            ..Params::default()
        };
        let far = job_task_priorities(&job, SimTime::from_mins(1), &p)[0];
        let near = job_task_priorities(&job, SimTime::from_mins(10 * 60 - 1), &p)[0];
        // Without the deadline term, proximity alone changes nothing
        // except waiting time, which grows slowly — allow that growth.
        let waiting_growth = 0.35 * (10.0 - 1.0 / 60.0);
        assert!((near - far) <= waiting_growth + 1e-6);
    }

    #[test]
    fn waiting_time_accrues_priority() {
        let job = make_job(5, false, &[100.0]);
        let p = Params::default();
        let t0 = job_task_priorities(&job, SimTime::from_mins(1), &p)[0];
        let t1 = job_task_priorities(&job, SimTime::from_hours(2), &p)[0];
        assert!(t1 > t0);
    }

    #[test]
    fn param_server_is_highest_within_job() {
        let job = make_job(5, true, &[100.0, 100.0, 100.0]);
        let pr = job_task_priorities(&job, SimTime::from_mins(1), &Params::default());
        assert_eq!(pr.len(), 4);
        let ps = pr[3];
        assert!(pr[..3].iter().all(|&w| ps > w), "{pr:?}");
    }

    #[test]
    fn gamma_strengthens_child_propagation() {
        let job = make_job(5, false, &[100.0, 100.0, 100.0]);
        let lo = Params {
            gamma: 0.1,
            ..Params::default()
        };
        let hi = Params {
            gamma: 0.9,
            ..Params::default()
        };
        let plo = job_task_priorities(&job, SimTime::from_mins(1), &lo);
        let phi = job_task_priorities(&job, SimTime::from_mins(1), &hi);
        // Head-vs-tail gap grows with γ.
        assert!(phi[0] - phi[2] > plo[0] - plo[2]);
    }

    #[test]
    fn priorities_are_finite_and_nonnegative() {
        for urgency in [1, 5, 10] {
            let mut job = make_job(urgency, true, &[10.0, 500.0, 1.0]);
            job.advance(999.0);
            let pr = job_task_priorities(&job, SimTime::from_hours(100), &Params::default());
            for v in pr {
                assert!(v.is_finite() && v >= 0.0, "{v}");
            }
        }
    }
}
