//! RIAL-style ideal-point placement and migration-victim selection
//! (§3.3.2–3.3.3, the method of \[47\] extended with ML features).
//!
//! * **Host selection** — among underloaded servers that can host the
//!   task, build the *ideal virtual host*: per-resource minimum
//!   utilization, maximum communication affinity with the task, and
//!   zero migration penalty; pick the server closest to it in
//!   Euclidean distance.
//! * **Victim selection** — on an overloaded server, build the *ideal
//!   virtual task*: maximum task utilization on every overloaded
//!   resource, minimum on every underloaded one, and zero co-located
//!   communication; pick the closest task. When a GPU is overloaded,
//!   only the lowest-`p_s` fraction of tasks by priority are eligible
//!   ("we … select tasks … only among a certain percentage (p_s) of
//!   the tasks on the top", §3.3.3).

use crate::params::Params;
use crate::priority::PriorityMap;
use cluster::{ClusterView, Resource, ServerId, TaskId};
use std::cell::RefCell;

/// Weight of the communication-affinity dimension in the host
/// ideal-point distance (utilization dims weigh 1 each).
const AFFINITY_WEIGHT: f64 = 6.0;
use workload::{CommStructure, JobArena, JobState};

/// Append the task indices that communicate directly with task `idx`
/// of `job` (DAG neighbours plus parameter-accumulation links) to
/// `out`, clearing it first. Allocation-free once `out` has warmed up.
pub fn comm_neighbors_into(job: &JobState, idx: usize, out: &mut Vec<u16>) {
    let spec = &job.spec;
    let n = spec.dag.len();
    out.clear();
    if idx < n {
        out.extend_from_slice(spec.dag.parents(idx));
        out.extend_from_slice(spec.dag.children(idx));
        let sinks = spec.dag.sinks();
        let is_sink = sinks.contains(&(idx as u16));
        match spec.comm {
            CommStructure::ParameterServer => {
                if is_sink && spec.has_param_server() {
                    out.push(n as u16);
                }
            }
            CommStructure::AllReduce => {
                if is_sink {
                    out.extend(sinks.iter().copied().filter(|&s| s as usize != idx));
                }
            }
        }
    } else {
        // The parameter server talks to every sink.
        out.extend_from_slice(spec.dag.sinks());
    }
}

/// Task indices that communicate directly with task `idx` of `job`.
/// Allocating convenience wrapper around [`comm_neighbors_into`].
pub fn comm_neighbors(job: &JobState, idx: usize) -> Vec<u16> {
    let mut out = Vec::new();
    comm_neighbors_into(job, idx, &mut out);
    out
}

/// Number of direct communication partners of task `idx`, computed
/// without materialising the neighbour list.
pub fn comm_degree(job: &JobState, idx: usize) -> usize {
    let spec = &job.spec;
    let n = spec.dag.len();
    if idx >= n {
        return spec.dag.sinks().len();
    }
    let mut deg = spec.dag.parents(idx).len() + spec.dag.children(idx).len();
    let sinks = spec.dag.sinks();
    if sinks.contains(&(idx as u16)) {
        match spec.comm {
            CommStructure::ParameterServer => {
                if spec.has_param_server() {
                    deg += 1;
                }
            }
            CommStructure::AllReduce => deg += sinks.len() - 1,
        }
    }
    deg
}

thread_local! {
    /// Neighbour-index buffer for [`affinity_mb`].
    static NEIGHBOR_BUF: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
    /// Reusable buffers for [`select_host`].
    static HOST_SCRATCH: RefCell<HostScratch> = RefCell::new(HostScratch::default());
    /// Reusable buffers for [`select_victim`].
    static VICTIM_SCRATCH: RefCell<VictimScratch> = RefCell::new(VictimScratch::default());
}

/// MB/iteration exchanged between `task` and tasks of the same job
/// currently placed on `server`.
pub fn affinity_mb<V: ClusterView>(
    job: &JobState,
    task_idx: usize,
    server: ServerId,
    view: &V,
) -> f64 {
    NEIGHBOR_BUF.with(|buf| {
        let buf = &mut *buf.borrow_mut();
        comm_neighbors_into(job, task_idx, buf);
        let mut mb = 0.0;
        for &nb in buf.iter() {
            let nb_id = TaskId::new(job.spec.id, nb);
            if view.locate(nb_id) == Some(server) {
                mb += job.spec.comm_mb;
            }
        }
        mb
    })
}

/// Reusable buffers for [`select_host`]; lives in a thread-local so
/// the hot path is allocation-free after warm-up.
#[derive(Default)]
struct HostScratch {
    candidates: Vec<ServerId>,
    utils: Vec<[f64; cluster::NUM_RESOURCES]>,
    affinities: Vec<f64>,
    penalties: Vec<f64>,
    neighbors: Vec<u16>,
    /// Per-server accumulated MB of co-located neighbour traffic.
    affinity_by_server: Vec<(ServerId, f64)>,
}

/// Select the host server for `task` per the ideal-virtual-host
/// method. `plan` is the (possibly speculative) cluster state;
/// `migration_from` marks a task being moved off an overloaded server
/// (its movement penalty `q` is charged toward every *other* server).
/// Returns `None` when no underloaded server can host the task.
pub fn select_host<V: ClusterView>(
    plan: &V,
    jobs: &JobArena,
    task: TaskId,
    migration_from: Option<ServerId>,
    p: &Params,
) -> Option<ServerId> {
    select_host_filtered(plan, jobs, task, migration_from, p, |_| false)
}

/// [`select_host`] with an extra `deny` predicate excluding servers
/// from candidacy (the flaky-server blacklist hook). `deny` returning
/// false everywhere reduces to `select_host` exactly.
pub fn select_host_filtered<V: ClusterView, F: Fn(ServerId) -> bool>(
    plan: &V,
    jobs: &JobArena,
    task: TaskId,
    migration_from: Option<ServerId>,
    p: &Params,
    deny: F,
) -> Option<ServerId> {
    HOST_SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        select_host_inner(plan, jobs, task, migration_from, p, deny, s)
    })
}

fn select_host_inner<V: ClusterView, F: Fn(ServerId) -> bool>(
    plan: &V,
    jobs: &JobArena,
    task: TaskId,
    migration_from: Option<ServerId>,
    p: &Params,
    deny: F,
    s: &mut HostScratch,
) -> Option<ServerId> {
    let job = jobs.get(&task.job)?;
    let spec = job.spec.tasks.get(task.idx as usize)?;
    // Candidates: underloaded servers that stay under h_r with the task.
    s.candidates.clear();
    for i in 0..plan.server_count() {
        let sid = ServerId(i as u32);
        let srv = plan.server(sid);
        if !srv.is_overloaded(p.h_r)
            && !deny(sid)
            && srv.can_host(&spec.demand, spec.gpu_share, p.h_r)
        {
            s.candidates.push(sid);
        }
    }
    if s.candidates.is_empty() {
        return None;
    }

    // Per-candidate raw dimensions.
    s.utils.clear();
    s.utils.extend(
        s.candidates
            .iter()
            .map(|&sid| plan.server(sid).utilization().0),
    );

    // Affinity: walk the task's neighbours once, accumulating MB per
    // hosting server, then look candidates up in that map — O(degree +
    // candidates) instead of O(degree × candidates).
    s.affinities.clear();
    let mut max_affinity = 0.0f64;
    if p.use_bandwidth {
        comm_neighbors_into(job, task.idx as usize, &mut s.neighbors);
        s.affinity_by_server.clear();
        for &nb in &s.neighbors {
            let nb_id = TaskId::new(job.spec.id, nb);
            if let Some(host) = plan.locate(nb_id) {
                match s.affinity_by_server.iter_mut().find(|(sv, _)| *sv == host) {
                    Some((_, mb)) => *mb += job.spec.comm_mb,
                    None => s.affinity_by_server.push((host, job.spec.comm_mb)),
                }
            }
        }
        for &sid in &s.candidates {
            let mb = s
                .affinity_by_server
                .iter()
                .find(|(sv, _)| *sv == sid)
                .map_or(0.0, |(_, mb)| *mb);
            max_affinity = max_affinity.max(mb);
            s.affinities.push(mb);
        }
    }

    s.penalties.clear();
    let mut max_penalty = 0.0f64;
    if let Some(src) = migration_from {
        // Movement penalty ∝ state transfer time.
        let state_mb = migration_state_mb(job, task.idx as usize);
        for &sid in &s.candidates {
            let q = if sid == src {
                0.0
            } else {
                plan.topology()
                    .transfer_time(src, sid, state_mb)
                    .as_secs_f64()
            };
            max_penalty = max_penalty.max(q);
            s.penalties.push(q);
        }
    }

    // Ideal virtual host: minimum utilization on every resource,
    // maximum affinity, zero penalty.
    let mut ideal_util = [f64::INFINITY; cluster::NUM_RESOURCES];
    for u in &s.utils {
        for (ideal, u) in ideal_util.iter_mut().zip(u) {
            *ideal = ideal.min(*u);
        }
    }

    let mut best: Option<(f64, ServerId)> = None;
    for (i, &sid) in s.candidates.iter().enumerate() {
        let mut d2 = 0.0;
        if let Some(util) = s.utils.get(i) {
            for (u, ideal) in util.iter().zip(&ideal_util) {
                let diff = u - ideal;
                d2 += diff * diff;
            }
        }
        if max_affinity > 0.0 {
            // Communication locality carries more weight than any
            // single utilization dimension: a cross-server DAG edge
            // stretches *every* iteration, while a slightly busier
            // server only raises contention risk. (The paper weights
            // all dims equally but also reports bandwidth-aware
            // placement cutting JCT by 5–15% — this is that lever.)
            let aff = s.affinities.get(i).copied().unwrap_or(0.0);
            let diff = aff / max_affinity - 1.0; // ideal = max
            d2 += AFFINITY_WEIGHT * diff * diff;
        }
        if max_penalty > 0.0 {
            let q = s.penalties.get(i).copied().unwrap_or(0.0);
            let diff = q / max_penalty; // ideal = 0
            d2 += diff * diff;
        }
        match best {
            Some((bd, _)) if bd <= d2 => {}
            _ => best = Some((d2, sid)),
        }
    }
    best.map(|(_, s)| s)
}

/// Megabytes of state moved when task `idx` of `job` migrates
/// (parameters + optimizer state, ≈ 3× the partition; a parameter
/// server moves the whole model).
pub fn migration_state_mb(job: &JobState, idx: usize) -> f64 {
    let spec = &job.spec;
    if idx >= spec.dag.len() {
        spec.model_mb
    } else {
        3.0 * spec.tasks.get(idx).map_or(0.0, |t| t.partition_mb)
    }
}

/// Reusable buffers for [`select_victim`].
#[derive(Default)]
struct VictimScratch {
    candidates: Vec<TaskId>,
    utils: Vec<[f64; cluster::NUM_RESOURCES]>,
    affinities: Vec<f64>,
    over_res: Vec<Resource>,
    over_gpus: Vec<usize>,
}

/// Select the next migration victim on overloaded `server`, or `None`
/// when the server hosts no tasks. `priorities` must cover every task
/// on the server.
pub fn select_victim<V: ClusterView>(
    plan: &V,
    jobs: &JobArena,
    server: ServerId,
    priorities: &PriorityMap,
    p: &Params,
) -> Option<TaskId> {
    VICTIM_SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        select_victim_inner(plan, jobs, server, priorities, p, s)
    })
}

fn select_victim_inner<V: ClusterView>(
    plan: &V,
    jobs: &JobArena,
    server: ServerId,
    priorities: &PriorityMap,
    p: &Params,
    s: &mut VictimScratch,
) -> Option<TaskId> {
    let srv = plan.server(server);
    if srv.task_count() == 0 {
        return None;
    }
    srv.overloaded_resources_into(p.h_r, &mut s.over_res);
    srv.overloaded_gpus_into(p.h_r, &mut s.over_gpus);

    // Candidate set: tasks on overloaded GPUs restricted to the
    // lowest-p_s priority slice, else every task on the server.
    // Per-GPU gathering (GPUs ascending, tasks in id order within
    // each) is load-bearing: it fixes the pre-sort order and hence
    // the stable sort's tie-breaking.
    s.candidates.clear();
    if !s.over_gpus.is_empty() {
        for &g in &s.over_gpus {
            srv.tasks_on_gpu_into(g, &mut s.candidates);
        }
        s.candidates.sort_by(|a, b| {
            let pa = priorities.get(a).unwrap_or(0.0);
            let pb = priorities.get(b).unwrap_or(0.0);
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = ((s.candidates.len() as f64 * p.p_s).ceil() as usize).max(1);
        s.candidates.truncate(keep);
    } else {
        s.candidates.extend(srv.tasks().map(|(t, _)| *t));
    }
    if s.candidates.is_empty() {
        return None;
    }

    // Per-candidate utilization vectors and co-located affinity.
    let cap = srv.capacity;
    s.utils.clear();
    s.utils.extend(s.candidates.iter().map(|t| {
        srv.placement(*t)
            .map(|pl| pl.demand.div_elem(&cap).0)
            .unwrap_or([0.0; cluster::NUM_RESOURCES])
    }));
    s.affinities.clear();
    let mut max_affinity = 0.0f64;
    if p.use_bandwidth {
        for t in &s.candidates {
            let mb = jobs
                .get(&t.job)
                .map_or(0.0, |job| affinity_mb(job, t.idx as usize, server, plan));
            max_affinity = max_affinity.max(mb);
            s.affinities.push(mb);
        }
    }

    // Ideal virtual task: max utilization on overloaded resources,
    // min on the others, zero co-located communication.
    let mut ideal = [0.0; cluster::NUM_RESOURCES];
    for (d, slot) in ideal.iter_mut().enumerate() {
        let col = s.utils.iter().filter_map(|u| u.get(d)).copied();
        *slot = if s.over_res.iter().any(|&r| r as usize == d) {
            col.fold(f64::NEG_INFINITY, f64::max)
        } else {
            col.fold(f64::INFINITY, f64::min)
        };
    }

    let mut best: Option<(f64, TaskId)> = None;
    for (i, t) in s.candidates.iter().enumerate() {
        let mut d2 = 0.0;
        if let Some(util) = s.utils.get(i) {
            for (u, id_u) in util.iter().zip(&ideal) {
                let diff = u - id_u;
                d2 += diff * diff;
            }
        }
        if max_affinity > 0.0 {
            let aff = s.affinities.get(i).copied().unwrap_or(0.0);
            let diff = aff / max_affinity; // ideal = 0
            d2 += diff * diff;
        }
        match best {
            Some((bd, _)) if bd <= d2 => {}
            _ => best = Some((d2, *t)),
        }
    }
    best.map(|(_, t)| t)
}

/// Convenience: is resource `r` of server `s` overloaded? (test hook)
pub fn resource_overloaded<V: ClusterView>(plan: &V, s: ServerId, r: Resource, h_r: f64) -> bool {
    plan.server(s).utilization().get(r) > h_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::Dag;
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{LearningProfile, MlAlgorithm};

    fn cluster(n: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: n,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    fn chain_job(id: u32, n: usize, with_ps: bool) -> JobState {
        let jid = JobId(id);
        let mut tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 100.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        if with_ps {
            tasks.push(TaskSpec {
                id: TaskId::new(jid, n as u16),
                partition_mb: 0.0,
                demand: ResourceVec::new(0.0, 1.0, 1.0, 100.0),
                gpu_share: 0.0,
                compute: SimDuration::from_secs(1),
                is_param_server: true,
            });
        }
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(5),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 100,
            tasks,
            dag: Dag::sequential(n),
            comm: if with_ps {
                CommStructure::ParameterServer
            } else {
                CommStructure::AllReduce
            },
            comm_mb: 80.0,
            model_mb: 100.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.05, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    fn jobs_map(jobs: Vec<JobState>) -> JobArena {
        jobs.into_iter().map(|j| (j.spec.id, j)).collect()
    }

    #[test]
    fn comm_neighbors_chain_and_ps() {
        let job = chain_job(1, 3, true);
        assert_eq!(comm_neighbors(&job, 0), vec![1]);
        assert_eq!(comm_neighbors(&job, 1), vec![0, 2]);
        // Task 2 is the sink: neighbor 1 plus the PS (index 3).
        assert_eq!(comm_neighbors(&job, 2), vec![1, 3]);
        // PS talks to sinks.
        assert_eq!(comm_neighbors(&job, 3), vec![2]);
    }

    #[test]
    fn comm_neighbors_allreduce_links_sinks() {
        let jid = JobId(2);
        let mut job = chain_job(2, 2, false);
        // Rebuild as 3 independent tasks (all sinks) with all-reduce.
        job.spec.dag = Dag::independent(3);
        job.spec.tasks = (0..3)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 10.0,
                demand: ResourceVec::splat(0.1),
                gpu_share: 0.1,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        job.task_states = vec![
            workload::TaskRunState::Waiting {
                since: SimTime::ZERO
            };
            3
        ];
        let nb = comm_neighbors(&job, 1);
        assert_eq!(nb, vec![0, 2]);
    }

    #[test]
    fn select_host_prefers_empty_server() {
        let mut c = cluster(3);
        let job = chain_job(1, 2, false);
        let jobs = jobs_map(vec![job]);
        // Load server 0 heavily (but below overload), leave 1 and 2 idle.
        c.place(
            TaskId::new(JobId(99), 0),
            ServerId(0),
            ResourceVec::new(1.0, 10.0, 80.0, 600.0),
            1.0,
        )
        .unwrap();
        // jobs map lacks job 99, but select_host only inspects the task
        // being placed, not resident tasks, unless affinity applies.
        let host = select_host(
            &c,
            &jobs,
            TaskId::new(JobId(1), 0),
            None,
            &Params::default(),
        )
        .unwrap();
        assert_ne!(host, ServerId(0));
    }

    #[test]
    fn select_host_prefers_comm_affinity() {
        let mut c = cluster(3);
        let job = chain_job(1, 2, false);
        let jobs = jobs_map(vec![job]);
        // Place task 0 of job 1 on server 2; the DAG neighbour (task 1)
        // should prefer server 2 despite identical utilizations
        // elsewhere... give server 2 slightly *higher* load to prove
        // affinity wins over pure balance.
        let t0 = TaskId::new(JobId(1), 0);
        c.place(t0, ServerId(2), ResourceVec::new(0.5, 2.0, 8.0, 50.0), 0.5)
            .unwrap();
        let host = select_host(
            &c,
            &jobs,
            TaskId::new(JobId(1), 1),
            None,
            &Params::default(),
        )
        .unwrap();
        assert_eq!(host, ServerId(2));
        // With bandwidth consideration disabled (Fig. 7 ablation), the
        // loaded server no longer attracts.
        let p_no_bw = Params {
            use_bandwidth: false,
            ..Params::default()
        };
        let host2 = select_host(&c, &jobs, TaskId::new(JobId(1), 1), None, &p_no_bw).unwrap();
        assert_ne!(host2, ServerId(2));
    }

    #[test]
    fn select_host_respects_capacity() {
        let mut c = cluster(1);
        let job = chain_job(1, 2, false);
        let jobs = jobs_map(vec![job]);
        // Fill the only server past the point where it can host more.
        c.place(
            TaskId::new(JobId(50), 0),
            ServerId(0),
            ResourceVec::new(1.8, 14.0, 120.0, 900.0),
            0.9,
        )
        .unwrap();
        assert_eq!(
            select_host(
                &c,
                &jobs,
                TaskId::new(JobId(1), 0),
                None,
                &Params::default()
            ),
            None
        );
    }

    #[test]
    fn select_victim_targets_overloaded_resource() {
        let mut c = cluster(1);
        let j1 = chain_job(1, 1, false); // placeholder specs for priorities
        let jobs = jobs_map(vec![j1]);
        // Three tasks: one memory hog (job 1 idx 0 mirrors spec), two
        // CPU-light tasks. Overload memory.
        let hog = TaskId::new(JobId(1), 0);
        c.place(
            hog,
            ServerId(0),
            ResourceVec::new(0.1, 1.0, 120.0, 10.0),
            0.1,
        )
        .unwrap();
        let small_a = TaskId::new(JobId(1), 1);
        let small_b = TaskId::new(JobId(1), 2);
        c.place(
            small_a,
            ServerId(0),
            ResourceVec::new(0.1, 1.0, 4.0, 10.0),
            0.1,
        )
        .unwrap();
        c.place(
            small_b,
            ServerId(0),
            ResourceVec::new(0.1, 1.0, 4.0, 10.0),
            0.1,
        )
        .unwrap();
        let priorities: PriorityMap = [(hog, 1.0), (small_a, 1.0), (small_b, 1.0)]
            .into_iter()
            .collect();
        let victim = select_victim(&c, &jobs, ServerId(0), &priorities, &Params::default());
        assert_eq!(victim, Some(hog));
    }

    #[test]
    fn gpu_overload_respects_priority_slice() {
        let mut c = cluster(1);
        let job = chain_job(1, 3, false);
        let jobs = jobs_map(vec![job]);
        // Both tasks on GPU 0, overloading it.
        let a = TaskId::new(JobId(1), 0);
        let b = TaskId::new(JobId(1), 1);
        c.place_on_gpu(
            a,
            ServerId(0),
            ResourceVec::new(0.6, 1.0, 4.0, 10.0),
            0.6,
            0,
        )
        .unwrap();
        c.place_on_gpu(
            b,
            ServerId(0),
            ResourceVec::new(0.6, 1.0, 4.0, 10.0),
            0.6,
            0,
        )
        .unwrap();
        // Task a has much higher priority: the p_s slice (1 task of 2)
        // only contains the low-priority b.
        let priorities: PriorityMap = [(a, 100.0), (b, 1.0)].into_iter().collect();
        let victim = select_victim(&c, &jobs, ServerId(0), &priorities, &Params::default());
        assert_eq!(victim, Some(b));
    }

    #[test]
    fn empty_server_yields_no_victim() {
        let c = cluster(1);
        let jobs = jobs_map(vec![chain_job(1, 1, false)]);
        assert_eq!(
            select_victim(
                &c,
                &jobs,
                ServerId(0),
                &PriorityMap::default(),
                &Params::default()
            ),
            None
        );
    }

    #[test]
    fn migration_penalty_prefers_nearby_servers() {
        // Tree topology: server 0 and 1 share a rack; 2 and 3 are in
        // another rack behind a 4:1 oversubscribed core link. A task
        // migrating off server 0 should prefer the same-rack server
        // when utilizations are equal.
        let mut c = Cluster::new(&ClusterConfig {
            servers: 4,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: cluster::Topology::Tree {
                rack_size: 2,
                rack_mbps: 1000.0,
                intra_mbps: 10_000.0,
                oversubscription: 4.0,
            },
        });
        let job = chain_job(1, 1, false);
        let jobs = jobs_map(vec![job]);
        let t = TaskId::new(JobId(1), 0);
        c.place(t, ServerId(0), ResourceVec::new(0.5, 2.0, 8.0, 50.0), 0.5)
            .unwrap();
        // Pretend server 0 is the overloaded source; the task was
        // virtually removed from the plan already.
        let mut plan = c.clone();
        plan.remove(t);
        let host = select_host(&plan, &jobs, t, Some(ServerId(0)), &Params::default()).unwrap();
        // Same-rack (0 or 1). Since 0 is its own server (penalty 0) it
        // wins outright; the essential check is "not cross-rack".
        assert!(host == ServerId(0) || host == ServerId(1), "{host}");
    }

    #[test]
    fn select_host_is_deterministic_under_ties() {
        let c = cluster(5);
        let jobs = jobs_map(vec![chain_job(1, 1, false)]);
        let a = select_host(
            &c,
            &jobs,
            TaskId::new(JobId(1), 0),
            None,
            &Params::default(),
        );
        let b = select_host(
            &c,
            &jobs,
            TaskId::new(JobId(1), 0),
            None,
            &Params::default(),
        );
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn migration_state_scales_with_partition() {
        let job = chain_job(1, 2, true);
        assert_eq!(migration_state_mb(&job, 0), 300.0); // 3 × 100 MB
        assert_eq!(migration_state_mb(&job, 2), 200.0); // PS: whole model
    }
}
