//! MLF-H: the ML-feature-based heuristic task scheduler (§3.3).
//!
//! Each round:
//! 1. **Overload handling** (§3.3.3, when enabled): for every
//!    overloaded server, repeatedly pick a migration victim via the
//!    ideal-virtual-task method and *virtually* move it to the queue
//!    (the real move happens only once a destination is chosen, "in
//!    order to save the migration overhead").
//! 2. **Queue ordering** (§3.3.1): all queued tasks plus the virtual
//!    migration candidates are ordered by the Eq. 6 priority.
//! 3. **Placement** (§3.3.2): tasks are assigned one by one to the
//!    server closest to the ideal virtual host, onto its least-loaded
//!    GPU, until no underloaded server can host anything more.
//!    Migration candidates that found no destination are evicted back
//!    to the queue ("moved back to the queue").

use crate::blacklist::ServerBlacklist;
use crate::params::Params;
use crate::placement::{migration_state_mb, select_host, select_host_filtered, select_victim};
use crate::priority::{
    job_task_priorities, job_task_priorities_into, PriorityMap, PriorityScratch,
};
use crate::scheduler::{state_from_json, state_to_json, Action, Scheduler, SchedulerContext};
use cluster::{ClusterOverlay, ClusterView, ServerId, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a schedulable task currently sits.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Origin {
    /// In the waiting queue.
    Queue,
    /// Running on this (overloaded) server, selected for migration.
    Server(ServerId),
}

/// Evolving MLF-H state carried across a service restart
/// (`Scheduler::export_state`): everything but the static `Params`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct MlfHState {
    last_decisions: Vec<(TaskId, ServerId)>,
    blacklist: ServerBlacklist,
}

/// The MLF-H heuristic scheduler.
#[derive(Debug, Clone)]
pub struct MlfH {
    /// Tunables and ablation switches.
    pub params: Params,
    /// Recorded (for MLF-RL imitation): the placements made last
    /// round, in decision order, as (task, chosen server) pairs.
    pub last_decisions: Vec<(TaskId, ServerId)>,
    /// Crash history: recently-failed servers are avoided with
    /// exponential backoff (soft — ignored when nothing else fits).
    blacklist: ServerBlacklist,
    /// Telemetry hub (attached by the engine; `None` in bare use).
    tracer: Option<std::sync::Arc<obs::Tracer>>,
}

impl MlfH {
    /// New MLF-H with the given parameters.
    pub fn new(params: Params) -> Self {
        MlfH {
            params,
            last_decisions: Vec::new(),
            blacklist: ServerBlacklist::default(),
            tracer: None,
        }
    }

    /// Evolving state for `Scheduler::export_state`.
    pub(crate) fn state(&self) -> MlfHState {
        MlfHState {
            last_decisions: self.last_decisions.clone(),
            blacklist: self.blacklist.clone(),
        }
    }

    /// Adopt state captured by [`MlfH::state`].
    pub(crate) fn restore_state(&mut self, st: MlfHState) {
        self.last_decisions = st.last_decisions;
        self.blacklist = st.blacklist;
    }

    /// Priorities for every live task, per job (Eqs. 2–6).
    pub fn all_priorities(ctx: &SchedulerContext<'_>, params: &Params) -> BTreeMap<TaskId, f64> {
        let mut out = BTreeMap::new();
        for job in ctx.active_jobs() {
            let pr = job_task_priorities(job, ctx.now, params);
            for (idx, p) in pr.into_iter().enumerate() {
                out.insert(TaskId::new(job.spec.id, idx as u16), p);
            }
        }
        out
    }

    /// Priorities for exactly the jobs a round can act on: those with
    /// queued tasks plus those with tasks on a server in `overloaded`.
    /// The round consumes priorities only to order queued tasks and to
    /// pick migration victims on overloaded servers, so skipping every
    /// other job is sound — and most rounds touch a small fraction of
    /// the active jobs.
    pub(crate) fn candidate_priorities(
        ctx: &SchedulerContext<'_>,
        params: &Params,
        overloaded: &[ServerId],
    ) -> PriorityMap {
        // Sorted-dedup job list (replaces a BTreeSet: one Vec, no
        // node churn) — iteration stays in ascending JobId order.
        let mut needed: Vec<cluster::JobId> = ctx.queue.iter().map(|t| t.job).collect();
        for &sid in overloaded {
            for (t, _) in ctx.cluster.server(sid).tasks() {
                needed.push(t.job);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let mut out = PriorityMap::with_capacity(needed.len() * 4);
        let mut scratch = PriorityScratch::default();
        for jid in needed {
            let Some(job) = ctx.jobs.get(&jid) else {
                continue;
            };
            job_task_priorities_into(job, ctx.now, params, &mut scratch);
            for (idx, &p) in scratch.out.iter().enumerate() {
                out.push(TaskId::new(jid, idx as u16), p);
            }
        }
        out
    }

    /// Core of the round: shared verbatim by MLF-RL's imitation phase.
    /// Returns the actions plus the planning cluster used (so callers
    /// can inspect the final speculative state).
    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let p = self.params;
        let now_mins = ctx.now.as_mins_f64();
        // Cloning the Arc (when attached) keeps the span guard's
        // borrow off `self`, which the loop below mutates.
        let tracer = self.tracer.clone();
        let _plan_span = tracer.as_ref().map(|t| obs::span!(t, mlfh_plan));
        self.last_decisions.clear();
        let strikes = self.blacklist.observe(ctx.cluster);
        if let Some(t) = tracer.as_deref() {
            if strikes > 0 {
                t.add(obs::Counter::BlacklistStrikes, strikes as u64);
                for &(sid, total) in self.blacklist.recent_strikes() {
                    obs::event!(
                        t,
                        BlacklistStrike {
                            t: now_mins,
                            server: sid.0,
                            strikes: total,
                        }
                    );
                }
            }
        }
        let bl = &self.blacklist;
        // Host selection avoiding recently-crashed servers; falls back
        // to the unfiltered pick so bans never stall the queue. With no
        // crash history this is `select_host` exactly.
        let pick = |plan: &ClusterOverlay<'_>, task: TaskId, from: Option<ServerId>| {
            select_host_filtered(plan, ctx.jobs, task, from, &p, |sid| bl.is_banned(sid)).or_else(
                || {
                    if bl.any_banned() {
                        select_host(plan, ctx.jobs, task, from, &p)
                    } else {
                        None
                    }
                },
            )
        };
        let mut actions = Vec::new();
        // Copy-on-write speculation: reads fall through to the live
        // cluster, writes copy only the touched servers. Replaces the
        // seed's full `Cluster::clone()` per round.
        let mut plan = ClusterOverlay::new(ctx.cluster, p.h_r);
        let overloaded = plan.overloaded_servers(p.h_r);
        let priorities = Self::candidate_priorities(ctx, &p, &overloaded);

        // -- 1. pick migration candidates off overloaded servers --
        let mut candidates: Vec<(TaskId, f64, Origin)> = Vec::new();
        if p.use_migration {
            for sid in overloaded {
                // Repeatedly remove victims until the server is clean.
                while plan.server(sid).is_overloaded(p.h_r) {
                    let Some(victim) = select_victim(&plan, ctx.jobs, sid, &priorities, &p) else {
                        break;
                    };
                    plan.remove(victim);
                    let prio = priorities.get(&victim).unwrap_or(0.0);
                    candidates.push((victim, prio, Origin::Server(sid)));
                }
            }
        }

        // -- 2. queued tasks --
        for &t in ctx.queue {
            let prio = priorities.get(&t).unwrap_or(0.0);
            candidates.push((t, prio, Origin::Queue));
        }

        // -- 3. place, job-gang with skip-over --
        //
        // Jobs rank by their highest-priority task (desc); within a
        // job, tasks keep their Eq. 6 order. Migration victims are
        // re-placed individually (they already run; failing to re-host
        // evicts them, §3.3.3). A job's *waiting* tasks place
        // atomically or not at all: DL workers are gang-scheduled, and
        // partial placements would hold resources at a fraction of the
        // progress. A gang that does not fit is skipped — smaller jobs
        // behind it backfill, so no convoy forms.
        let mut job_key: BTreeMap<cluster::JobId, f64> = BTreeMap::new();
        for (t, prio, _) in &candidates {
            let e = job_key.entry(t.job).or_insert(f64::NEG_INFINITY);
            if *prio > *e {
                *e = *prio;
            }
        }
        let mut job_order: Vec<cluster::JobId> = job_key.keys().copied().collect();
        let key_of = |j: &cluster::JobId| job_key.get(j).copied().unwrap_or(f64::NEG_INFINITY);
        job_order.sort_by(|a, b| {
            key_of(b)
                .partial_cmp(&key_of(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });

        let mut group: Vec<(TaskId, f64, Origin)> = Vec::new();
        let mut waiting: Vec<TaskId> = Vec::new();
        let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
        for jid in job_order {
            group.clear();
            group.extend(candidates.iter().filter(|(t, _, _)| t.job == jid).cloned());
            group.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            let Some(job) = ctx.jobs.get(&jid) else {
                continue;
            };

            // Migration victims: individual re-placement. When no
            // underloaded server can host a victim, it stays where it
            // is — under cluster-wide pressure, evicting a running
            // task relieves nothing and stalls its whole job. (The
            // paper re-queues such tasks; with time-varying
            // utilization that turns transient overload into
            // permanent thrash, so we deviate — see DESIGN.md.)
            for (task, _, origin) in group.iter() {
                let Origin::Server(src) = *origin else {
                    continue;
                };
                let Some(spec) = job.spec.tasks.get(task.idx as usize) else {
                    continue;
                };
                match pick(&plan, *task, Some(src)) {
                    Some(host) if plan.place(*task, host, spec.demand, spec.gpu_share).is_ok() => {
                        self.last_decisions.push((*task, host));
                        if src != host {
                            if let Some(t) = tracer.as_deref() {
                                obs::event!(
                                    t,
                                    Migration {
                                        t: now_mins,
                                        job: task.job.0,
                                        task: task.idx as u32,
                                        from: src.0,
                                        to: host.0,
                                        state_mb: migration_state_mb(job, task.idx as usize),
                                    }
                                );
                            }
                            actions.push(Action::Migrate {
                                task: *task,
                                to: host,
                            });
                        }
                    }
                    _ => {
                        // No destination (or the chosen host refused,
                        // e.g. it went down this round): put the victim
                        // back in the speculative plan. If even the
                        // source refuses (it is draining), leave the
                        // plan under-counting it — the task keeps
                        // running live and no action is emitted.
                        let _ = plan.place(*task, src, spec.demand, spec.gpu_share);
                    }
                }
            }

            // Waiting tasks: gang placement with rollback.
            waiting.clear();
            waiting.extend(
                group
                    .iter()
                    .filter(|(_, _, o)| matches!(o, Origin::Queue))
                    .map(|(t, _, _)| *t),
            );
            if waiting.is_empty() {
                continue;
            }
            placed.clear();
            let mut ok = true;
            for &task in &waiting {
                let Some(spec) = job.spec.tasks.get(task.idx as usize) else {
                    ok = false;
                    break;
                };
                match pick(&plan, task, None) {
                    Some(host) if plan.place(task, host, spec.demand, spec.gpu_share).is_ok() => {
                        placed.push((task, host));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for &(task, host) in &placed {
                    self.last_decisions.push((task, host));
                    if let Some(t) = tracer.as_deref() {
                        obs::event!(
                            t,
                            Placement {
                                t: now_mins,
                                job: task.job.0,
                                task: task.idx as u32,
                                server: host.0,
                                score: priorities.get(&task).unwrap_or(0.0),
                            }
                        );
                    }
                    actions.push(Action::Place { task, server: host });
                }
            } else {
                for &(task, _) in &placed {
                    plan.remove(task);
                }
            }
        }
        actions
    }
}

impl Scheduler for MlfH {
    fn name(&self) -> &'static str {
        "MLF-H"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        self.plan(ctx)
    }

    fn attach_tracer(&mut self, tracer: std::sync::Arc<obs::Tracer>) {
        self.tracer = Some(tracer);
    }

    fn export_state(&self) -> Option<String> {
        Some(state_to_json(&self.state()))
    }

    fn import_state(&mut self, state: &str) -> bool {
        match state_from_json::<MlfHState>(state) {
            Some(st) => {
                self.restore_state(st);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{JobArena, JobState, LearningProfile, MlAlgorithm, TaskRunState};

    fn cluster(servers: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    fn job(id: u32, n: usize, urgency: u8, demand: ResourceVec, gpu_share: f64) -> JobState {
        let jid = JobId(id);
        let tasks = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 100.0,
                demand,
                gpu_share,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(8),
            required_accuracy: 0.6,
            urgency,
            max_iterations: 500,
            tasks,
            dag: Dag::sequential(n),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 100.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.01, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    fn ctx_parts(jobs: Vec<JobState>) -> (JobArena, Vec<TaskId>) {
        let mut queue = Vec::new();
        let map: JobArena = jobs
            .into_iter()
            .map(|j| {
                for (i, st) in j.task_states.iter().enumerate() {
                    if matches!(st, TaskRunState::Waiting { .. }) {
                        queue.push(TaskId::new(j.spec.id, i as u16));
                    }
                }
                (j.spec.id, j)
            })
            .collect();
        (map, queue)
    }

    #[test]
    fn places_queued_tasks_on_empty_cluster() {
        let c = cluster(4);
        let (jobs, queue) = ctx_parts(vec![job(
            1,
            3,
            5,
            ResourceVec::new(0.5, 2.0, 8.0, 50.0),
            0.5,
        )]);
        let mut s = MlfH::new(Params::default());
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        let places = actions
            .iter()
            .filter(|a| matches!(a, Action::Place { .. }))
            .count();
        assert_eq!(places, 3, "{actions:?}");
    }

    #[test]
    fn urgent_job_places_first_under_scarcity() {
        // One server with room for one task only; two single-task jobs
        // with different urgency.
        let mut c = cluster(1);
        // Pre-fill (without overloading any GPU) so only one more task
        // fits under h_r = 0.9: GPU budget is 1.8, and 0.85 + 2×0.6
        // exceeds it.
        c.place(
            TaskId::new(JobId(90), 0),
            ServerId(0),
            ResourceVec::new(0.85, 7.0, 40.0, 400.0),
            0.85,
        )
        .unwrap();
        let meek = job(1, 1, 1, ResourceVec::new(0.6, 3.0, 20.0, 200.0), 0.6);
        let urgent = job(2, 1, 10, ResourceVec::new(0.6, 3.0, 20.0, 200.0), 0.6);
        let (mut jobs, queue) = ctx_parts(vec![meek, urgent]);
        jobs.insert(
            JobId(90),
            job(90, 1, 1, ResourceVec::new(0.85, 7.0, 40.0, 400.0), 0.85),
        );
        let mut s = MlfH::new(Params::default());
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        let placed: Vec<TaskId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(placed, vec![TaskId::new(JobId(2), 0)], "{actions:?}");
    }

    #[test]
    fn overloaded_server_sheds_load() {
        let mut c = cluster(2);
        // Overload server 0's memory with three tasks of job 1.
        let j = job(1, 3, 5, ResourceVec::new(0.3, 2.0, 45.0, 30.0), 0.3);
        for i in 0..3 {
            c.place(
                TaskId::new(JobId(1), i),
                ServerId(0),
                ResourceVec::new(0.3, 2.0, 45.0, 30.0),
                0.3,
            )
            .unwrap();
        }
        let mut jj = j;
        for i in 0..3 {
            jj.task_states[i] = TaskRunState::Running {
                server: ServerId(0),
                gpu: 0,
            };
        }
        let (jobs, queue) = ctx_parts(vec![]);
        let mut jobs = jobs;
        jobs.insert(JobId(1), jj);
        assert!(c.server(ServerId(0)).is_overloaded(0.9)); // 135/128 GB
        let mut s = MlfH::new(Params::default());
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        // At least one migration to server 1 must be proposed.
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Migrate { to, .. } if *to == ServerId(1))),
            "{actions:?}"
        );
    }

    #[test]
    fn migration_disabled_by_ablation() {
        let mut c = cluster(2);
        for i in 0..3 {
            c.place(
                TaskId::new(JobId(1), i),
                ServerId(0),
                ResourceVec::new(0.3, 2.0, 45.0, 30.0),
                0.3,
            )
            .unwrap();
        }
        let mut jj = job(1, 3, 5, ResourceVec::new(0.3, 2.0, 45.0, 30.0), 0.3);
        for i in 0..3 {
            jj.task_states[i] = TaskRunState::Running {
                server: ServerId(0),
                gpu: 0,
            };
        }
        let mut jobs = JobArena::new();
        jobs.insert(JobId(1), jj);
        let mut s = MlfH::new(Params {
            use_migration: false,
            ..Params::default()
        });
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &[],
        };
        let actions = s.schedule(&ctx);
        assert!(
            actions
                .iter()
                .all(|a| !matches!(a, Action::Migrate { .. } | Action::Evict { .. })),
            "{actions:?}"
        );
    }

    #[test]
    fn no_capacity_leaves_queue_untouched() {
        let mut c = cluster(1);
        c.place(
            TaskId::new(JobId(90), 0),
            ServerId(0),
            ResourceVec::new(1.7, 14.0, 110.0, 850.0),
            0.85,
        )
        .unwrap();
        let (mut jobs, queue) = ctx_parts(vec![job(
            1,
            2,
            5,
            ResourceVec::new(0.5, 4.0, 30.0, 300.0),
            0.5,
        )]);
        jobs.insert(
            JobId(90),
            job(90, 1, 1, ResourceVec::new(1.7, 14.0, 110.0, 850.0), 0.85),
        );
        let mut s = MlfH::new(Params::default());
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        assert!(
            actions.iter().all(|a| !matches!(a, Action::Place { .. })),
            "{actions:?}"
        );
    }

    #[test]
    fn spreads_load_across_servers() {
        // Eight equal tasks over four servers: the ideal-host method
        // balances rather than stacking everything on one box.
        let c = cluster(4);
        let (jobs, queue) = ctx_parts(vec![job(
            1,
            8,
            5,
            ResourceVec::new(0.4, 3.0, 20.0, 100.0),
            0.4,
        )]);
        let mut s = MlfH::new(Params::default());
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        let mut counts: BTreeMap<ServerId, usize> = BTreeMap::new();
        for a in &actions {
            if let Action::Place { server, .. } = a {
                *counts.entry(*server).or_default() += 1;
            }
        }
        assert_eq!(counts.values().sum::<usize>(), 8);
        // Affinity pulls chain neighbours together, but nothing should
        // exceed the capacity-driven bound of ~4 tasks (bw: 100 of
        // 1000 MB/s each → 9 fit; mem: 20 of 128 → 5 fit under 0.9...
        // memory caps a server at 5).
        assert!(counts.values().all(|&c| c <= 5), "{counts:?}");
        assert!(counts.len() >= 2, "all tasks stacked: {counts:?}");
    }
}
