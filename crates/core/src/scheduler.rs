//! The scheduler interface shared by MLFS and every baseline.
//!
//! The simulation engine invokes [`Scheduler::schedule`] once per
//! scheduling round ("the job scheduler runs every minute", §4.1) with
//! a read-only [`SchedulerContext`]; the scheduler returns a list of
//! [`Action`]s which the engine validates and applies. RL schedulers
//! additionally receive the per-round reward via
//! [`Scheduler::observe_reward`].

use cluster::{Cluster, JobId, ServerId, TaskId};
use simcore::SimTime;
use workload::{JobArena, JobState, StopPolicy, StopReason};

/// Read-only view handed to a scheduler each round.
pub struct SchedulerContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// All jobs that have arrived and not been garbage-collected, in
    /// the SoA arena (ascending-id iteration order, same as the
    /// `BTreeMap` it replaced).
    pub jobs: &'a JobArena,
    /// The live cluster state.
    pub cluster: &'a Cluster,
    /// Tasks currently waiting in the queue (unordered; schedulers
    /// impose their own order).
    pub queue: &'a [TaskId],
}

impl<'a> SchedulerContext<'a> {
    /// Look up the job owning `task` (`None` once it has been
    /// garbage-collected from the arena).
    pub fn job_of(&self, task: TaskId) -> Option<&JobState> {
        self.jobs.get(&task.job)
    }

    /// Jobs with at least one task running or waiting.
    pub fn active_jobs(&self) -> impl Iterator<Item = &JobState> {
        self.jobs.values().filter(|j| !j.is_finished())
    }
}

/// A scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Place a waiting task on a server (its least-loaded GPU).
    Place {
        /// The waiting task.
        task: TaskId,
        /// Destination server.
        server: ServerId,
    },
    /// Move a running task to another server (pays migration traffic).
    Migrate {
        /// The running task.
        task: TaskId,
        /// Destination server.
        to: ServerId,
    },
    /// Preempt a running task back into the queue.
    Evict {
        /// The running task.
        task: TaskId,
    },
    /// Stop a job (MLF-C load control or a baseline's pause-equivalent).
    StopJob {
        /// The job to stop.
        job: JobId,
        /// Why it stops.
        reason: StopReason,
    },
    /// Change a job's effective stop policy (MLF-C demotion).
    SetPolicy {
        /// The affected job.
        job: JobId,
        /// The new effective policy.
        policy: StopPolicy,
    },
}

/// Per-round values of the five objective components of Eq. 1,
/// normalised by the engine to comparable scales. RL schedulers
/// combine them into a scalar reward (Eq. 7 uses the β weights; the
/// JCT-only RL baseline uses `g[0]` alone).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RewardComponents {
    /// `g1` (inverse average JCT), `g2` (deadline satisfaction),
    /// `g3` (inverse bandwidth cost), `g4` (accuracy satisfaction),
    /// `g5` (average accuracy).
    pub g: [f64; 5],
}

impl RewardComponents {
    /// Weighted sum `Σ βᵢ·gᵢ` (Eq. 7).
    pub fn weighted(&self, beta: &[f64; 5]) -> f64 {
        self.g.iter().zip(beta).map(|(g, b)| g * b).sum()
    }
}

/// A cluster job scheduler.
///
/// `Send` is a supertrait so a boxed scheduler can move onto the
/// service front-end's worker thread (`mlfs-service`); every scheduler
/// is plain owned data, so the bound costs nothing.
pub trait Scheduler: Send {
    /// Short display name (used in figure legends).
    fn name(&self) -> &'static str;

    /// Produce this round's actions.
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action>;

    /// Streaming entry point: produce this round's actions given the
    /// jobs admitted since the previous round (`arrived`, admission
    /// order). The engine always calls this form; the default
    /// delegates to [`Scheduler::schedule`], so batch schedulers are
    /// bit-identical whether a trace is replayed or streamed in live
    /// through a front-end (`crates/service`). Schedulers that keep
    /// per-arrival state (e.g. incremental admission bookkeeping)
    /// override it.
    fn schedule_stream(&mut self, ctx: &SchedulerContext<'_>, _arrived: &[JobId]) -> Vec<Action> {
        self.schedule(ctx)
    }

    /// Objective components earned since the previous round (Eq. 7's
    /// ingredients). Ignored by non-RL schedulers.
    fn observe_reward(&mut self, _reward: &RewardComponents) {}

    /// Attach the run's telemetry hub (see the `obs` crate). The
    /// engine calls this once before the first round; schedulers that
    /// emit trace events or bump counters store the handle. Default:
    /// ignore it (baselines are not instrumented).
    fn attach_tracer(&mut self, _tracer: std::sync::Arc<obs::Tracer>) {}

    /// Serialize the scheduler's *evolving* internal state (attained
    /// service, policy weights, RNG streams, blacklists, …) as an
    /// opaque JSON string. Static configuration is *not* captured — a
    /// restarted scheduler is reconstructed with the same constructor
    /// arguments and then handed this string. `None` (the default)
    /// means the scheduler is stateless across rounds beyond what the
    /// engine snapshot already carries, so a fresh instance resumes
    /// bit-identically on its own.
    ///
    /// Together with [`Scheduler::import_state`] this is the seam the
    /// `mlfs-service` durability layer uses to make crash recovery
    /// bit-identical for stateful schedulers.
    fn export_state(&self) -> Option<String> {
        None
    }

    /// Restore state produced by [`Scheduler::export_state`] on a
    /// freshly constructed scheduler. Returns `false` when the string
    /// cannot be parsed (the scheduler must then be left unchanged so
    /// callers can fall back to an older snapshot). The default
    /// accepts anything and restores nothing, matching the stateless
    /// `export_state` default.
    fn import_state(&mut self, _state: &str) -> bool {
        true
    }
}

/// Render a `serde`-serializable state struct as the JSON string
/// [`Scheduler::export_state`] returns.
pub fn state_to_json<T: serde::Serialize>(state: &T) -> String {
    serde::text::render(&state.serialize_value(), None)
}

/// Parse a [`Scheduler::export_state`] string back into its state
/// struct; `None` on malformed input (callers report `false` from
/// [`Scheduler::import_state`] without mutating anything).
pub fn state_from_json<T: serde::Deserialize>(s: &str) -> Option<T> {
    let v = serde::text::parse(s).ok()?;
    T::deserialize_value(&v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scheduler that places every queued task on server 0 —
    /// exercises the trait object plumbing.
    struct Greedy;

    impl Scheduler for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
            ctx.queue
                .iter()
                .map(|&task| Action::Place {
                    task,
                    server: ServerId(0),
                })
                .collect()
        }
    }

    #[test]
    fn trait_objects_work() {
        let cluster = Cluster::new(&cluster::ClusterConfig {
            servers: 1,
            gpus_per_server: 1,
            gpu_capacity: 1.0,
            cpu_cores: 8.0,
            memory_gb: 64.0,
            nic_mbps: 1000.0,
            topology: cluster::Topology::default_flat(),
        });
        let jobs = JobArena::new();
        let queue = vec![TaskId::new(JobId(0), 0)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &cluster,
            queue: &queue,
        };
        let mut s: Box<dyn Scheduler> = Box::new(Greedy);
        let actions = s.schedule(&ctx);
        assert_eq!(actions.len(), 1);
        assert_eq!(s.name(), "greedy");
        s.observe_reward(&RewardComponents::default()); // default no-op
    }
}
