//! Minimal aligned-column table printer for the bench binaries.

/// A text table: header plus rows, printed with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["scheduler", "avg JCT (min)"]);
        t.row(vec!["MLFS".into(), "12.3".into()]);
        t.row(vec!["TensorFlow".into(), "45.6".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheduler"));
        assert!(lines[2].trim_start().starts_with("MLFS"));
        // Right-aligned: both data rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
