//! Per-run metric records.

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// One finished (or deadline-expired) job's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id (as u32 for serialization friendliness).
    pub job: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completion time (None = never finished within the run).
    pub finished: Option<SimTime>,
    /// Deadline.
    pub deadline: SimTime,
    /// JCT in minutes (None = unfinished).
    pub jct_mins: Option<f64>,
    /// Accumulated waiting time, seconds.
    pub waiting_secs: f64,
    /// Accuracy credited by the deadline.
    pub accuracy_by_deadline: f64,
    /// The job's accuracy requirement.
    pub required_accuracy: f64,
    /// The job's urgency coefficient `L_J` (Fig. 6 classifies jobs
    /// with urgency > 8 as urgent).
    pub urgency: u8,
    /// Finished at or before the deadline?
    pub met_deadline: bool,
    /// Accuracy requirement satisfied by the deadline?
    pub met_accuracy: bool,
}

/// One sampled point of the cluster's state over time (recorded when
/// `SimConfig::record_timeline` is on; powers utilization plots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Sample time, minutes since simulation start.
    pub t_mins: f64,
    /// Mean utilization per resource (gpu, cpu, mem, bw).
    pub mean_util: [f64; 4],
    /// Tasks waiting in the queue.
    pub queue_len: usize,
    /// Jobs arrived and not yet finished.
    pub active_jobs: usize,
    /// Servers overloaded at h_r.
    pub overloaded_servers: usize,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Scheduler legend name.
    pub scheduler: String,
    /// Number of jobs submitted.
    pub jobs_submitted: usize,
    /// Per-job records.
    pub jobs: Vec<JobRecord>,
    /// Total inter-server traffic, MB (Fig. 4g/5g).
    pub bandwidth_mb: f64,
    /// Of which migration traffic, MB.
    pub migration_mb: f64,
    /// Number of task migrations.
    pub migrations: u64,
    /// Makespan: first submission → last completion, hours.
    pub makespan_hours: f64,
    /// Scheduler decision times, milliseconds (Fig. 4h/5h).
    pub decision_times_ms: Vec<f64>,
    /// Count of (server, round) pairs observed overloaded (Fig. 8a).
    pub overload_occurrences: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Actions the engine rejected as invalid (scheduler bugs surface
    /// here instead of corrupting state).
    pub invalid_actions: u64,
    /// Tasks still placed on the cluster at the end of the run that
    /// belong to *finished* jobs — always 0 unless the engine leaks.
    pub leaked_tasks: usize,
    /// Server crash events injected by the fault subsystem (0 when
    /// fault injection is off).
    pub server_failures: u64,
    /// Tasks evicted by a crash and re-enqueued to restart from their
    /// job's last checkpoint.
    pub task_restarts: u64,
    /// GPU-hours of training progress destroyed by checkpoint
    /// rollbacks (work past the last checkpoint when a server died).
    pub lost_gpu_hours: f64,
    /// Total GPU-hours consumed by running tasks over the run
    /// (throughput; includes work later lost to rollbacks).
    pub gpu_hours_total: f64,
    /// Crash / recovery event log (empty unless faults were injected).
    pub fault_events: Vec<FaultRecord>,
    /// Per-round cluster state samples (empty unless recording was
    /// enabled).
    pub timeline: Vec<TimelinePoint>,
    /// Aggregated scheduler telemetry (obs counters + latency
    /// histogram), folded in by the engine at end of run.
    pub telemetry: RoundTelemetry,
}

/// Aggregated per-round scheduler telemetry, mirrored from the `obs`
/// tracer's counters at end of run (this crate stays observability-
/// agnostic: plain data only).
///
/// Every field except `decision_ns_histogram` is deterministic — a
/// pure function of the run's seed, identical whether tracing is
/// enabled or not. The histogram is wall-clock and must be cleared
/// (see [`RunMetrics::clear_wall_clock`]) before byte-comparing runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundTelemetry {
    /// Candidate feature rows scored by the MLF-RL policy network.
    pub candidates_scored: u64,
    /// Placement actions applied by the engine.
    pub placements: u64,
    /// Migration actions applied by the engine.
    pub migrations: u64,
    /// Eviction actions applied by the engine.
    pub evictions: u64,
    /// Tasks returned to the waiting queue (evictions + crash
    /// restarts).
    pub requeues: u64,
    /// New crash strikes registered by scheduler blacklists.
    pub blacklist_strikes: u64,
    /// Wall-clock decision-latency histogram: bucket `i` counts rounds
    /// whose `schedule()` call took `[2^i, 2^{i+1})` ns.
    pub decision_ns_histogram: Vec<u64>,
}

impl RoundTelemetry {
    /// `(label, value)` pairs of the deterministic counters, in
    /// rendering order.
    pub fn counter_rows(&self) -> [(&'static str, u64); 6] {
        [
            ("candidates scored", self.candidates_scored),
            ("placements", self.placements),
            ("migrations", self.migrations),
            ("evictions", self.evictions),
            ("requeues", self.requeues),
            ("blacklist strikes", self.blacklist_strikes),
        ]
    }

    /// Median decision latency in microseconds estimated from the
    /// log₂ histogram (geometric bucket midpoint), or `None` when
    /// nothing was recorded.
    pub fn median_decision_us(&self) -> Option<f64> {
        let total: u64 = self.decision_ns_histogram.iter().sum();
        if total == 0 {
            return None;
        }
        let mut seen = 0u64;
        for (i, &n) in self.decision_ns_histogram.iter().enumerate() {
            seen += n;
            if seen * 2 >= total {
                // Geometric midpoint of [2^i, 2^{i+1}).
                let mid = 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
                return Some(mid / 1_000.0);
            }
        }
        None
    }
}

/// One fault-injection event: a server crash or recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Event time, minutes since simulation start.
    pub t_mins: f64,
    /// The affected server.
    pub server: u32,
    /// True for a crash, false for a recovery.
    pub crash: bool,
    /// Number of tasks evicted (crashes only; 0 for recoveries).
    pub evicted: usize,
}

impl RunMetrics {
    /// JCTs in minutes of finished jobs.
    pub fn jcts_mins(&self) -> Vec<f64> {
        self.jobs.iter().filter_map(|j| j.jct_mins).collect()
    }

    /// Average JCT in minutes over finished jobs (Fig. 4b/5b).
    pub fn avg_jct_mins(&self) -> f64 {
        crate::mean(&self.jcts_mins())
    }

    /// Fraction of submitted jobs that met their deadline (Fig. 4c/5c).
    pub fn deadline_ratio(&self) -> f64 {
        if self.jobs_submitted == 0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.met_deadline).count() as f64 / self.jobs_submitted as f64
    }

    /// Average job waiting time in seconds (Fig. 4d/5d).
    pub fn avg_waiting_secs(&self) -> f64 {
        crate::mean(&self.jobs.iter().map(|j| j.waiting_secs).collect::<Vec<_>>())
    }

    /// Average accuracy by deadline (Fig. 4e/5e).
    pub fn avg_accuracy(&self) -> f64 {
        crate::mean(
            &self
                .jobs
                .iter()
                .map(|j| j.accuracy_by_deadline)
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of submitted jobs whose accuracy requirement was met
    /// by the deadline (Fig. 4f/5f).
    pub fn accuracy_ratio(&self) -> f64 {
        if self.jobs_submitted == 0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.met_accuracy).count() as f64 / self.jobs_submitted as f64
    }

    /// Mean scheduler decision time, ms (Fig. 4h/5h).
    pub fn avg_decision_ms(&self) -> f64 {
        crate::mean(&self.decision_times_ms)
    }

    /// Fraction of finished jobs with JCT under `mins` minutes (the
    /// §4.2.1 "jobs with JCTs less than 100 minutes" statistic).
    pub fn jct_cdf_at(&self, mins: f64) -> f64 {
        crate::cdf_at(&self.jcts_mins(), mins)
    }

    /// Bandwidth cost in TB (the Fig. 4g unit).
    pub fn bandwidth_tb(&self) -> f64 {
        self.bandwidth_mb / 1024.0 / 1024.0
    }

    /// Goodput in GPU-hours: total GPU time spent minus the share
    /// destroyed by checkpoint rollbacks. With faults off this equals
    /// `gpu_hours_total`.
    pub fn goodput_gpu_hours(&self) -> f64 {
        (self.gpu_hours_total - self.lost_gpu_hours).max(0.0)
    }

    /// Goodput ÷ throughput: the fraction of consumed GPU time that
    /// produced surviving training progress. 1.0 when nothing ran or
    /// nothing was lost.
    pub fn goodput_ratio(&self) -> f64 {
        if self.gpu_hours_total <= 0.0 {
            1.0
        } else {
            self.goodput_gpu_hours() / self.gpu_hours_total
        }
    }

    /// Clear every wall-clock-derived field. Runs of the same seed are
    /// byte-identical *after* this call — decision timings legitimately
    /// vary between otherwise-identical runs. Determinism tests
    /// serialize-and-compare through here.
    pub fn clear_wall_clock(&mut self) {
        self.decision_times_ms.clear();
        self.telemetry.decision_ns_histogram.clear();
    }

    /// Render the telemetry section as an aligned text table (the
    /// `metrics::table` dump used by `examples/trace_run.rs` and the
    /// bench binaries): one row per counter with its per-round rate,
    /// plus the decision-latency median when timings were recorded.
    pub fn telemetry_table(&self) -> crate::Table {
        let mut t = crate::Table::new(&["telemetry", "total", "per round"]);
        let rounds = self.rounds.max(1) as f64;
        for (label, value) in self.telemetry.counter_rows() {
            t.row(vec![
                label.to_string(),
                value.to_string(),
                format!("{:.3}", value as f64 / rounds),
            ]);
        }
        if let Some(us) = self.telemetry.median_decision_us() {
            t.row(vec![
                "decision median (µs)".to_string(),
                format!("{us:.1}"),
                String::new(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(jct: Option<f64>, met_d: bool, met_a: bool, acc: f64) -> JobRecord {
        JobRecord {
            job: 0,
            arrival: SimTime::ZERO,
            finished: jct.map(|m| SimTime::from_mins(m as u64)),
            deadline: SimTime::from_hours(1),
            jct_mins: jct,
            waiting_secs: 30.0,
            accuracy_by_deadline: acc,
            required_accuracy: 0.7,
            urgency: 5,
            met_deadline: met_d,
            met_accuracy: met_a,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            scheduler: "test".into(),
            jobs_submitted: 4,
            jobs: vec![
                record(Some(10.0), true, true, 0.9),
                record(Some(50.0), true, false, 0.5),
                record(Some(200.0), false, true, 0.8),
                record(None, false, false, 0.1),
            ],
            bandwidth_mb: 2.0 * 1024.0 * 1024.0,
            ..Default::default()
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let m = metrics();
        assert!((m.avg_jct_mins() - (10.0 + 50.0 + 200.0) / 3.0).abs() < 1e-9);
        assert_eq!(m.deadline_ratio(), 0.5);
        assert_eq!(m.accuracy_ratio(), 0.5);
        assert!((m.avg_accuracy() - 0.575).abs() < 1e-9);
        assert_eq!(m.avg_waiting_secs(), 30.0);
        assert_eq!(m.bandwidth_tb(), 2.0);
        assert!((m.jct_cdf_at(100.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_jct_mins(), 0.0);
        assert_eq!(m.deadline_ratio(), 0.0);
        assert_eq!(m.accuracy_ratio(), 0.0);
        assert_eq!(m.avg_decision_ms(), 0.0);
    }

    #[test]
    fn goodput_subtracts_lost_work() {
        let mut m = RunMetrics::default();
        // Nothing ran: goodput ratio is vacuously 1.
        assert_eq!(m.goodput_ratio(), 1.0);
        m.gpu_hours_total = 100.0;
        assert_eq!(m.goodput_gpu_hours(), 100.0);
        assert_eq!(m.goodput_ratio(), 1.0);
        m.lost_gpu_hours = 25.0;
        assert_eq!(m.goodput_gpu_hours(), 75.0);
        assert!((m.goodput_ratio() - 0.75).abs() < 1e-12);
        // Lost work can never drive goodput negative.
        m.lost_gpu_hours = 150.0;
        assert_eq!(m.goodput_gpu_hours(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = metrics();
        m.telemetry.placements = 17;
        m.telemetry.decision_ns_histogram = vec![0, 3, 1];
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.jobs.len(), 4);
        assert_eq!(back.scheduler, "test");
        assert_eq!(back.telemetry, m.telemetry);
    }

    #[test]
    fn clear_wall_clock_strips_only_timing_fields() {
        let mut m = metrics();
        m.decision_times_ms = vec![0.1, 0.2];
        m.telemetry.placements = 9;
        m.telemetry.decision_ns_histogram = vec![1, 2];
        m.clear_wall_clock();
        assert!(m.decision_times_ms.is_empty());
        assert!(m.telemetry.decision_ns_histogram.is_empty());
        assert_eq!(m.telemetry.placements, 9); // deterministic part kept
    }

    #[test]
    fn telemetry_table_lists_counters_and_median() {
        let mut m = metrics();
        m.rounds = 10;
        m.telemetry.placements = 25;
        m.telemetry.migrations = 5;
        // 4 decisions in bucket 17 (~131 µs) → median ≈ 185 µs midpoint.
        let mut hist = vec![0u64; 32];
        if let Some(b) = hist.get_mut(17) {
            *b = 4;
        }
        m.telemetry.decision_ns_histogram = hist;
        let rendered = m.telemetry_table().render();
        assert!(rendered.contains("placements"), "{rendered}");
        assert!(rendered.contains("2.500"), "{rendered}"); // 25 / 10 rounds
        assert!(rendered.contains("decision median"), "{rendered}");
        let med = m.telemetry.median_decision_us().unwrap();
        assert!((100.0..400.0).contains(&med), "{med}");
        // Empty histogram → no median row.
        m.telemetry.decision_ns_histogram.clear();
        assert!(m.telemetry.median_decision_us().is_none());
    }
}
