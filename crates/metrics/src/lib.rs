//! # metrics — experiment measurement and reporting
//!
//! Collects everything the paper's figures plot:
//!
//! * per-job records (JCT, waiting time, deadline/accuracy
//!   satisfaction, accuracy by deadline) — Figs. 4/5 panels a–f;
//! * bandwidth cost (panel g) and migration accounting;
//! * scheduler decision-time overhead (panel h);
//! * makespan (§4.2.1's text comparison);
//! * server-overload occurrence counts (Fig. 8a);
//! * the [`RoundTelemetry`] section: obs-layer counters (placements,
//!   migrations, requeues, candidates scored) and the wall-clock
//!   decision-latency histogram, folded in by the sim engine.
//!
//! Plus small formatting helpers so the bench binaries print the same
//! rows/series the paper reports.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod run;
pub mod table;

pub use run::{FaultRecord, JobRecord, RoundTelemetry, RunMetrics, TimelinePoint};
pub use table::Table;

/// Empirical CDF over `values`; returns `(x, fraction ≤ x)` at each
/// distinct value, suitable for plotting Figs. 4a/5a.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *v => last.1 = frac,
            _ => out.push((*v, frac)),
        }
    }
    out
}

/// Fraction of `values` at or below `x` (step interpolation of the
/// empirical CDF).
pub fn cdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| **v <= x).count() as f64 / values.len() as f64
}

/// `p`-th percentile (0–100) by nearest-rank. Panics on empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let v = vec![3.0, 1.0, 2.0, 2.0, 5.0];
        let c = cdf(&v);
        assert_eq!(c.first().unwrap().0, 1.0);
        assert_eq!(c.last().unwrap(), &(5.0, 1.0));
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        // Duplicate value collapses into one point with joint mass.
        let two = c.iter().find(|(x, _)| *x == 2.0).unwrap();
        assert!((two.1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_interpolates_steps() {
        let v = vec![10.0, 20.0, 30.0];
        assert_eq!(cdf_at(&v, 5.0), 0.0);
        assert!((cdf_at(&v, 10.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf_at(&v, 25.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf_at(&v, 100.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
