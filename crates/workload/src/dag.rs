//! Task dependency graphs from model partitioning.
//!
//! §3.2 of the paper: "a task (running in a worker) computes one model
//! partition for one mini-batch. The tasks form a task dependency
//! graph based on the data flow between the tasks." We build three
//! shapes used in the evaluation (§4.1):
//!
//! * **Sequential** — MLP and AlexNet: "because of their sequential
//!   task dependency graph structures, we partitioned the model
//!   sequentially into several parts".
//! * **Layered** — ResNet and LSTM: "we … partitioned each layer into
//!   several parts", giving a layers × width grid with dense edges
//!   between adjacent layers.
//! * **DataParallel** — SVM: "only used data parallelism"; independent
//!   workers with no inter-partition edges.
//!
//! On top of the partition graph sits a [`CommStructure`]: either a
//! parameter server (an extra task that sinks feed; the paper assigns
//! it "the highest priority") or all-reduce (sinks exchange parameters
//! among themselves with no extra task).

use serde::{Deserialize, Serialize};

/// Parameter accumulation structure (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommStructure {
    /// Dedicated parameter-server task; DAG sinks send results to it.
    ParameterServer,
    /// Reducers exchange parameters directly (ring/2D-torus); no extra
    /// task, but sinks still pay cross-server communication.
    AllReduce,
}

/// An immutable DAG over task indices `0..n`.
///
/// Edges point parent → child ("child depends on parent" in data-flow
/// order; the paper's `child(k)` — the *dependent* tasks of `k` — are
/// the graph children here).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    n: usize,
    children: Vec<Vec<u16>>,
    parents: Vec<Vec<u16>>,
    /// Cached at construction: tasks with no parents.
    sources: Vec<u16>,
    /// Cached at construction: tasks with no children. Queried on
    /// every `comm_neighbors` call in the scheduler hot path.
    sinks: Vec<u16>,
    /// Cached at construction: a topological order (Kahn's algorithm,
    /// smallest-index-first for determinism).
    topo: Vec<u16>,
}

impl Dag {
    /// Build from an edge list. Validates indices and acyclicity.
    ///
    /// # Panics
    /// Panics on out-of-range indices, duplicate edges or cycles —
    /// DAGs are constructed by generators, so these are bugs.
    pub fn new(n: usize, edges: &[(u16, u16)]) -> Self {
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
            assert_ne!(a, b, "self-loop");
            assert!(!children[a as usize].contains(&b), "duplicate edge");
            children[a as usize].push(b);
            parents[b as usize].push(a);
        }
        let topo = compute_topo(n, &children, &parents);
        assert!(topo.len() == n, "graph has a cycle");
        let sources = (0..n)
            .filter(|&i| parents[i].is_empty())
            .map(|i| i as u16)
            .collect();
        let sinks = (0..n)
            .filter(|&i| children[i].is_empty())
            .map(|i| i as u16)
            .collect();
        Dag {
            n,
            children,
            parents,
            sources,
            sinks,
            topo,
        }
    }

    /// An edgeless DAG of `n` independent tasks.
    pub fn independent(n: usize) -> Self {
        Dag::new(n, &[])
    }

    /// A chain 0 → 1 → … → n−1.
    pub fn sequential(n: usize) -> Self {
        let edges: Vec<(u16, u16)> = (1..n).map(|i| ((i - 1) as u16, i as u16)).collect();
        Dag::new(n, &edges)
    }

    /// A layered grid: `n` tasks arranged into roughly-square layers;
    /// every task in layer `l` feeds every task in layer `l+1`.
    /// `width` tasks per layer (the last layer may be narrower).
    pub fn layered(n: usize, width: usize) -> Self {
        assert!(width >= 1);
        let mut edges = Vec::new();
        let layers: Vec<Vec<u16>> = (0..n)
            .map(|i| i as u16)
            .collect::<Vec<_>>()
            .chunks(width)
            .map(|c| c.to_vec())
            .collect();
        for w in layers.windows(2) {
            for &a in &w[0] {
                for &b in &w[1] {
                    edges.push((a, b));
                }
            }
        }
        Dag::new(n, &edges)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct children (dependent tasks) of `k`.
    pub fn children(&self, k: usize) -> &[u16] {
        &self.children[k]
    }

    /// Direct parents of `k`.
    pub fn parents(&self, k: usize) -> &[u16] {
        &self.parents[k]
    }

    /// Edge list (parent, child), in parent order.
    pub fn edges(&self) -> Vec<(u16, u16)> {
        let mut out = Vec::new();
        for (a, cs) in self.children.iter().enumerate() {
            for &b in cs {
                out.push((a as u16, b));
            }
        }
        out
    }

    /// Tasks with no parents (cached at construction).
    pub fn sources(&self) -> &[u16] {
        &self.sources
    }

    /// Tasks with no children (cached at construction).
    pub fn sinks(&self) -> &[u16] {
        &self.sinks
    }

    /// A topological order, cached at construction (Kahn's algorithm,
    /// smallest-index-first for determinism).
    pub fn topological_order(&self) -> &[u16] {
        &self.topo
    }

    /// Number of transitive descendants of each task (not counting the
    /// task itself). The paper's spatial feature: "if a task has more
    /// dependent tasks … it should run earlier".
    pub fn descendant_counts(&self) -> Vec<usize> {
        let order = self.topological_order();
        let mut sets: Vec<std::collections::BTreeSet<u16>> =
            vec![std::collections::BTreeSet::new(); self.n];
        for &k in order.iter().rev() {
            let mut acc = std::collections::BTreeSet::new();
            for &c in &self.children[k as usize] {
                acc.insert(c);
                acc.extend(sets[c as usize].iter().copied());
            }
            sets[k as usize] = acc;
        }
        sets.into_iter().map(|s| s.len()).collect()
    }

    /// Longest path length (in edges) from each task to any sink.
    pub fn height(&self) -> Vec<usize> {
        let order = self.topological_order();
        let mut h = vec![0usize; self.n];
        for &k in order.iter().rev() {
            h[k as usize] = self.children[k as usize]
                .iter()
                .map(|&c| h[c as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        h
    }

    /// Critical-path weight: the maximum, over root-to-sink paths, of
    /// the sum of per-task `weight`. This is the synchronous-training
    /// iteration time when communication is free.
    pub fn critical_path(&self, weight: &[f64]) -> f64 {
        assert_eq!(weight.len(), self.n);
        let order = self.topological_order();
        let mut best = vec![0.0f64; self.n];
        let mut max = 0.0f64;
        for &k in order {
            let up = self.parents[k as usize]
                .iter()
                .map(|&p| best[p as usize])
                .fold(0.0, f64::max);
            best[k as usize] = up + weight[k as usize];
            max = max.max(best[k as usize]);
        }
        max
    }
}

/// Kahn's algorithm over raw adjacency lists, smallest-index-first.
/// Returns fewer than `n` entries iff the graph has a cycle.
fn compute_topo(n: usize, children: &[Vec<u16>], parents: &[Vec<u16>]) -> Vec<u16> {
    let mut indeg: Vec<usize> = (0..n).map(|i| parents[i].len()).collect();
    let mut ready: Vec<u16> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| i as u16)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&next) = ready.iter().min() {
        ready.retain(|&x| x != next);
        order.push(next);
        for &c in &children[next as usize] {
            indeg[c as usize] -= 1;
            if indeg[c as usize] == 0 {
                ready.push(c);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_shape() {
        let d = Dag::sequential(4);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
        assert_eq!(d.children(1), &[2]);
        assert_eq!(d.parents(2), &[1]);
        assert_eq!(d.topological_order(), vec![0, 1, 2, 3]);
        assert_eq!(d.descendant_counts(), vec![3, 2, 1, 0]);
        assert_eq!(d.height(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn layered_shape() {
        // 6 tasks, width 2 → layers {0,1},{2,3},{4,5}.
        let d = Dag::layered(6, 2);
        assert_eq!(d.sources(), vec![0, 1]);
        assert_eq!(d.sinks(), vec![4, 5]);
        assert_eq!(d.children(0), &[2, 3]);
        assert_eq!(d.parents(5), &[2, 3]);
        assert_eq!(d.descendant_counts()[0], 4);
        assert_eq!(d.height(), vec![2, 2, 1, 1, 0, 0]);
    }

    #[test]
    fn independent_shape() {
        let d = Dag::independent(3);
        assert_eq!(d.sources(), vec![0, 1, 2]);
        assert_eq!(d.sinks(), vec![0, 1, 2]);
        assert!(d.edges().is_empty());
    }

    #[test]
    fn critical_path_sums_longest_chain() {
        let d = Dag::sequential(3);
        assert_eq!(d.critical_path(&[1.0, 2.0, 3.0]), 6.0);
        let l = Dag::layered(4, 2); // {0,1} -> {2,3}
        assert_eq!(l.critical_path(&[1.0, 5.0, 2.0, 1.0]), 7.0);
        let i = Dag::independent(3);
        assert_eq!(i.critical_path(&[4.0, 9.0, 2.0]), 9.0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cycles() {
        Dag::new(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Dag::new(1, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        Dag::new(2, &[(0, 1), (0, 1)]);
    }

    #[test]
    fn single_task_dag() {
        let d = Dag::independent(1);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![0]);
        assert_eq!(d.critical_path(&[7.0]), 7.0);
        assert_eq!(d.descendant_counts(), vec![0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn random_dag() -> impl Strategy<Value = Dag> {
        (1usize..24).prop_flat_map(|n| {
            // Edges only point from lower to higher index → acyclic by
            // construction.
            let pairs: Vec<(u16, u16)> = (0..n as u16)
                .flat_map(|a| ((a + 1)..n as u16).map(move |b| (a, b)))
                .collect();
            proptest::sample::subsequence(pairs.clone(), 0..=pairs.len())
                .prop_map(move |edges| Dag::new(n, &edges))
        })
    }

    proptest! {
        /// Topological order contains each task once and respects every
        /// edge.
        #[test]
        fn topo_order_is_valid(d in random_dag()) {
            let order = d.topological_order();
            prop_assert_eq!(order.len(), d.len());
            // BTreeMap keeps even test code free of hash-order types,
            // so the workspace determinism lint holds with zero
            // allowlist entries in this crate.
            let pos: std::collections::BTreeMap<u16, usize> =
                order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            for (a, b) in d.edges() {
                prop_assert!(pos[&a] < pos[&b]);
            }
        }

        /// Critical path is at least the heaviest single task and at
        /// most the total weight.
        #[test]
        fn critical_path_bounds(d in random_dag()) {
            let w: Vec<f64> = (0..d.len()).map(|i| 1.0 + i as f64).collect();
            let cp = d.critical_path(&w);
            let max = w.iter().cloned().fold(0.0, f64::max);
            let sum: f64 = w.iter().sum();
            prop_assert!(cp >= max - 1e-9);
            prop_assert!(cp <= sum + 1e-9);
        }

        /// Descendant counts are consistent with height: a task's
        /// descendant count is at least its height.
        #[test]
        fn descendants_at_least_height(d in random_dag()) {
            let desc = d.descendant_counts();
            let h = d.height();
            for i in 0..d.len() {
                prop_assert!(desc[i] >= h[i]);
            }
        }
    }
}
