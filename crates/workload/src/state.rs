//! Dynamic per-job runtime state.
//!
//! [`JobState`] wraps a [`JobSpec`] with everything that changes while
//! the job runs: fractional iterations completed, task placement
//! status, accumulated waiting time, and the stop decision. The
//! simulator advances this state; schedulers read it (and MLF-C
//! mutates the effective stop policy).

use crate::curves::LearningProfile;
use crate::job::{JobSpec, StopPolicy};
use cluster::ServerId;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Where a task currently is, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskRunState {
    /// In the waiting queue since `since`.
    Waiting {
        /// When the task entered the queue.
        since: SimTime,
    },
    /// Placed on a server/GPU.
    Running {
        /// Hosting server.
        server: ServerId,
        /// Hosting GPU index.
        gpu: usize,
    },
    /// The job finished or was stopped; the task no longer exists.
    Done,
}

/// Why a job stopped generating iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Ran its full iteration budget (option i).
    MaxIterations,
    /// OptStop decided accuracy had (nearly) saturated (option ii).
    OptStop,
    /// Required accuracy reached (option iii).
    RequiredAccuracy,
    /// OptStop predicted the accuracy target is unreachable and ended
    /// training early with confidence (§3.5).
    PredictedUnreachable,
}

/// A job's live state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobState {
    /// The immutable specification.
    pub spec: JobSpec,
    /// Iterations completed so far (fractional under the fluid model).
    pub iterations: f64,
    /// Per-task run state, indexed like `spec.tasks`.
    pub task_states: Vec<TaskRunState>,
    /// The stop policy currently in force (MLF-C may demote it from
    /// `spec.stop_policy` under overload).
    pub effective_policy: StopPolicy,
    /// When the job completed (all work done or stopped), if it has.
    pub finished: Option<SimTime>,
    /// Why it stopped, if stopped.
    pub stop_reason: Option<StopReason>,
    /// Accumulated time with zero running tasks ("job waiting time",
    /// Fig. 4d).
    pub waiting: SimDuration,
    /// Accuracy measured when the deadline passed (used for the
    /// "accuracy by deadline" metrics once the deadline is behind us).
    pub accuracy_at_deadline: Option<f64>,
}

impl JobState {
    /// Fresh state for a newly arrived job: all tasks waiting.
    pub fn new(spec: JobSpec, now: SimTime) -> Self {
        let n = spec.task_count();
        let effective_policy = spec.stop_policy;
        JobState {
            spec,
            iterations: 0.0,
            task_states: vec![TaskRunState::Waiting { since: now }; n],
            effective_policy,
            finished: None,
            stop_reason: None,
            waiting: SimDuration::ZERO,
            accuracy_at_deadline: None,
        }
    }

    /// The job's learning curve.
    pub fn curve(&self) -> &LearningProfile {
        &self.spec.curve
    }

    /// Current accuracy.
    pub fn accuracy(&self) -> f64 {
        self.spec.curve.accuracy_at(self.iterations)
    }

    /// Accuracy credited "by the deadline": the value frozen when the
    /// deadline passed, or the live value if the deadline is still
    /// ahead.
    pub fn accuracy_by_deadline(&self) -> f64 {
        self.accuracy_at_deadline.unwrap_or_else(|| self.accuracy())
    }

    /// Whether the job has completed (stopped or finished).
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Job completion time, if finished.
    pub fn jct(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.since(self.spec.arrival))
    }

    /// Iterations still to run under the current target.
    pub fn remaining_iterations(&self) -> f64 {
        (self.spec.max_iterations as f64 - self.iterations).max(0.0)
    }

    /// Tasks currently placed (running).
    pub fn running_tasks(&self) -> usize {
        self.task_states
            .iter()
            .filter(|s| matches!(s, TaskRunState::Running { .. }))
            .count()
    }

    /// Tasks currently waiting in the queue.
    pub fn waiting_tasks(&self) -> usize {
        self.task_states
            .iter()
            .filter(|s| matches!(s, TaskRunState::Waiting { .. }))
            .count()
    }

    /// True when every task is placed (the job can make full progress).
    pub fn fully_placed(&self) -> bool {
        !self.is_finished() && self.waiting_tasks() == 0 && self.running_tasks() > 0
    }

    /// The run state of task `idx`.
    pub fn task_state(&self, idx: usize) -> TaskRunState {
        self.task_states[idx]
    }

    /// How long task `idx` has been waiting, or zero if not waiting
    /// (`w_{k,J}` in Eq. 4).
    pub fn task_waiting_time(&self, idx: usize, now: SimTime) -> SimDuration {
        match self.task_states[idx] {
            TaskRunState::Waiting { since } => now.since(since),
            _ => SimDuration::ZERO,
        }
    }

    /// Estimated remaining running time `r_{k,J} = t_{k,J} − p_{k,J}`
    /// (Eq. 4), computed at job granularity from predicted runtime and
    /// iteration progress. Floors at one millisecond so the priority's
    /// `1/r` term stays finite.
    pub fn remaining_runtime(&self) -> SimDuration {
        let frac_done = if self.spec.max_iterations == 0 {
            1.0
        } else {
            (self.iterations / self.spec.max_iterations as f64).min(1.0)
        };
        let remaining = self
            .spec
            .predicted_runtime
            .mul_f64((1.0 - frac_done).max(0.0));
        if remaining.is_zero() {
            SimDuration(1)
        } else {
            remaining
        }
    }

    /// Record progress of `delta` iterations.
    pub fn advance(&mut self, delta: f64) {
        assert!(delta >= 0.0 && delta.is_finite(), "bad progress {delta}");
        self.iterations += delta;
    }

    /// Number of whole iterations completed — the length of the
    /// (virtual) loss-reduction history. The history itself is fully
    /// determined by the learning curve, so it is derived on demand
    /// via [`JobState::loss_delta`] instead of being stored per job
    /// (at paper scale a stored `Vec<f64>` of up to `max_iterations`
    /// entries per job dominated memory).
    pub fn recorded_iterations(&self) -> usize {
        self.iterations.floor() as usize
    }

    /// Loss reduction δl of whole iteration `i` (1-based), as the
    /// removed per-job history stored it: `loss(i-1) − loss(i)`.
    pub fn loss_delta(&self, i: usize) -> f64 {
        self.spec.curve.loss_at(i as f64 - 1.0) - self.spec.curve.loss_at(i as f64)
    }

    /// Roll training back to `target` iterations (a checkpoint
    /// boundary ≤ current progress). Accuracy and the derived loss
    /// history roll back with `iterations`. Used by fault recovery:
    /// work past the last checkpoint is lost on a crash.
    pub fn rollback_to(&mut self, target: f64) {
        assert!(
            target >= 0.0 && target <= self.iterations + 1e-9,
            "rollback target {target} outside [0, {}]",
            self.iterations
        );
        self.iterations = target.min(self.iterations);
    }

    /// Mark the job finished at `now` for `reason`; all tasks become
    /// `Done`.
    pub fn finish(&mut self, now: SimTime, reason: StopReason) {
        assert!(self.finished.is_none(), "job finished twice");
        self.finished = Some(now);
        self.stop_reason = Some(reason);
        for s in &mut self.task_states {
            *s = TaskRunState::Done;
        }
    }

    /// Freeze the by-deadline accuracy if the deadline has passed and
    /// it is not yet recorded.
    pub fn freeze_deadline_accuracy(&mut self, now: SimTime) {
        if self.accuracy_at_deadline.is_none() && now >= self.spec.deadline {
            self.accuracy_at_deadline = Some(self.accuracy());
        }
    }

    /// Did the job meet its deadline? Only meaningful once finished.
    pub fn met_deadline(&self) -> bool {
        match self.finished {
            Some(f) => f <= self.spec.deadline,
            None => false,
        }
    }

    /// Did the job reach its required accuracy by its deadline?
    pub fn met_accuracy(&self) -> bool {
        self.accuracy_by_deadline() >= self.spec.required_accuracy - 1e-12
    }

    /// The iteration index `I` the paper's Eq. 2 uses: the iteration
    /// currently being executed (1-based).
    pub fn current_iteration(&self) -> f64 {
        self.iterations.floor() + 1.0
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::algorithms::MlAlgorithm;
    use crate::dag::{CommStructure, Dag};
    use crate::job::TaskSpec;
    use cluster::{JobId, ResourceVec, TaskId};

    fn spec() -> JobSpec {
        spec_with_id(7)
    }

    /// A tiny 2-task spec with a chosen id (shared with arena tests).
    pub(crate) fn spec_with_id(raw: u32) -> JobSpec {
        let id = JobId(raw);
        JobSpec {
            id,
            algorithm: MlAlgorithm::Svm,
            arrival: SimTime::from_secs(10),
            deadline: SimTime::from_secs(1000),
            required_accuracy: 0.5,
            urgency: 3,
            max_iterations: 50,
            tasks: (0..2)
                .map(|i| TaskSpec {
                    id: TaskId::new(id, i),
                    partition_mb: 5.0,
                    demand: ResourceVec::splat(0.1),
                    gpu_share: 0.5,
                    compute: SimDuration::from_secs(1),
                    is_param_server: false,
                })
                .collect(),
            dag: Dag::independent(2),
            comm: CommStructure::AllReduce,
            comm_mb: 50.0,
            model_mb: 10.0,
            train_data_mb: 100.0,
            curve: LearningProfile::new(1.0, 0.1, 0.1, 0.8),
            stop_policy: StopPolicy::OptStop,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_secs(100),
            previously_run: false,
        }
    }

    #[test]
    fn fresh_state_is_all_waiting() {
        let s = JobState::new(spec(), SimTime::from_secs(10));
        assert_eq!(s.waiting_tasks(), 2);
        assert_eq!(s.running_tasks(), 0);
        assert!(!s.fully_placed());
        assert!(!s.is_finished());
        assert_eq!(s.iterations, 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.current_iteration(), 1.0);
    }

    #[test]
    fn advance_accumulates_derived_loss_history() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        s.advance(0.6);
        assert_eq!(s.recorded_iterations(), 0); // no whole iteration yet
        s.advance(0.6); // crosses iteration 1
        assert_eq!(s.recorded_iterations(), 1);
        s.advance(3.0); // crosses 2, 3, 4
        assert_eq!(s.recorded_iterations(), 4);
        // History deltas shrink (diminishing returns).
        assert!(s.loss_delta(1) > s.loss_delta(4));
        // History telescopes to cumulative reduction.
        let sum: f64 = (1..=s.recorded_iterations()).map(|i| s.loss_delta(i)).sum();
        let expect = s.spec.curve.cumulative_loss_reduction(4.0);
        assert!((sum - expect).abs() < 1e-9);
    }

    #[test]
    fn rollback_truncates_progress_and_history() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        s.advance(7.4);
        assert_eq!(s.recorded_iterations(), 7);
        let acc_at_5 = {
            let mut probe = JobState::new(spec(), SimTime::ZERO);
            probe.advance(5.0);
            probe.accuracy()
        };
        s.rollback_to(5.0);
        assert_eq!(s.iterations, 5.0);
        assert_eq!(s.recorded_iterations(), 5);
        assert!((s.accuracy() - acc_at_5).abs() < 1e-12);
        // Advancing again from the checkpoint re-covers the same
        // iterations (the derived history telescopes as before).
        s.advance(2.0);
        assert_eq!(s.recorded_iterations(), 7);
        let sum: f64 = (1..=s.recorded_iterations()).map(|i| s.loss_delta(i)).sum();
        let expect = s.spec.curve.cumulative_loss_reduction(7.0);
        assert!((sum - expect).abs() < 1e-9);
    }

    #[test]
    fn finish_sets_everything() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        s.advance(50.0);
        s.finish(SimTime::from_secs(200), StopReason::MaxIterations);
        assert!(s.is_finished());
        assert_eq!(s.jct(), Some(SimDuration::from_secs(190))); // 200 − 10 arrival
        assert_eq!(s.stop_reason, Some(StopReason::MaxIterations));
        assert_eq!(s.waiting_tasks(), 0);
        assert!(s.met_deadline());
    }

    #[test]
    #[should_panic(expected = "finished twice")]
    fn double_finish_panics() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        s.finish(SimTime::from_secs(1), StopReason::OptStop);
        s.finish(SimTime::from_secs(2), StopReason::OptStop);
    }

    #[test]
    fn deadline_accuracy_freezes_once() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        s.advance(10.0);
        s.freeze_deadline_accuracy(SimTime::from_secs(500));
        assert!(s.accuracy_at_deadline.is_none()); // deadline not passed
        s.freeze_deadline_accuracy(SimTime::from_secs(1000));
        let frozen = s.accuracy_at_deadline.unwrap();
        s.advance(40.0);
        // Frozen value sticks even as live accuracy grows.
        assert_eq!(s.accuracy_by_deadline(), frozen);
        assert!(s.accuracy() > frozen);
        s.freeze_deadline_accuracy(SimTime::from_secs(2000));
        assert_eq!(s.accuracy_at_deadline, Some(frozen));
    }

    #[test]
    fn remaining_runtime_scales_with_progress() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        assert_eq!(s.remaining_runtime(), SimDuration::from_secs(100));
        s.advance(25.0); // half of 50 iterations
        assert_eq!(s.remaining_runtime(), SimDuration::from_secs(50));
        s.advance(25.0);
        assert_eq!(s.remaining_runtime(), SimDuration(1)); // floored
    }

    #[test]
    fn task_waiting_time_tracks_queue_entry() {
        let mut s = JobState::new(spec(), SimTime::from_secs(10));
        let now = SimTime::from_secs(70);
        assert_eq!(s.task_waiting_time(0, now), SimDuration::from_secs(60));
        s.task_states[0] = TaskRunState::Running {
            server: ServerId(0),
            gpu: 0,
        };
        assert_eq!(s.task_waiting_time(0, now), SimDuration::ZERO);
    }

    #[test]
    fn met_accuracy_uses_by_deadline_value() {
        let mut s = JobState::new(spec(), SimTime::ZERO);
        // Achievable = 0.8 * 0.9 = 0.72 ≥ required 0.5.
        s.advance(50.0);
        assert!(s.met_accuracy());
        let mut s2 = JobState::new(spec(), SimTime::ZERO);
        s2.advance(1.0);
        s2.freeze_deadline_accuracy(SimTime::from_secs(1000));
        assert!(!s2.met_accuracy());
    }
}
