//! # workload — ML jobs, tasks, learning curves and traces
//!
//! Models everything the paper's schedulers observe about ML training
//! jobs:
//!
//! * [`algorithms`] — profiles of the five paper workloads (AlexNet,
//!   ResNet, MLP, LSTM, SVM): model size, batch size, partitioning
//!   style, per-iteration compute, resource demands (§4.1).
//! * [`dag`] — task dependency graphs produced by model partitioning:
//!   sequential chains (MLP, AlexNet), layered partitions (ResNet,
//!   LSTM), data-parallel fan-out (SVM), plus the parameter-server /
//!   all-reduce communication structures (§3.2, Fig. 2).
//! * [`curves`] — diminishing-returns loss and accuracy curves: the
//!   temporal ML feature the paper exploits ("earlier iterations have
//!   higher impact on the accuracy", §1).
//! * [`job`] — static job/task specifications ([`JobSpec`],
//!   [`TaskSpec`]) including deadlines, urgency levels, accuracy
//!   requirements and stop policies (§3.5 options i/ii/iii).
//! * [`state`] — dynamic per-job runtime state (iterations completed,
//!   task placement status, waiting time) that the simulator advances
//!   and schedulers read, plus the SoA [`JobArena`] holding all of it.
//! * [`predict`] — the Optimus-style runtime predictor assumption
//!   (89% seen / 70% unseen accuracy, §3.1).
//! * [`trace`] — a synthetic Philly-like trace generator standing in
//!   for the proprietary-access Microsoft trace (see DESIGN.md's
//!   substitution table).

//! # Example
//!
//! Generate a quarter-scale paper trace and inspect a job:
//!
//! ```
//! use workload::{TraceConfig, TraceGenerator};
//!
//! let trace = TraceGenerator::new(TraceConfig::paper_real(0.25, 16.0, 42)).generate();
//! assert_eq!(trace.len(), 155); // 620 · ¼ jobs (§4.1)
//! let job = &trace[0];
//! assert!(job.deadline > job.arrival);
//! assert!(job.required_accuracy < job.curve.achievable_accuracy());
//! assert!([1, 2, 4, 8, 16, 32].contains(&job.worker_count()));
//! ```

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod algorithms;
pub mod arena;
pub mod curves;
pub mod dag;
pub mod job;
pub mod predict;
pub mod state;
pub mod trace;

pub use algorithms::{AlgorithmProfile, MlAlgorithm};
pub use arena::{JobArena, JobHotRow, JobSlot};
pub use curves::LearningProfile;
pub use dag::{CommStructure, Dag};
pub use job::{JobSpec, StopPolicy, TaskSpec};
pub use predict::RuntimePredictor;
pub use state::{JobState, StopReason, TaskRunState};
pub use trace::{load_trace, save_trace, TraceConfig, TraceGenerator};
