//! `trace_tool` — generate, inspect and export synthetic traces.
//!
//! ```sh
//! # summarise a paper-scale trace
//! cargo run --release -p workload --bin trace_tool -- stats --jobs 620 --tf 16 --seed 42
//!
//! # export to JSON for external tooling
//! cargo run --release -p workload --bin trace_tool -- export --jobs 155 --out trace.json
//! ```

use workload::{MlAlgorithm, TraceConfig, TraceGenerator};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("stats");
    let jobs: usize = flag(&args, "jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(620);
    let tf: f64 = flag(&args, "tf")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let seed: u64 = flag(&args, "seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut cfg = TraceConfig::paper_real(1.0, tf, seed);
    cfg.jobs = jobs;
    let trace = TraceGenerator::new(cfg).generate();

    match cmd {
        "export" => {
            let out = flag(&args, "out").unwrap_or_else(|| "trace.json".into());
            std::fs::write(
                &out,
                serde_json::to_string_pretty(&trace).expect("serialize"),
            )
            .expect("write trace file");
            println!("{} jobs written to {out}", trace.len());
        }
        "stats" => {
            println!("jobs               : {}", trace.len());
            let span_h = trace
                .last()
                .map(|j| j.arrival.as_hours_f64())
                .unwrap_or(0.0);
            println!("arrival span       : {span_h:.1} h (compressed {tf}x)");
            println!("\nalgorithm mix:");
            for a in MlAlgorithm::ALL {
                let n = trace.iter().filter(|j| j.algorithm == a).count();
                println!(
                    "  {:<8} {:>5}  ({:.1}%)",
                    a.name(),
                    n,
                    100.0 * n as f64 / trace.len().max(1) as f64
                );
            }
            println!("\nGPU-count distribution:");
            for k in [1usize, 2, 4, 8, 16, 32] {
                let n = trace.iter().filter(|j| j.worker_count() == k).count();
                println!(
                    "  {:>2} GPUs  {:>5}  ({:.1}%)",
                    k,
                    n,
                    100.0 * n as f64 / trace.len().max(1) as f64
                );
            }
            let mut runtimes: Vec<f64> = trace
                .iter()
                .map(|j| j.predicted_runtime.as_mins_f64())
                .collect();
            runtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pct = |p: f64| {
                runtimes[((p / 100.0 * runtimes.len() as f64) as usize).min(runtimes.len() - 1)]
            };
            println!("\npredicted runtime (compressed minutes):");
            println!(
                "  p10 {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}",
                pct(10.0),
                pct(50.0),
                pct(90.0),
                pct(99.0)
            );
            let ps = trace.iter().filter(|j| j.has_param_server()).count();
            println!(
                "\nparameter-server jobs: {:.1}%",
                100.0 * ps as f64 / trace.len().max(1) as f64
            );
            let iters: Vec<u64> = trace.iter().map(|j| j.max_iterations).collect();
            println!(
                "iteration budgets  : min {}  max {}",
                iters.iter().min().unwrap_or(&0),
                iters.iter().max().unwrap_or(&0)
            );
        }
        other => {
            eprintln!("unknown command '{other}' (use stats|export)");
            std::process::exit(2);
        }
    }
}
