//! Loss and accuracy curves with diminishing returns.
//!
//! The paper's *temporal* ML feature: "earlier iterations have higher
//! impact on the accuracy than later iterations \[58\]" — i.e. loss
//! reduction per iteration shrinks as training proceeds. We model each
//! job's loss as an exponential decay toward a floor,
//!
//! ```text
//! loss(i) = floor + (l0 − floor) · exp(−k·i)
//! ```
//!
//! and derive accuracy from normalized loss progress,
//!
//! ```text
//! acc(i) = a_max · (1 − loss(i)/l0)
//! ```
//!
//! so `acc(0) = 0` and `acc(∞) = a_max · (1 − floor/l0)` — the job's
//! *achievable accuracy*. Closed forms keep the fluid simulation exact
//! and let schedulers query `δl_{I−1}` and `Σδl` (Eq. 2) at fractional
//! iteration counts. Per-job parameter draws provide workload variety;
//! the paper itself notes its formulas "represent the trends of general
//! ML jobs and can be replaced" (§3.3.1).

use serde::{Deserialize, Serialize};

/// A job's learning curve: loss decay plus the derived accuracy curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningProfile {
    /// Initial loss `l0` (> floor).
    pub l0: f64,
    /// Asymptotic loss floor (≥ 0).
    pub floor: f64,
    /// Decay rate `k` (> 0); larger converges faster.
    pub k: f64,
    /// Accuracy scale `a_max` ∈ (0, 1].
    pub a_max: f64,
}

impl LearningProfile {
    /// Construct, validating parameter sanity.
    ///
    /// # Panics
    /// Panics on non-finite or out-of-range parameters — profiles are
    /// built by the trace generator, so a bad one is a programming bug.
    pub fn new(l0: f64, floor: f64, k: f64, a_max: f64) -> Self {
        assert!(l0.is_finite() && floor.is_finite() && k.is_finite() && a_max.is_finite());
        assert!(
            l0 > 0.0 && floor >= 0.0 && floor < l0,
            "need 0 <= floor < l0"
        );
        assert!(k > 0.0, "decay rate must be positive");
        assert!(a_max > 0.0 && a_max <= 1.0, "a_max in (0,1]");
        LearningProfile {
            l0,
            floor,
            k,
            a_max,
        }
    }

    /// Loss after `i` (possibly fractional) iterations.
    pub fn loss_at(&self, i: f64) -> f64 {
        self.floor + (self.l0 - self.floor) * (-self.k * i.max(0.0)).exp()
    }

    /// Loss reduction achieved *by* iteration `i`, i.e. `Σ_{j≤i} δl_j`
    /// in the paper's notation: `l0 − loss(i)`.
    pub fn cumulative_loss_reduction(&self, i: f64) -> f64 {
        self.l0 - self.loss_at(i)
    }

    /// Loss reduction of the most recent completed unit iteration
    /// ending at `i`: `loss(i−1) − loss(i)` (the paper's `δl_{I−1}`).
    /// For `i < 1` this is the reduction from 0 to `i`.
    pub fn last_delta_loss(&self, i: f64) -> f64 {
        let i = i.max(0.0);
        let prev = (i - 1.0).max(0.0);
        self.loss_at(prev) - self.loss_at(i)
    }

    /// Normalized loss reduction of the most recent iteration:
    /// `δl_{I−1} / Σ_{j≤I−1} δl_j` (Eq. 2's temporal term). Defined as
    /// 1.0 at the very start of training (the first iteration carries
    /// all progress so far).
    pub fn normalized_delta_loss(&self, i: f64) -> f64 {
        let total = self.cumulative_loss_reduction(i);
        if total <= 1e-12 {
            return 1.0;
        }
        (self.last_delta_loss(i) / total).clamp(0.0, 1.0)
    }

    /// Accuracy after `i` iterations.
    pub fn accuracy_at(&self, i: f64) -> f64 {
        self.a_max * (1.0 - self.loss_at(i) / self.l0)
    }

    /// The accuracy this job converges to with unlimited iterations.
    pub fn achievable_accuracy(&self) -> f64 {
        self.a_max * (1.0 - self.floor / self.l0)
    }

    /// Smallest (fractional) iteration count at which accuracy reaches
    /// `target`, or `None` if the target exceeds what is achievable.
    ///
    /// Solves `a_max (1 − loss(i)/l0) = target` analytically.
    pub fn iterations_to_accuracy(&self, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        if target >= self.achievable_accuracy() {
            return None;
        }
        // loss(i) = l0 (1 − target/a_max)
        let want_loss = self.l0 * (1.0 - target / self.a_max);
        // floor + (l0-floor) e^{-ki} = want_loss
        let ratio = (want_loss - self.floor) / (self.l0 - self.floor);
        if ratio <= 0.0 {
            return None;
        }
        Some(-(ratio.ln()) / self.k)
    }

    /// Iteration past which one further iteration improves accuracy by
    /// less than `eps` — the "optimal stopping" point that OptStop
    /// aims for (§3.5). Always finite for exponential decay.
    pub fn saturation_iteration(&self, eps: f64) -> f64 {
        // acc(i+1) − acc(i) = (a_max/l0)(l0−floor) e^{-ki}(1 − e^{-k})
        let gain0 = (self.a_max / self.l0) * (self.l0 - self.floor) * (1.0 - (-self.k).exp());
        if gain0 <= eps {
            return 0.0;
        }
        (gain0 / eps).ln() / self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LearningProfile {
        LearningProfile::new(2.0, 0.2, 0.01, 0.95)
    }

    #[test]
    fn loss_decays_monotonically_to_floor() {
        let p = profile();
        assert_eq!(p.loss_at(0.0), 2.0);
        let mut prev = f64::INFINITY;
        for i in 0..2000 {
            let l = p.loss_at(i as f64);
            assert!(l <= prev);
            assert!(l >= p.floor);
            prev = l;
        }
        assert!((p.loss_at(1e6) - p.floor).abs() < 1e-9);
    }

    #[test]
    fn accuracy_rises_from_zero_to_achievable() {
        let p = profile();
        assert_eq!(p.accuracy_at(0.0), 0.0);
        let ach = p.achievable_accuracy();
        assert!((ach - 0.95 * 0.9).abs() < 1e-12);
        assert!(p.accuracy_at(3000.0) < ach);
        assert!((p.accuracy_at(1e7) - ach).abs() < 1e-9);
    }

    #[test]
    fn delta_loss_diminishes() {
        let p = profile();
        let d10 = p.last_delta_loss(10.0);
        let d100 = p.last_delta_loss(100.0);
        let d1000 = p.last_delta_loss(1000.0);
        assert!(d10 > d100 && d100 > d1000);
        assert!(d1000 > 0.0);
    }

    #[test]
    fn normalized_delta_loss_bounds() {
        let p = profile();
        assert_eq!(p.normalized_delta_loss(0.0), 1.0);
        for i in [1.0, 5.0, 50.0, 500.0, 5000.0] {
            let v = p.normalized_delta_loss(i);
            assert!((0.0..=1.0).contains(&v), "i={i} v={v}");
        }
        // Strictly decreasing in i: later iterations contribute less.
        assert!(p.normalized_delta_loss(10.0) > p.normalized_delta_loss(100.0));
    }

    #[test]
    fn iterations_to_accuracy_inverts_accuracy_at() {
        let p = profile();
        for target in [0.1, 0.3, 0.5, 0.7, 0.8] {
            let i = p.iterations_to_accuracy(target).unwrap();
            assert!((p.accuracy_at(i) - target).abs() < 1e-9, "target {target}");
        }
        assert_eq!(p.iterations_to_accuracy(0.0), Some(0.0));
        assert!(p.iterations_to_accuracy(0.9).is_none()); // above achievable (0.855)
    }

    #[test]
    fn saturation_iteration_has_small_marginal_gain() {
        let p = profile();
        let eps = 1e-4;
        let i = p.saturation_iteration(eps);
        let gain = p.accuracy_at(i + 1.0) - p.accuracy_at(i);
        assert!(gain <= eps * 1.01, "gain {gain}");
        // Just before saturation, gain exceeds eps.
        if i > 2.0 {
            let before = p.accuracy_at(i - 1.0) - p.accuracy_at(i - 2.0);
            assert!(before > eps);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_floor_above_l0() {
        LearningProfile::new(1.0, 2.0, 0.1, 0.9);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_decay() {
        LearningProfile::new(1.0, 0.0, 0.0, 0.9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn profiles() -> impl Strategy<Value = LearningProfile> {
        (0.5f64..5.0, 0.0f64..0.45, 0.001f64..0.5, 0.5f64..1.0)
            .prop_map(|(l0, fr, k, a)| LearningProfile::new(l0, l0 * fr, k, a))
    }

    proptest! {
        /// Accuracy is monotone non-decreasing and bounded by the
        /// achievable accuracy for every valid profile.
        #[test]
        fn accuracy_monotone_and_bounded(p in profiles(), i in 0.0f64..1e4, j in 0.0f64..1e4) {
            let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
            prop_assert!(p.accuracy_at(lo) <= p.accuracy_at(hi) + 1e-12);
            prop_assert!(p.accuracy_at(hi) <= p.achievable_accuracy() + 1e-12);
            prop_assert!(p.accuracy_at(lo) >= -1e-12);
        }

        /// Cumulative loss reduction equals the sum of per-iteration
        /// deltas (telescoping).
        #[test]
        fn deltas_telescope(p in profiles(), n in 1usize..200) {
            let total: f64 = (1..=n).map(|i| p.last_delta_loss(i as f64)).sum();
            prop_assert!((total - p.cumulative_loss_reduction(n as f64)).abs() < 1e-9);
        }

        /// iterations_to_accuracy is consistent with accuracy_at.
        #[test]
        fn inverse_consistency(p in profiles(), frac in 0.05f64..0.95) {
            let target = p.achievable_accuracy() * frac;
            if let Some(i) = p.iterations_to_accuracy(target) {
                prop_assert!((p.accuracy_at(i) - target).abs() < 1e-6);
            }
        }
    }
}
