//! Synthetic Philly-like trace generation.
//!
//! The paper drives its evaluation with Microsoft's Philly DNN trace
//! (117,325 jobs over 18 weeks on 550 servers / 2,474 GPUs), using
//! three fields per job: arrival time, requested GPU count and the
//! completion accuracy (as the job's accuracy requirement). This
//! module generates a synthetic trace reproducing those marginals —
//! see DESIGN.md's substitution table:
//!
//! * **arrivals** — Poisson process modulated by a diurnal + weekly
//!   intensity pattern (busy weekdays, quiet nights), as observed in
//!   the Philly analysis \[26\];
//! * **GPU demand** — drawn from {1, 2, 4, 8, 16, 32}, skewed toward
//!   small jobs (§4.1 draws from exactly this set; the model-partition
//!   count equals the GPU count);
//! * **durations** — heavy-tailed log-normal (minutes to days);
//! * **job mix** — the paper's five algorithms with CNN/LSTM-heavy
//!   weights;
//! * **accuracy requirements** — a fraction of each job's achievable
//!   accuracy, mimicking "the highest accuracy value when the job
//!   finished".
//!
//! A `time_factor` compresses both the arrival span and job durations
//! by the same factor, preserving offered load while shrinking
//! simulated wall-clock — the knob EXPERIMENTS.md records for the
//! scaled-down figure runs.

use crate::algorithms::{AlgorithmProfile, MlAlgorithm};
use crate::curves::LearningProfile;
use crate::dag::CommStructure;
use crate::job::{JobSpec, StopPolicy, TaskSpec};
use crate::predict::RuntimePredictor;
use cluster::{JobId, ResourceVec, TaskId};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng, SimTime};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Arrival span (jobs arrive in `[0, span)`).
    pub span: SimDuration,
    /// Median job duration, minutes (before `time_factor`).
    pub duration_median_mins: f64,
    /// Log-normal sigma of the duration distribution.
    pub duration_sigma: f64,
    /// Compression applied to both span and durations (≥ 1 speeds the
    /// simulation up without changing offered load).
    pub time_factor: f64,
    /// GPU-count choices and weights.
    pub gpu_choices: Vec<(usize, f64)>,
    /// Algorithm mix weights, indexed like [`MlAlgorithm::ALL`].
    pub algorithm_weights: [f64; 5],
    /// Probability that a job uses a parameter server (vs all-reduce).
    pub param_server_prob: f64,
    /// Probability a job ran before (better runtime prediction).
    pub previously_run_prob: f64,
    /// Stop policy assigned to every job (the paper's MLF-C evaluation
    /// assumes all jobs use OptStop; schedulers without load control
    /// ignore it).
    pub stop_policy: StopPolicy,
    /// Random `t_r` deadline component range, hours (paper: \[0.5, 24\]).
    pub deadline_slack_hours: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's real-experiment setting: `620·x` jobs arriving over
    /// one week (§4.1 selects one week of the trace), on the 80-GPU
    /// testbed.
    pub fn paper_real(x: f64, time_factor: f64, seed: u64) -> Self {
        TraceConfig {
            jobs: ((620.0 * x).round() as usize).max(1),
            span: SimDuration::from_hours(7 * 24),
            duration_median_mins: 45.0,
            duration_sigma: 1.3,
            time_factor,
            gpu_choices: default_gpu_choices(),
            algorithm_weights: [0.20, 0.25, 0.15, 0.30, 0.10],
            param_server_prob: 0.7,
            previously_run_prob: 0.7,
            stop_policy: StopPolicy::OptStop,
            deadline_slack_hours: (0.5, 24.0),
            seed,
        }
    }

    /// The paper's simulation setting: `117325·x` jobs over 18 weeks,
    /// scaled down by `scale` (both jobs and — at the caller — the
    /// 550-server cluster) for laptop runs.
    pub fn paper_sim(x: f64, scale: f64, time_factor: f64, seed: u64) -> Self {
        TraceConfig {
            jobs: ((117_325.0 * x * scale).round() as usize).max(1),
            span: SimDuration::from_hours(18 * 7 * 24),
            duration_median_mins: 45.0,
            duration_sigma: 1.3,
            time_factor,
            gpu_choices: default_gpu_choices(),
            algorithm_weights: [0.20, 0.25, 0.15, 0.30, 0.10],
            param_server_prob: 0.7,
            previously_run_prob: 0.7,
            stop_policy: StopPolicy::OptStop,
            deadline_slack_hours: (0.5, 24.0),
            seed,
        }
    }

    /// Effective arrival span after time compression.
    pub fn effective_span(&self) -> SimDuration {
        self.span.mul_f64(1.0 / self.time_factor.max(1e-9))
    }
}

/// Write a generated trace to a JSON file (the `trace_tool export`
/// format).
pub fn save_trace(jobs: &[JobSpec], path: &std::path::Path) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(jobs)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Load a trace previously written by [`save_trace`] (or by hand —
/// any JSON array of [`JobSpec`]s, e.g. converted from the real Philly
/// CSVs). Jobs are re-sorted by arrival; ids must be unique.
pub fn load_trace(path: &std::path::Path) -> std::io::Result<Vec<JobSpec>> {
    let data = std::fs::read_to_string(path)?;
    let mut jobs: Vec<JobSpec> = serde_json::from_str(&data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    jobs.sort_by_key(|j| j.arrival);
    let mut seen = std::collections::BTreeSet::new();
    for j in &jobs {
        if !seen.insert(j.id) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("duplicate job id {}", j.id),
            ));
        }
    }
    Ok(jobs)
}

/// GPU-count distribution: §4.1's choice set, skewed toward small jobs
/// as in the Philly analysis \[26\].
fn default_gpu_choices() -> Vec<(usize, f64)> {
    vec![
        (1, 0.35),
        (2, 0.25),
        (4, 0.18),
        (8, 0.12),
        (16, 0.07),
        (32, 0.03),
    ]
}

/// Generates [`JobSpec`]s from a [`TraceConfig`].
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    predictor: RuntimePredictor,
}

impl TraceGenerator {
    /// New generator for `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceGenerator {
            cfg,
            predictor: RuntimePredictor::default(),
        }
    }

    /// Generate the full trace, sorted by arrival time, with job ids
    /// `0..jobs` in arrival order.
    pub fn generate(&self) -> Vec<JobSpec> {
        let mut rng = SimRng::new(self.cfg.seed);
        let mut arrivals = self.sample_arrivals(&mut rng);
        arrivals.sort_unstable();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| self.generate_job(JobId(i as u32), arrival, &mut rng))
            .collect()
    }

    /// Diurnal + weekly modulated Poisson arrivals (thinning method).
    fn sample_arrivals(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let span = self.cfg.effective_span();
        let span_h = span.as_hours_f64().max(1e-9);
        let mut out = Vec::with_capacity(self.cfg.jobs);
        while out.len() < self.cfg.jobs {
            let t = rng.range_f64(0.0, span_h);
            // Intensity: day-of-week (weekdays busier) × time-of-day
            // (office hours busier). Hours are in *compressed* time, so
            // re-expand to real hours for the pattern.
            let real_h = t * self.cfg.time_factor;
            let dow = ((real_h / 24.0) as u64) % 7;
            let tod = real_h % 24.0;
            let weekly = if dow < 5 { 1.0 } else { 0.55 };
            let diurnal = 0.55 + 0.45 * ((tod - 14.0) * std::f64::consts::PI / 12.0).cos();
            if rng.chance(weekly * diurnal) {
                out.push(SimTime::from_secs((t * 3600.0) as u64));
            }
        }
        out
    }

    fn pick_algorithm(&self, rng: &mut SimRng) -> MlAlgorithm {
        let total: f64 = self.cfg.algorithm_weights.iter().sum();
        let mut x = rng.range_f64(0.0, total);
        for (i, w) in self.cfg.algorithm_weights.iter().enumerate() {
            if x < *w {
                return MlAlgorithm::ALL[i];
            }
            x -= w;
        }
        MlAlgorithm::ALL[4]
    }

    fn pick_gpu_count(&self, rng: &mut SimRng) -> usize {
        let total: f64 = self.cfg.gpu_choices.iter().map(|(_, w)| w).sum();
        let mut x = rng.range_f64(0.0, total);
        for (n, w) in &self.cfg.gpu_choices {
            if x < *w {
                return *n;
            }
            x -= w;
        }
        self.cfg.gpu_choices.last().map(|(n, _)| *n).unwrap_or(1)
    }

    /// Build one job.
    fn generate_job(&self, id: JobId, arrival: SimTime, rng: &mut SimRng) -> JobSpec {
        let algorithm = self.pick_algorithm(rng);
        let profile = algorithm.profile();
        let n = self.pick_gpu_count(rng);
        let dag = profile.build_dag(n);

        let model_mb = AlgorithmProfile::sample(profile.model_mb, rng);
        let iter_gpu_secs = AlgorithmProfile::sample(profile.iter_gpu_secs, rng);
        let sizes = profile.partition_sizes(model_mb, n, rng);

        // Duration → iteration budget.
        let median_secs = self.cfg.duration_median_mins * 60.0 / self.cfg.time_factor;
        let duration_secs = rng
            .lognormal(median_secs.ln(), self.cfg.duration_sigma)
            .clamp(
                90.0 / self.cfg.time_factor,
                7.0 * 24.0 * 3600.0 / self.cfg.time_factor,
            );

        // Per-task compute: the whole model costs iter_gpu_secs per
        // iteration; each partition takes its proportional share
        // (compressed by time_factor).
        let task_computes: Vec<f64> = sizes
            .iter()
            .map(|s| (iter_gpu_secs * s / model_mb / self.cfg.time_factor).max(1e-4))
            .collect();
        let cp_secs = dag.critical_path(&task_computes);

        let comm_mb = rng.range_f64(50.0, 100.0);
        // Rough per-iteration time estimate (compute + one inter-server
        // hop on the critical path) for sizing the iteration budget.
        // The network is compressed along with compute (see
        // mlfs-sim's `compress_network`), so the hop shrinks too.
        let est_iter_secs = cp_secs + comm_mb / (1250.0 * self.cfg.time_factor);
        let max_iterations = ((duration_secs / est_iter_secs).round() as u64).clamp(20, 50_000);

        // Learning curve: converge to ~99% of achievable at a random
        // fraction of the iteration budget (k = 4.6 / i*).
        let sat_frac = rng.range_f64(0.4, 1.5);
        let k = 4.6 / (max_iterations as f64 * sat_frac);
        let l0 = rng.range_f64(1.0, 5.0);
        let floor = l0 * rng.range_f64(0.05, 0.30);
        let a_max = rng.range_f64(0.75, 0.99);
        let curve = LearningProfile::new(l0, floor, k, a_max);
        let required_accuracy = curve.achievable_accuracy() * rng.range_f64(0.85, 0.98);

        // Resource demands per task. Sustained NIC draw is capped: a
        // task cannot push more than a share of the link, and slower
        // effective iterations (the stretch is modelled in the
        // progress engine) bound the true average rate anyway.
        let iter_secs_for_bw = est_iter_secs.max(1e-3);
        // Caps scale with time compression, like the NIC itself
        // (see mlfs-sim's `compress_network`).
        let worker_bw_cap = 400.0 * self.cfg.time_factor;
        let ps_bw_cap = 600.0 * self.cfg.time_factor;
        let mut tasks: Vec<TaskSpec> = (0..n)
            .map(|i| {
                let frac = sizes[i] / model_mb;
                let out_links = dag.children(i).len().max(1) as f64;
                // gpu_share is *average* utilization: even a
                // partition sized for a dedicated GPU stalls on
                // communication, so it never saturates the device.
                // Capping at 0.85 keeps a dedicated task hostable
                // under h_r = 0.9 while letting two co-located tasks
                // overload a GPU (exercising migration).
                let gpu_share = (0.85 * frac * n as f64).clamp(0.2, 0.85);
                TaskSpec {
                    id: TaskId::new(id, i as u16),
                    partition_mb: sizes[i],
                    demand: ResourceVec::new(
                        gpu_share,
                        AlgorithmProfile::sample(profile.cpu_cores_per_task, rng),
                        AlgorithmProfile::sample(profile.activation_mem_gb, rng)
                            + sizes[i] / 1024.0,
                        (out_links * comm_mb / iter_secs_for_bw).min(worker_bw_cap),
                    ),
                    gpu_share,
                    compute: SimDuration::from_secs_f64(task_computes[i]),
                    is_param_server: false,
                }
            })
            .collect();

        let comm = if rng.chance(self.cfg.param_server_prob) {
            CommStructure::ParameterServer
        } else {
            CommStructure::AllReduce
        };
        if comm == CommStructure::ParameterServer {
            // The PS task: CPU/NIC heavy, no GPU.
            let fan_in = dag.sinks().len() as f64;
            tasks.push(TaskSpec {
                id: TaskId::new(id, n as u16),
                partition_mb: 0.0,
                demand: ResourceVec::new(
                    0.0,
                    rng.range_f64(1.0, 3.0),
                    model_mb / 1024.0 + 0.5,
                    (fan_in * comm_mb / iter_secs_for_bw).min(ps_bw_cap),
                ),
                gpu_share: 0.0,
                compute: SimDuration::from_secs_f64(0.05 * cp_secs.max(1e-3)),
                is_param_server: true,
            });
        }

        let previously_run = rng.chance(self.cfg.previously_run_prob);
        let true_runtime = SimDuration::from_secs_f64(est_iter_secs * max_iterations as f64);
        let predicted_runtime = self.predictor.predict(true_runtime, previously_run, rng);

        // Deadline: max(1.1 t_e, t_r) past arrival (§4.1); t_r is
        // compressed along with everything else.
        let (lo_h, hi_h) = self.cfg.deadline_slack_hours;
        let t_r =
            SimDuration::from_secs_f64(rng.range_f64(lo_h, hi_h) * 3600.0 / self.cfg.time_factor);
        let t_e = predicted_runtime.mul_f64(1.1);
        let deadline = arrival + if t_e > t_r { t_e } else { t_r };

        JobSpec {
            id,
            algorithm,
            arrival,
            deadline,
            required_accuracy,
            urgency: rng.range_u64(1, 11) as u8,
            max_iterations,
            tasks,
            dag,
            comm,
            comm_mb,
            model_mb,
            train_data_mb: rng.range_f64(100.0, 1000.0),
            curve,
            stop_policy: self.cfg.stop_policy,
            allow_demotion: true,
            predicted_runtime,
            previously_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Vec<JobSpec> {
        TraceGenerator::new(TraceConfig::paper_real(0.25, 4.0, 42)).generate()
    }

    #[test]
    fn generates_requested_count_sorted_by_arrival() {
        let jobs = small_trace();
        assert_eq!(jobs.len(), 155);
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Ids follow arrival order.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.max_iterations, y.max_iterations);
            assert_eq!(x.tasks.len(), y.tasks.len());
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = small_trace();
        let b = TraceGenerator::new(TraceConfig::paper_real(0.25, 4.0, 43)).generate();
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.arrival == y.arrival)
            .count();
        assert!(same < a.len() / 2);
    }

    #[test]
    fn job_invariants_hold() {
        for j in small_trace() {
            // GPU count ∈ paper set; worker count matches.
            assert!([1, 2, 4, 8, 16, 32].contains(&j.worker_count()));
            // Partition sizes sum to the model.
            let sum: f64 = (0..j.worker_count()).map(|i| j.tasks[i].partition_mb).sum();
            assert!((sum - j.model_mb).abs() < 1e-6);
            // Deadline after arrival; comm in [50,100]; data in [100,1000].
            assert!(j.deadline > j.arrival);
            assert!((50.0..=100.0).contains(&j.comm_mb));
            assert!((100.0..=1000.0).contains(&j.train_data_mb));
            assert!((1..=10).contains(&j.urgency));
            assert!(j.max_iterations >= 20);
            // Required accuracy is attainable.
            assert!(j.required_accuracy < j.curve.achievable_accuracy());
            // Demands are sane.
            for t in &j.tasks {
                assert!(t.demand.is_finite());
                assert!((0.0..=1.0).contains(&t.gpu_share));
                assert!(t.compute.as_millis() > 0 || t.is_param_server);
            }
            // SVM jobs have no dependency edges.
            if j.algorithm == MlAlgorithm::Svm {
                assert!(j.dag.edges().is_empty());
            }
            // PS jobs carry exactly one PS task, last.
            if j.comm == CommStructure::ParameterServer {
                assert!(j.has_param_server());
                assert_eq!(j.task_count(), j.worker_count() + 1);
            } else {
                assert!(!j.has_param_server());
            }
        }
    }

    #[test]
    fn arrivals_fit_in_compressed_span() {
        let cfg = TraceConfig::paper_real(0.25, 4.0, 1);
        let span = cfg.effective_span();
        let jobs = TraceGenerator::new(cfg).generate();
        for j in &jobs {
            assert!(j.arrival.since(SimTime::ZERO) < span);
        }
    }

    #[test]
    fn deadline_respects_paper_formula() {
        // deadline − arrival ≥ 1.1 × predicted runtime for every job.
        for j in small_trace() {
            let slack = j.deadline.since(j.arrival);
            assert!(slack.as_millis() >= j.predicted_runtime.mul_f64(1.1).as_millis() - 1);
        }
    }

    #[test]
    fn paper_sim_config_scales() {
        let cfg = TraceConfig::paper_sim(0.5, 0.01, 20.0, 7);
        assert_eq!(cfg.jobs, (117_325.0f64 * 0.5 * 0.01).round() as usize);
        let jobs = TraceGenerator::new(cfg).generate();
        assert!(!jobs.is_empty());
    }

    #[test]
    fn save_load_roundtrip() {
        let jobs = small_trace();
        let dir = std::env::temp_dir().join("mlfs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_trace(&jobs, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(jobs.len(), back.len());
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_duplicate_ids() {
        let mut jobs = small_trace();
        let dup = jobs[0].clone();
        jobs.push(dup);
        let dir = std::env::temp_dir().join("mlfs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.json");
        save_trace(&jobs, &path).unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn algorithm_mix_covers_all_five() {
        let jobs = TraceGenerator::new(TraceConfig::paper_real(1.0, 4.0, 3)).generate();
        for a in MlAlgorithm::ALL {
            assert!(
                jobs.iter().any(|j| j.algorithm == a),
                "no {} in 620-job trace",
                a.name()
            );
        }
    }
}
