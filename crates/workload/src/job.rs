//! Static job and task specifications.

use crate::algorithms::MlAlgorithm;
use crate::curves::LearningProfile;
use crate::dag::{CommStructure, Dag};
use cluster::{JobId, ResourceVec, TaskId};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// The user's iteration-stopping choice (§3.5):
///
/// * option i — run exactly the requested number of iterations;
/// * option ii — OptStop: stop when accuracy is (close to) its maximum;
/// * option iii — stop as soon as the required accuracy is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopPolicy {
    /// Run `max_iterations` iterations regardless of accuracy.
    MaxIterations,
    /// Stop at the near-maximum-accuracy iteration (OptStop, \[17\]).
    OptStop,
    /// Stop once the job's required accuracy is achieved.
    RequiredAccuracy,
}

impl StopPolicy {
    /// The next-more-aggressive option MLF-C may demote to under
    /// overload (users indicate whether the system may switch, §3.5).
    pub fn demoted(self) -> StopPolicy {
        match self {
            StopPolicy::MaxIterations => StopPolicy::OptStop,
            StopPolicy::OptStop | StopPolicy::RequiredAccuracy => StopPolicy::RequiredAccuracy,
        }
    }
}

/// One task: a model partition processed by one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task identity.
    pub id: TaskId,
    /// Parameter size of this partition, MB (the paper's `S_k`).
    pub partition_mb: f64,
    /// Resource demand while running.
    pub demand: ResourceVec,
    /// Fraction of one GPU consumed (lands on a single GPU).
    pub gpu_share: f64,
    /// Pure compute time for one iteration at full GPU speed.
    pub compute: SimDuration,
    /// True for the parameter-server task (receives highest priority
    /// in MLF-H, §3.3.1).
    pub is_param_server: bool,
}

/// A complete, immutable job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job identity.
    pub id: JobId,
    /// Which algorithm this job trains.
    pub algorithm: MlAlgorithm,
    /// Submission time.
    pub arrival: SimTime,
    /// Deadline (`d^r_J`); `max(1.1·t_e, t_r)` in the paper's setup.
    pub deadline: SimTime,
    /// Required final accuracy (`a^r_J`), from the trace's completion
    /// status.
    pub required_accuracy: f64,
    /// Urgency coefficient `L_J` ∈ [1, m] (§3.3.1; m = 10 in Fig. 6).
    pub urgency: u8,
    /// Maximum iterations (option i's iteration budget).
    pub max_iterations: u64,
    /// The tasks, indexed by `TaskId::idx`. If a parameter server is
    /// present it is the **last** entry and not part of the DAG.
    pub tasks: Vec<TaskSpec>,
    /// Dependency graph over the non-PS tasks.
    pub dag: Dag,
    /// Communication structure for parameter accumulation.
    pub comm: CommStructure,
    /// Data volume per DAG edge per iteration, MB (paper: U\[50,100\]).
    pub comm_mb: f64,
    /// Total model size, MB (the paper's `S_J`).
    pub model_mb: f64,
    /// Training data size, MB (paper: U\[100,1000\]).
    pub train_data_mb: f64,
    /// This job's learning curve.
    pub curve: LearningProfile,
    /// The user's stop policy choice.
    pub stop_policy: StopPolicy,
    /// Whether the user allows MLF-C to demote the stop policy under
    /// overload (§3.5).
    pub allow_demotion: bool,
    /// Predicted total runtime (Optimus-style, §3.1); used for task
    /// deadline decomposition and by baselines like Tiresias' Gittins
    /// mode.
    pub predicted_runtime: SimDuration,
    /// Whether the job ran before (predictor accuracy is higher).
    pub previously_run: bool,
}

impl JobSpec {
    /// Number of tasks including any parameter server.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of DAG (worker) tasks, excluding the parameter server.
    pub fn worker_count(&self) -> usize {
        self.dag.len()
    }

    /// True when the job has a dedicated parameter-server task.
    pub fn has_param_server(&self) -> bool {
        self.tasks
            .last()
            .map(|t| t.is_param_server)
            .unwrap_or(false)
    }

    /// Per-iteration compute-only critical path (no communication).
    pub fn compute_critical_path(&self) -> SimDuration {
        let weights: Vec<f64> = (0..self.dag.len())
            .map(|i| self.tasks[i].compute.as_secs_f64())
            .collect();
        SimDuration::from_secs_f64(self.dag.critical_path(&weights))
    }

    /// Total megabytes exchanged per iteration across DAG edges plus
    /// parameter accumulation (PS fan-in or all-reduce exchange).
    pub fn comm_mb_per_iteration(&self) -> f64 {
        let dag_edges = self.dag.edges().len() as f64;
        let sync = match self.comm {
            // Sinks send results to the PS.
            CommStructure::ParameterServer => self.dag.sinks().len() as f64,
            // Reducers exchange among themselves (ring: one send each).
            CommStructure::AllReduce => self.dag.sinks().len() as f64,
        };
        (dag_edges + sync) * self.comm_mb
    }

    /// Ideal (communication-free, uncontended) time for `n` iterations.
    pub fn ideal_runtime(&self, n: u64) -> SimDuration {
        self.compute_critical_path().mul_f64(n as f64)
    }

    /// Normalized partition size `S_k/S_J` of task `idx` (Eq. 2's
    /// spatial term).
    pub fn normalized_partition(&self, idx: usize) -> f64 {
        if self.model_mb <= 0.0 {
            return 0.0;
        }
        self.tasks[idx].partition_mb / self.model_mb
    }

    /// Task ids of all tasks.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().map(|t| t.id)
    }

    /// Decompose the job deadline into per-task deadlines, in
    /// proportion to the task's position along the DAG (tasks deeper
    /// in the graph get later deadlines). Mirrors the paper's "the
    /// deadline of each of its tasks can be calculated based on the
    /// job's deadline, dependency graph and historical task running
    /// time" (§3.3.1). The PS task, if any, shares the job deadline.
    pub fn task_deadline(&self, idx: usize) -> SimTime {
        if idx >= self.dag.len() {
            return self.deadline;
        }
        let heights = self.dag.height();
        let max_h = heights.iter().copied().max().unwrap_or(0) as f64;
        if max_h == 0.0 {
            return self.deadline;
        }
        // A task at height h (h edges above a sink) must finish its
        // share of the pipeline earlier; sinks get the full deadline.
        let frac = 1.0 - heights[idx] as f64 / (max_h + 1.0);
        let span = self.deadline.since(self.arrival);
        self.arrival + span.mul_f64(frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::MlAlgorithm;
    use cluster::JobId;

    /// Hand-build a small sequential 3-task job for spec tests.
    pub(crate) fn tiny_job() -> JobSpec {
        let id = JobId(1);
        let dag = Dag::sequential(3);
        let tasks = (0..3)
            .map(|i| TaskSpec {
                id: TaskId::new(id, i as u16),
                partition_mb: 50.0 + 25.0 * i as f64, // 50, 75, 100 → S_J = 225
                demand: ResourceVec::new(1.0, 2.0, 8.0, 50.0),
                gpu_share: 1.0,
                compute: SimDuration::from_secs(i + 1), // 1s, 2s, 3s
                is_param_server: false,
            })
            .collect();
        JobSpec {
            id,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::from_secs(100),
            deadline: SimTime::from_secs(1100),
            required_accuracy: 0.7,
            urgency: 5,
            max_iterations: 100,
            tasks,
            dag,
            comm: CommStructure::ParameterServer,
            comm_mb: 60.0,
            model_mb: 225.0,
            train_data_mb: 500.0,
            curve: LearningProfile::new(2.0, 0.2, 0.05, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_secs(600),
            previously_run: true,
        }
    }

    #[test]
    fn critical_path_of_chain_is_sum() {
        let j = tiny_job();
        assert_eq!(j.compute_critical_path(), SimDuration::from_secs(6));
        assert_eq!(j.ideal_runtime(10), SimDuration::from_secs(60));
    }

    #[test]
    fn comm_per_iteration_counts_edges_and_sync() {
        let j = tiny_job();
        // 2 DAG edges + 1 sink→PS = 3 links × 60 MB.
        assert!((j.comm_mb_per_iteration() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_partition_sums_to_one() {
        let j = tiny_job();
        let total: f64 = (0..3).map(|i| j.normalized_partition(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(j.normalized_partition(2) > j.normalized_partition(0));
    }

    #[test]
    fn task_deadlines_increase_along_the_chain() {
        let j = tiny_job();
        let d0 = j.task_deadline(0);
        let d1 = j.task_deadline(1);
        let d2 = j.task_deadline(2);
        assert!(d0 < d1 && d1 < d2);
        assert!(d2 <= j.deadline);
        assert!(d0 > j.arrival);
    }

    #[test]
    fn stop_policy_demotion_is_monotone() {
        assert_eq!(StopPolicy::MaxIterations.demoted(), StopPolicy::OptStop);
        assert_eq!(StopPolicy::OptStop.demoted(), StopPolicy::RequiredAccuracy);
        assert_eq!(
            StopPolicy::RequiredAccuracy.demoted(),
            StopPolicy::RequiredAccuracy
        );
    }

    #[test]
    fn no_param_server_in_tiny_job() {
        let j = tiny_job();
        assert!(!j.has_param_server());
        assert_eq!(j.worker_count(), 3);
        assert_eq!(j.task_count(), 3);
    }
}
