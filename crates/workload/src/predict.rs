//! Runtime prediction (the paper's §3.1 assumption).
//!
//! "We use the approach in \[42\] (Optimus) for the running time
//! prediction. It achieves 89% prediction accuracy for the jobs that
//! ran previously and 70% prediction accuracy for the jobs that didn't
//! run previously."
//!
//! We reproduce the *assumption* rather than Optimus' fitting
//! machinery: the predictor returns the true runtime perturbed by
//! log-normal multiplicative noise calibrated so that mean relative
//! error is ≈ 11% for previously-run jobs and ≈ 30% for new ones.

use simcore::{SimDuration, SimRng};

/// Optimus-style noisy-oracle runtime predictor.
#[derive(Debug, Clone)]
pub struct RuntimePredictor {
    /// Relative error std-dev for previously-run jobs.
    pub sigma_seen: f64,
    /// Relative error std-dev for first-time jobs.
    pub sigma_unseen: f64,
}

impl Default for RuntimePredictor {
    fn default() -> Self {
        // E|N(0,σ)| = σ·√(2/π); σ = err / 0.7979. Targets: 11% / 30%.
        RuntimePredictor {
            sigma_seen: 0.11 / 0.7979,
            sigma_unseen: 0.30 / 0.7979,
        }
    }
}

impl RuntimePredictor {
    /// Predict the runtime of a job whose true runtime is
    /// `true_runtime`. Deterministic given the RNG state.
    pub fn predict(
        &self,
        true_runtime: SimDuration,
        previously_run: bool,
        rng: &mut SimRng,
    ) -> SimDuration {
        let sigma = if previously_run {
            self.sigma_seen
        } else {
            self.sigma_unseen
        };
        // Multiplicative noise, clamped so a prediction is never less
        // than 20% of the truth (Optimus refits online; wild negatives
        // don't survive).
        let factor = (1.0 + rng.normal_ms(0.0, sigma)).max(0.2);
        true_runtime.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rel_error(previously_run: bool) -> f64 {
        let p = RuntimePredictor::default();
        let mut rng = SimRng::new(99);
        let truth = SimDuration::from_secs(1000);
        let n = 20_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let pred = p.predict(truth, previously_run, &mut rng);
            acc += (pred.as_secs_f64() - truth.as_secs_f64()).abs() / truth.as_secs_f64();
        }
        acc / n as f64
    }

    #[test]
    fn seen_jobs_err_near_11_percent() {
        let e = mean_rel_error(true);
        assert!((e - 0.11).abs() < 0.02, "mean rel err {e}");
    }

    #[test]
    fn unseen_jobs_err_near_30_percent() {
        let e = mean_rel_error(false);
        assert!((e - 0.30).abs() < 0.04, "mean rel err {e}");
    }

    #[test]
    fn predictions_are_positive() {
        let p = RuntimePredictor::default();
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let pred = p.predict(SimDuration::from_secs(100), false, &mut rng);
            assert!(pred.as_millis() > 0);
            assert!(pred.as_secs_f64() >= 20.0); // floor at 20%
        }
    }
}
