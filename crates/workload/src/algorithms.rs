//! Profiles of the five evaluation workloads (§4.1).
//!
//! The paper trains AlexNet, ResNet, MLP, LSTM and SVM (PyTorch on
//! AWS). We replace real training with parametric profiles that
//! reproduce the properties the schedulers can observe: model size,
//! batch size ("1MB for AlexNet and ResNet, and 1.5KB for LSTM, MLP
//! and SVM"), partitioning style, per-iteration compute, and
//! loss-curve convergence speed. Ranges rather than constants give
//! per-job variety, as in a real trace.

use crate::dag::Dag;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// The five ML algorithms in the paper's mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlAlgorithm {
    /// CNN; sequential model-parallel partitioning.
    AlexNet,
    /// CNN; per-layer (grid) model-parallel partitioning.
    ResNet,
    /// Fully-connected; sequential partitioning.
    Mlp,
    /// Recurrent; per-layer partitioning.
    Lstm,
    /// "SVM did not run in model parallelism because it is hard to
    /// partition its network model" — data parallelism only.
    Svm,
}

impl MlAlgorithm {
    /// All algorithms, in a fixed order.
    pub const ALL: [MlAlgorithm; 5] = [
        MlAlgorithm::AlexNet,
        MlAlgorithm::ResNet,
        MlAlgorithm::Mlp,
        MlAlgorithm::Lstm,
        MlAlgorithm::Svm,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MlAlgorithm::AlexNet => "AlexNet",
            MlAlgorithm::ResNet => "ResNet",
            MlAlgorithm::Mlp => "MLP",
            MlAlgorithm::Lstm => "LSTM",
            MlAlgorithm::Svm => "SVM",
        }
    }

    /// The static profile for this algorithm.
    pub fn profile(self) -> AlgorithmProfile {
        match self {
            MlAlgorithm::AlexNet => AlgorithmProfile {
                algorithm: self,
                batch_mb: 1.0,
                model_mb: (180.0, 260.0),
                iter_gpu_secs: (0.8, 2.5),
                decay_k: (0.002, 0.01),
                partition: PartitionStyle::Sequential,
                cpu_cores_per_task: (1.0, 3.0),
                activation_mem_gb: (2.0, 6.0),
            },
            MlAlgorithm::ResNet => AlgorithmProfile {
                algorithm: self,
                batch_mb: 1.0,
                model_mb: (90.0, 180.0),
                iter_gpu_secs: (1.5, 4.0),
                decay_k: (0.001, 0.006),
                partition: PartitionStyle::Layered,
                cpu_cores_per_task: (1.0, 3.0),
                activation_mem_gb: (3.0, 8.0),
            },
            MlAlgorithm::Mlp => AlgorithmProfile {
                algorithm: self,
                batch_mb: 0.0015,
                model_mb: (10.0, 60.0),
                iter_gpu_secs: (0.1, 0.6),
                decay_k: (0.005, 0.03),
                partition: PartitionStyle::Sequential,
                cpu_cores_per_task: (0.5, 2.0),
                activation_mem_gb: (1.0, 3.0),
            },
            MlAlgorithm::Lstm => AlgorithmProfile {
                algorithm: self,
                batch_mb: 0.0015,
                model_mb: (40.0, 200.0),
                iter_gpu_secs: (0.5, 2.0),
                decay_k: (0.002, 0.012),
                partition: PartitionStyle::Layered,
                cpu_cores_per_task: (1.0, 2.5),
                activation_mem_gb: (2.0, 5.0),
            },
            MlAlgorithm::Svm => AlgorithmProfile {
                algorithm: self,
                batch_mb: 0.0015,
                model_mb: (1.0, 10.0),
                iter_gpu_secs: (0.05, 0.3),
                decay_k: (0.01, 0.05),
                partition: PartitionStyle::DataParallel,
                cpu_cores_per_task: (0.5, 2.0),
                activation_mem_gb: (0.5, 2.0),
            },
        }
    }

    /// True when the model can be partitioned for model parallelism.
    pub fn supports_model_parallelism(self) -> bool {
        !matches!(self, MlAlgorithm::Svm)
    }
}

/// How a model is split into partitions (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionStyle {
    /// A chain of partitions (MLP, AlexNet).
    Sequential,
    /// A grid: each layer split into several parts (ResNet, LSTM).
    Layered,
    /// Independent replicas, no inter-partition edges (SVM).
    DataParallel,
}

/// Static per-algorithm parameters. Tuple fields are `(lo, hi)` ranges
/// sampled per job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmProfile {
    /// Which algorithm this profiles.
    pub algorithm: MlAlgorithm,
    /// Mini-batch size in MB (paper §4.1).
    pub batch_mb: f64,
    /// Total model parameter size range, MB.
    pub model_mb: (f64, f64),
    /// GPU-seconds of compute per iteration for the *whole* model on
    /// one reference GPU.
    pub iter_gpu_secs: (f64, f64),
    /// Loss-curve decay rate range (see `curves`).
    pub decay_k: (f64, f64),
    /// Partitioning style.
    pub partition: PartitionStyle,
    /// CPU cores per task range.
    pub cpu_cores_per_task: (f64, f64),
    /// Activation / working-set memory per task range, GB.
    pub activation_mem_gb: (f64, f64),
}

impl AlgorithmProfile {
    /// Build the partition dependency graph for `n` partitions.
    pub fn build_dag(&self, n: usize) -> Dag {
        assert!(n >= 1);
        match self.partition {
            PartitionStyle::Sequential => Dag::sequential(n),
            PartitionStyle::Layered => {
                // Roughly square grid: width ≈ √n.
                let width = ((n as f64).sqrt().round() as usize).max(1);
                Dag::layered(n, width)
            }
            PartitionStyle::DataParallel => Dag::independent(n),
        }
    }

    /// Sample a value from a `(lo, hi)` range.
    pub fn sample(range: (f64, f64), rng: &mut SimRng) -> f64 {
        rng.range_f64(range.0, range.1)
    }

    /// Split the model into `n` partition sizes (MB) that sum to
    /// `model_mb`. Partitions are uneven (±50%) to exercise the
    /// paper's partition-size feature `S_k/S_J`.
    pub fn partition_sizes(&self, model_mb: f64, n: usize, rng: &mut SimRng) -> Vec<f64> {
        let weights: Vec<f64> = (0..n).map(|_| rng.range_f64(0.5, 1.5)).collect();
        let total: f64 = weights.iter().sum();
        weights.iter().map(|w| model_mb * w / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_has_a_profile() {
        for a in MlAlgorithm::ALL {
            let p = a.profile();
            assert_eq!(p.algorithm, a);
            assert!(p.model_mb.0 < p.model_mb.1);
            assert!(p.iter_gpu_secs.0 < p.iter_gpu_secs.1);
            assert!(p.decay_k.0 < p.decay_k.1);
            assert!(p.batch_mb > 0.0);
        }
    }

    #[test]
    fn paper_batch_sizes() {
        assert_eq!(MlAlgorithm::AlexNet.profile().batch_mb, 1.0);
        assert_eq!(MlAlgorithm::ResNet.profile().batch_mb, 1.0);
        assert!((MlAlgorithm::Lstm.profile().batch_mb - 0.0015).abs() < 1e-9);
    }

    #[test]
    fn svm_is_data_parallel_only() {
        assert!(!MlAlgorithm::Svm.supports_model_parallelism());
        assert_eq!(
            MlAlgorithm::Svm.profile().partition,
            PartitionStyle::DataParallel
        );
        let d = MlAlgorithm::Svm.profile().build_dag(8);
        assert!(d.edges().is_empty());
    }

    #[test]
    fn dag_shapes_match_partition_style() {
        let seq = MlAlgorithm::AlexNet.profile().build_dag(4);
        assert_eq!(seq.sources().len(), 1);
        assert_eq!(seq.sinks().len(), 1);
        let grid = MlAlgorithm::ResNet.profile().build_dag(8);
        // width = round(sqrt(8)) = 3 → first layer has 3 tasks.
        assert_eq!(grid.sources().len(), 3);
        let single = MlAlgorithm::Lstm.profile().build_dag(1);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn partition_sizes_sum_to_model() {
        let mut rng = SimRng::new(1);
        let p = MlAlgorithm::ResNet.profile();
        for n in [1usize, 2, 7, 32] {
            let sizes = p.partition_sizes(120.0, n, &mut rng);
            assert_eq!(sizes.len(), n);
            let sum: f64 = sizes.iter().sum();
            assert!((sum - 120.0).abs() < 1e-9);
            assert!(sizes.iter().all(|s| *s > 0.0));
        }
    }
}
