//! Generational job arena with struct-of-arrays hot columns.
//!
//! At paper scale the simulator tracks 117k+ jobs (10× runs: over a
//! million). The seed engine kept them in a `BTreeMap<JobId, JobState>`
//! — every lookup hops pointer-chased tree nodes and every scan walks
//! allocator-scattered values. [`JobArena`] replaces it with:
//!
//! * **dense slots** — `JobState`s live in one contiguous `Vec`,
//!   reused through a free list, so full scans are linear memory walks;
//! * **generational handles** — [`JobSlot`] carries the slot's
//!   generation; a handle kept across a remove/reinsert of the slot
//!   goes stale instead of silently reading the new occupant (the
//!   classic ABA hazard of index reuse);
//! * **SoA hot columns** — the spec-derived fields the engine's
//!   calendars and the schedulers' gang-feasibility checks read in
//!   tight loops (arrival, deadline, urgency, task count, the largest
//!   single-task GPU share) are mirrored into parallel arrays indexed
//!   by slot, so those loops touch a few cache lines instead of whole
//!   `JobState`s.
//!
//! Addressing stays [`JobId`]-based for the scheduler-facing API (a
//! sorted id→slot index gives `O(log n)` lookups and ascending-id
//! iteration, matching the `BTreeMap` the arena replaced bit-for-bit
//! in iteration order); [`JobSlot`] handles are for engine-internal
//! hot paths that want to skip the id lookup.
//!
//! The mirrored columns are **spec-derived and immutable**: nothing in
//! the workspace mutates a `JobSpec` after submission, so the columns
//! cannot go stale even though `get_mut` hands out `&mut JobState`.

use crate::state::JobState;
use cluster::JobId;
use simcore::SimTime;

/// A generational handle to an arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobSlot {
    /// Slot index into the arena's column arrays.
    pub index: u32,
    /// Generation the slot had when this handle was issued.
    pub generation: u32,
}

/// Spec-derived hot fields of one job, copied out of the SoA columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobHotRow {
    /// Submission time.
    pub arrival: SimTime,
    /// Job deadline.
    pub deadline: SimTime,
    /// Urgency coefficient `L_J`.
    pub urgency: u8,
    /// Number of tasks including any parameter server.
    pub task_count: u16,
    /// Largest single-task GPU share — a lower bound on what any
    /// server must have free for the job's gang to be placeable.
    pub max_task_gpu_share: f64,
}

/// Generational SoA arena of live job state, keyed by [`JobId`].
#[derive(Debug, Default, Clone)]
pub struct JobArena {
    /// Slot storage; `None` marks a free slot.
    slots: Vec<Option<JobState>>,
    /// Per-slot generation, bumped on every removal.
    gens: Vec<u32>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// `(id, slot)` pairs sorted ascending by id: the lookup index and
    /// the iteration order.
    by_id: Vec<(JobId, u32)>,
    // --- SoA hot columns, indexed by slot ---
    col_arrival: Vec<SimTime>,
    col_deadline: Vec<SimTime>,
    col_urgency: Vec<u8>,
    col_task_count: Vec<u16>,
    col_max_gpu: Vec<f64>,
}

impl JobArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `n` jobs before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        JobArena {
            slots: Vec::with_capacity(n),
            gens: Vec::with_capacity(n),
            free: Vec::new(),
            by_id: Vec::with_capacity(n),
            col_arrival: Vec::with_capacity(n),
            col_deadline: Vec::with_capacity(n),
            col_urgency: Vec::with_capacity(n),
            col_task_count: Vec::with_capacity(n),
            col_max_gpu: Vec::with_capacity(n),
        }
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no jobs are stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    fn find(&self, id: &JobId) -> Result<usize, usize> {
        self.by_id.binary_search_by(|e| e.0.cmp(id))
    }

    fn fill_columns(&mut self, slot: usize, state: &JobState) {
        self.col_arrival[slot] = state.spec.arrival;
        self.col_deadline[slot] = state.spec.deadline;
        self.col_urgency[slot] = state.spec.urgency;
        self.col_task_count[slot] = state.spec.task_count() as u16;
        self.col_max_gpu[slot] = state
            .spec
            .tasks
            .iter()
            .map(|t| t.gpu_share)
            .fold(0.0, f64::max);
    }

    /// Insert `state` under `id`, returning the slot handle. Replaces
    /// (and generation-bumps) any existing entry with the same id, so
    /// stale handles to the old entry go invalid.
    pub fn insert(&mut self, id: JobId, state: JobState) -> JobSlot {
        debug_assert_eq!(id, state.spec.id, "arena key must match spec id");
        match self.find(&id) {
            Ok(pos) => {
                let slot = self.by_id[pos].1 as usize;
                self.gens[slot] = self.gens[slot].wrapping_add(1);
                self.fill_columns(slot, &state);
                self.slots[slot] = Some(state);
                JobSlot {
                    index: slot as u32,
                    generation: self.gens[slot],
                }
            }
            Err(pos) => {
                let slot = match self.free.pop() {
                    Some(s) => s as usize,
                    None => {
                        self.slots.push(None);
                        self.gens.push(0);
                        self.col_arrival.push(SimTime::ZERO);
                        self.col_deadline.push(SimTime::ZERO);
                        self.col_urgency.push(0);
                        self.col_task_count.push(0);
                        self.col_max_gpu.push(0.0);
                        self.slots.len() - 1
                    }
                };
                self.fill_columns(slot, &state);
                self.slots[slot] = Some(state);
                self.by_id.insert(pos, (id, slot as u32));
                JobSlot {
                    index: slot as u32,
                    generation: self.gens[slot],
                }
            }
        }
    }

    /// Remove and return the job stored under `id`. The slot's
    /// generation is bumped, invalidating outstanding handles, and the
    /// slot is recycled by later inserts.
    pub fn remove(&mut self, id: &JobId) -> Option<JobState> {
        let pos = self.find(id).ok()?;
        let slot = self.by_id.remove(pos).1 as usize;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.slots[slot].take()
    }

    /// True when a job is stored under `id`.
    pub fn contains_key(&self, id: &JobId) -> bool {
        self.find(id).is_ok()
    }

    /// The job stored under `id`.
    pub fn get(&self, id: &JobId) -> Option<&JobState> {
        let pos = self.find(id).ok()?;
        self.slots[self.by_id[pos].1 as usize].as_ref()
    }

    /// Mutable access to the job stored under `id`.
    pub fn get_mut(&mut self, id: &JobId) -> Option<&mut JobState> {
        let pos = self.find(id).ok()?;
        self.slots[self.by_id[pos].1 as usize].as_mut()
    }

    /// The current slot handle for `id`, if present.
    pub fn slot_of(&self, id: &JobId) -> Option<JobSlot> {
        let pos = self.find(id).ok()?;
        let slot = self.by_id[pos].1;
        Some(JobSlot {
            index: slot,
            generation: self.gens[slot as usize],
        })
    }

    /// Resolve a generational handle. Returns `None` when the handle
    /// is stale (the slot was removed, and possibly reused, since the
    /// handle was issued) — never the new occupant.
    pub fn get_slot(&self, handle: JobSlot) -> Option<&JobState> {
        let slot = handle.index as usize;
        if self.gens.get(slot) != Some(&handle.generation) {
            return None;
        }
        self.slots.get(slot)?.as_ref()
    }

    /// Hot-row column read for `id`: the spec-derived fields without
    /// touching the full `JobState`.
    pub fn hot(&self, id: &JobId) -> Option<JobHotRow> {
        let pos = self.find(id).ok()?;
        Some(self.hot_at(self.by_id[pos].1 as usize))
    }

    fn hot_at(&self, slot: usize) -> JobHotRow {
        JobHotRow {
            arrival: self.col_arrival[slot],
            deadline: self.col_deadline[slot],
            urgency: self.col_urgency[slot],
            task_count: self.col_task_count[slot],
            max_task_gpu_share: self.col_max_gpu[slot],
        }
    }

    /// Largest single-task GPU share of job `id` (0.0 if absent) — the
    /// gang-feasibility lower bound, straight from the SoA column.
    pub fn max_task_gpu_share(&self, id: &JobId) -> f64 {
        match self.find(id) {
            Ok(pos) => self.col_max_gpu[self.by_id[pos].1 as usize],
            Err(_) => 0.0,
        }
    }

    /// Job ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = JobId> + '_ {
        self.by_id.iter().map(|&(id, _)| id)
    }

    /// `(id, job)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobState)> + '_ {
        self.by_id
            .iter()
            .filter_map(move |&(id, s)| self.slots[s as usize].as_ref().map(|j| (id, j)))
    }

    /// `(id, hot row)` pairs in ascending id order — a pure column
    /// scan for calendar construction.
    pub fn iter_hot(&self) -> impl Iterator<Item = (JobId, JobHotRow)> + '_ {
        self.by_id
            .iter()
            .map(move |&(id, s)| (id, self.hot_at(s as usize)))
    }

    /// Jobs in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &JobState> + '_ {
        self.iter().map(|(_, j)| j)
    }

    /// Unfinished jobs in ascending id order.
    pub fn iter_active(&self) -> impl Iterator<Item = (JobId, &JobState)> + '_ {
        self.iter().filter(|(_, j)| !j.is_finished())
    }

    /// `(id, &mut job)` pairs in ascending id order.
    ///
    /// Implemented by collecting per-slot `&mut` borrows and replaying
    /// them in id order; each slot index appears at most once in
    /// `by_id`, so every `take()` yields a distinct borrow. Costs one
    /// `O(slots)` allocation — fine for the naive reference engine and
    /// coarse per-round passes, which is all that uses it; event-mode
    /// hot loops go through `get_mut` on their working sets instead.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (JobId, &mut JobState)> + '_ {
        let mut refs: Vec<Option<&mut JobState>> =
            self.slots.iter_mut().map(|s| s.as_mut()).collect();
        self.by_id
            .iter()
            .filter_map(move |&(id, s)| refs.get_mut(s as usize)?.take().map(|j| (id, j)))
    }

    /// Jobs, mutably, in ascending id order (see [`JobArena::iter_mut`]).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut JobState> + '_ {
        self.iter_mut().map(|(_, j)| j)
    }
}

impl FromIterator<(JobId, JobState)> for JobArena {
    fn from_iter<T: IntoIterator<Item = (JobId, JobState)>>(iter: T) -> Self {
        let mut a = JobArena::new();
        for (id, j) in iter {
            a.insert(id, j);
        }
        a
    }
}

impl<const N: usize> From<[(JobId, JobState); N]> for JobArena {
    fn from(entries: [(JobId, JobState); N]) -> Self {
        entries.into_iter().collect()
    }
}

impl std::ops::Index<&JobId> for JobArena {
    type Output = JobState;
    fn index(&self, id: &JobId) -> &JobState {
        match self.get(id) {
            Some(j) => j,
            // lint:allow(deep-panic-path) reason="Index sugar contracts to panic on a foreign JobId like any map; scheduler paths only index ids the arena minted, and fallible lookups use .get() (the over-approximate call graph also aliases this with SimRng::index)"
            None => panic!("no job {id:?} in arena"),
        }
    }
}

impl std::ops::Index<JobId> for JobArena {
    type Output = JobState;
    fn index(&self, id: JobId) -> &JobState {
        &self[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::tests::spec_with_id;
    use simcore::SimDuration;

    fn job(id: u32) -> (JobId, JobState) {
        (JobId(id), JobState::new(spec_with_id(id), SimTime::ZERO))
    }

    #[test]
    fn insert_get_iterates_in_id_order() {
        let mut a = JobArena::new();
        for id in [5u32, 1, 9, 3] {
            let (jid, st) = job(id);
            a.insert(jid, st);
        }
        assert_eq!(a.len(), 4);
        let ids: Vec<u32> = a.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        let ids: Vec<u32> = a.keys().map(|id| id.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert!(a.contains_key(&JobId(5)));
        assert!(!a.contains_key(&JobId(2)));
        assert_eq!(a[&JobId(9)].spec.id, JobId(9));
        assert_eq!(a[JobId(9)].spec.id, JobId(9));
    }

    #[test]
    fn iter_mut_visits_each_job_once_in_order() {
        let mut a: JobArena = [job(4), job(2), job(8)].into();
        let mut seen = Vec::new();
        for (id, j) in a.iter_mut() {
            j.advance(1.0);
            seen.push(id.0);
        }
        assert_eq!(seen, vec![2, 4, 8]);
        assert!(a.values().all(|j| j.iterations == 1.0));
    }

    #[test]
    fn hot_columns_mirror_spec() {
        let mut a = JobArena::new();
        let (id, st) = job(7);
        let arrival = st.spec.arrival;
        let deadline = st.spec.deadline;
        let max_gpu = st
            .spec
            .tasks
            .iter()
            .map(|t| t.gpu_share)
            .fold(0.0, f64::max);
        a.insert(id, st);
        let hot = a.hot(&id).expect("present");
        assert_eq!(hot.arrival, arrival);
        assert_eq!(hot.deadline, deadline);
        assert_eq!(hot.task_count, 2);
        assert_eq!(hot.max_task_gpu_share, max_gpu);
        assert_eq!(a.max_task_gpu_share(&id), max_gpu);
        assert_eq!(a.max_task_gpu_share(&JobId(999)), 0.0);
    }

    #[test]
    fn remove_recycles_slot_and_invalidates_handles() {
        let mut a = JobArena::new();
        let (id1, st1) = job(1);
        let h1 = a.insert(id1, st1);
        assert!(a.get_slot(h1).is_some());
        let removed = a.remove(&id1).expect("was present");
        assert_eq!(removed.spec.id, id1);
        assert!(a.get_slot(h1).is_none());
        assert!(a.is_empty());

        // Reinsert a different job: the slot is recycled...
        let (id2, st2) = job(2);
        let h2 = a.insert(id2, st2);
        assert_eq!(h2.index, h1.index);
        assert_ne!(h2.generation, h1.generation);
        // ...and the stale handle must NOT resolve to the new occupant.
        assert!(a.get_slot(h1).is_none());
        assert_eq!(a.get_slot(h2).map(|j| j.spec.id), Some(id2));
        assert_eq!(a.slot_of(&id2), Some(h2));
    }

    #[test]
    fn reinsert_same_id_bumps_generation() {
        let mut a = JobArena::new();
        let (id, st) = job(3);
        let h_old = a.insert(id, st.clone());
        let h_new = a.insert(id, st);
        assert_eq!(a.len(), 1);
        assert_eq!(h_new.index, h_old.index);
        assert!(a.get_slot(h_old).is_none());
        assert!(a.get_slot(h_new).is_some());
    }

    #[test]
    fn iter_active_skips_finished() {
        let mut a: JobArena = [job(1), job(2), job(3)].into();
        a.get_mut(&JobId(2))
            .expect("present")
            .finish(SimTime::from_secs(1), crate::state::StopReason::OptStop);
        let ids: Vec<u32> = a.iter_active().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        // Waiting accounting stays reachable through values_mut.
        for j in a.values_mut() {
            j.waiting += SimDuration::from_secs(1);
        }
        assert!(a.values().all(|j| j.waiting == SimDuration::from_secs(1)));
    }
}
