//! # learncurve — learning-curve extrapolation and early stopping
//!
//! Implements the functional core of Domhan et al. \[17\], which the
//! paper relies on for two assumptions (§3.1, §3.5):
//!
//! 1. *Accuracy prediction*: "the accuracy at a certain iteration is
//!    predicted based on the number of iterations executed and the
//!    accuracy change for each executed epoch", with ≈ 90% accuracy.
//! 2. *OptStop*: "first use a weighted probabilistic learning curve
//!    model to predict the job's accuracy at the specified maximum
//!    iteration. If the predicted accuracy is less than an accuracy
//!    threshold, the training stops when the prediction confidence is
//!    higher than a threshold. Otherwise, the training continues and
//!    stops when the achieved accuracy reaches the accuracy
//!    threshold."
//!
//! The implementation fits an ensemble of saturating parametric curve
//! families to the observed `(iteration, accuracy)` prefix by
//! deterministic grid search with local refinement, weights families
//! by goodness-of-fit, and reports a confidence derived from the
//! ensemble spread and residual error.

//! # Example
//!
//! Extrapolate a training curve from its observed prefix:
//!
//! ```
//! use learncurve::EnsemblePredictor;
//!
//! // Observed accuracy for the first 60 iterations of a job that
//! // saturates near 0.9.
//! let history: Vec<(f64, f64)> = (1..=60)
//!     .map(|i| (i as f64, 0.9 * (1.0 - (-0.03 * i as f64).exp())))
//!     .collect();
//! let predictor = EnsemblePredictor::fit(&history).unwrap();
//! let at_500 = predictor.predict(500.0);
//! assert!((at_500.accuracy - 0.9).abs() < 0.05);
//! assert!(at_500.confidence > 0.5);
//! ```

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ensemble;
pub mod families;
pub mod optstop;

pub use ensemble::{EnsemblePredictor, Prediction};
pub use families::{CurveFamily, FittedCurve};
pub use optstop::{OptStopDecision, OptStopRule};
