//! Weighted ensemble prediction ("weighted probabilistic learning
//! curve model", §3.5).
//!
//! All families are fitted to the observed prefix; each is weighted by
//! goodness-of-fit (inverse-MSE softmax). The prediction at a target
//! iteration is the weighted mean of family extrapolations, and the
//! confidence combines the (inverse) ensemble spread with the residual
//! fit error — when the families agree and fit well, confidence is
//! high.

use crate::families::{fit_family, CurveFamily, FittedCurve};
use serde::{Deserialize, Serialize};

/// A point prediction with confidence ∈ [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted accuracy, clamped to [0, 1].
    pub accuracy: f64,
    /// Confidence in the prediction (1 = the families agree perfectly
    /// and fit the data perfectly).
    pub confidence: f64,
}

/// Fitted ensemble over the observed learning-curve prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsemblePredictor {
    fits: Vec<FittedCurve>,
    weights: Vec<f64>,
    residual_rmse: f64,
}

impl EnsemblePredictor {
    /// Minimum observations for a meaningful fit; below this, use
    /// [`EnsemblePredictor::fit`]'s `None` return to keep training.
    pub const MIN_POINTS: usize = 5;

    /// Fit the ensemble to `(iteration, accuracy)` observations.
    /// Returns `None` when there are too few points to extrapolate.
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < Self::MIN_POINTS {
            return None;
        }
        let fits: Vec<FittedCurve> = CurveFamily::ALL
            .iter()
            .map(|&f| fit_family(f, points))
            .collect();
        // Inverse-MSE weights with a floor to avoid division blow-ups.
        let raw: Vec<f64> = fits.iter().map(|f| 1.0 / (f.mse + 1e-9)).collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let residual_rmse = fits
            .iter()
            .zip(&weights)
            .map(|(f, w)| w * f.mse)
            .sum::<f64>()
            .sqrt();
        Some(EnsemblePredictor {
            fits,
            weights,
            residual_rmse,
        })
    }

    /// Predict accuracy at `iteration`.
    pub fn predict(&self, iteration: f64) -> Prediction {
        let mean: f64 = self
            .fits
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| w * f.predict(iteration))
            .sum();
        let var: f64 = self
            .fits
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| {
                let d = f.predict(iteration) - mean;
                w * d * d
            })
            .sum();
        let spread = var.sqrt();
        // Confidence decays with ensemble disagreement and residual
        // training error. The 20× factors map "1% spread" to a ~0.8
        // confidence hit, calibrated by the tests below.
        let confidence = (1.0 / (1.0 + 20.0 * spread + 20.0 * self.residual_rmse)).clamp(0.0, 1.0);
        Prediction {
            accuracy: mean.clamp(0.0, 1.0),
            confidence,
        }
    }

    /// Weighted asymptotic ("maximum achievable") accuracy.
    pub fn predicted_max(&self) -> f64 {
        self.fits
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| w * f.family.asymptote(f.params).clamp(0.0, 1.0))
            .sum()
    }

    /// The individual fits (for inspection / testing).
    pub fn fits(&self) -> &[FittedCurve] {
        &self.fits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_points(a: f64, k: f64, n: usize) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|i| (i as f64, a * (1.0 - (-k * i as f64).exp())))
            .collect()
    }

    #[test]
    fn too_few_points_returns_none() {
        assert!(EnsemblePredictor::fit(&[(1.0, 0.1), (2.0, 0.2)]).is_none());
    }

    #[test]
    fn clean_curve_predicts_with_high_confidence() {
        // Observe 40% of training, extrapolate to the end.
        let pts = curve_points(0.85, 0.01, 200);
        let e = EnsemblePredictor::fit(&pts[..80]).unwrap();
        let p = e.predict(500.0);
        let truth = 0.85 * (1.0 - (-0.01f64 * 500.0).exp());
        assert!(
            (p.accuracy - truth).abs() < 0.05,
            "pred {} truth {truth}",
            p.accuracy
        );
        assert!(p.confidence > 0.5, "confidence {}", p.confidence);
    }

    #[test]
    fn prediction_accuracy_matches_paper_90_percent() {
        // §3.1: the method "achieves around 90% accuracy". Measure
        // relative error over a spread of synthetic jobs observing the
        // first third of training.
        let mut errs = Vec::new();
        for (idx, &(a, k, n)) in [
            (0.9, 0.02, 300),
            (0.8, 0.005, 600),
            (0.7, 0.05, 150),
            (0.95, 0.01, 400),
            (0.6, 0.03, 200),
        ]
        .iter()
        .enumerate()
        {
            let _ = idx;
            let pts = curve_points(a, k, n);
            let cut = n / 3;
            let e = EnsemblePredictor::fit(&pts[..cut]).unwrap();
            let p = e.predict(n as f64);
            let truth = pts[n - 1].1;
            errs.push((p.accuracy - truth).abs() / truth);
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.10, "mean rel err {mean_err} ({errs:?})");
    }

    #[test]
    fn noisy_curve_lowers_confidence() {
        // Same curve, but with deterministic "noise" (alternating
        // perturbation) — confidence should drop vs the clean fit.
        let clean = curve_points(0.8, 0.02, 60);
        let noisy: Vec<(f64, f64)> = clean
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                (
                    x,
                    (y + if i % 2 == 0 { 0.05 } else { -0.05 }).clamp(0.0, 1.0),
                )
            })
            .collect();
        let ce = EnsemblePredictor::fit(&clean).unwrap().predict(200.0);
        let ne = EnsemblePredictor::fit(&noisy).unwrap().predict(200.0);
        assert!(ne.confidence < ce.confidence);
    }

    #[test]
    fn predicted_max_is_plausible() {
        let pts = curve_points(0.9, 0.03, 150);
        let e = EnsemblePredictor::fit(&pts).unwrap();
        let m = e.predicted_max();
        assert!((0.8..=1.0).contains(&m), "max {m}");
    }

    #[test]
    fn weights_sum_to_one_and_prefer_better_fits() {
        let pts = curve_points(0.85, 0.02, 100);
        let e = EnsemblePredictor::fit(&pts).unwrap();
        let wsum: f64 = e.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        // The lowest-MSE family carries the largest weight.
        let best_fit = e
            .fits
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.mse.partial_cmp(&b.1.mse).unwrap())
            .unwrap()
            .0;
        let best_weight = e
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best_fit, best_weight);
    }
}
