//! Parametric saturating curve families and their fitting.
//!
//! Each family maps an iteration count to a predicted accuracy and is
//! parameterised by `(a, b, c)` with family-specific meaning. All
//! families saturate: accuracy approaches `a` as iterations grow,
//! matching the diminishing-returns shape of ML training curves.
//! Fitting is deterministic: a coarse grid over parameters followed by
//! rounds of coordinate-wise golden-section-style refinement.

use serde::{Deserialize, Serialize};

/// The curve families in the ensemble (a practical subset of Domhan et
/// al.'s eleven).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveFamily {
    /// `a − b·(i+1)^(−c)` — power-law decay toward `a` ("pow3").
    Pow3,
    /// `a·(1 − exp(−c·i))` — exponential saturation.
    ExpSat,
    /// `a·i^c / (b^c + i^c)` — Hill / sigmoidal saturation.
    Hill,
    /// `a − b / ln(i + e)` — logarithmic approach ("log power" kin).
    LogShift,
}

impl CurveFamily {
    /// All families.
    pub const ALL: [CurveFamily; 4] = [
        CurveFamily::Pow3,
        CurveFamily::ExpSat,
        CurveFamily::Hill,
        CurveFamily::LogShift,
    ];

    /// Evaluate the family at iteration `i` with parameters `(a,b,c)`.
    pub fn eval(self, p: [f64; 3], i: f64) -> f64 {
        let i = i.max(0.0);
        let [a, b, c] = p;
        match self {
            CurveFamily::Pow3 => a - b * (i + 1.0).powf(-c),
            CurveFamily::ExpSat => a * (1.0 - (-c * i).exp()),
            CurveFamily::Hill => {
                if i <= 0.0 {
                    0.0
                } else {
                    let ic = i.powf(c);
                    a * ic / (b.powf(c) + ic)
                }
            }
            CurveFamily::LogShift => a - b / (i + std::f64::consts::E).ln(),
        }
    }

    /// Asymptotic value as `i → ∞`.
    pub fn asymptote(self, p: [f64; 3]) -> f64 {
        match self {
            CurveFamily::Pow3 | CurveFamily::Hill | CurveFamily::ExpSat => p[0],
            CurveFamily::LogShift => p[0],
        }
    }
}

/// A family with fitted parameters and its fit quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCurve {
    /// Which family.
    pub family: CurveFamily,
    /// Fitted `(a, b, c)`.
    pub params: [f64; 3],
    /// Mean squared error on the training points.
    pub mse: f64,
}

impl FittedCurve {
    /// Predicted accuracy at iteration `i`, clamped to [0, 1].
    pub fn predict(&self, i: f64) -> f64 {
        self.family.eval(self.params, i).clamp(0.0, 1.0)
    }
}

fn mse(family: CurveFamily, p: [f64; 3], pts: &[(f64, f64)]) -> f64 {
    let n = pts.len().max(1) as f64;
    pts.iter()
        .map(|&(i, y)| {
            let e = family.eval(p, i) - y;
            e * e
        })
        .sum::<f64>()
        / n
}

/// Solve `y ≈ a·u(i) + b·v(i)` for `(a, b)` by 2×2 normal equations.
/// Returns `None` when the system is singular.
fn lsq2(pts: &[(f64, f64)], u: impl Fn(f64) -> f64, v: impl Fn(f64) -> f64) -> Option<(f64, f64)> {
    let (mut suu, mut suv, mut svv, mut suy, mut svy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(i, y) in pts {
        let (ui, vi) = (u(i), v(i));
        suu += ui * ui;
        suv += ui * vi;
        svv += vi * vi;
        suy += ui * y;
        svy += vi * y;
    }
    let det = suu * svv - suv * suv;
    if det.abs() < 1e-12 {
        return None;
    }
    Some(((svv * suy - suv * svy) / det, (suu * svy - suv * suy) / det))
}

/// Solve `y ≈ a·u(i)` for `a`.
fn lsq1(pts: &[(f64, f64)], u: impl Fn(f64) -> f64) -> f64 {
    let (mut suu, mut suy) = (0.0, 0.0);
    for &(i, y) in pts {
        let ui = u(i);
        suu += ui * ui;
        suy += ui * y;
    }
    if suu < 1e-12 {
        0.0
    } else {
        suy / suu
    }
}

/// Fit the linear parameters of `family` given the nonlinear ones,
/// returning the full parameter vector (with the asymptote clamped to
/// ≤ 1 — accuracy cannot exceed 100%).
fn fit_linear(family: CurveFamily, nonlin: [f64; 2], pts: &[(f64, f64)]) -> [f64; 3] {
    match family {
        CurveFamily::Pow3 => {
            let c = nonlin[0];
            let (a, b) = lsq2(pts, |_| 1.0, |i| -((i + 1.0).powf(-c))).unwrap_or((0.5, 0.0));
            [a.min(1.0), b, c]
        }
        CurveFamily::ExpSat => {
            let c = nonlin[0];
            let a = lsq1(pts, |i| 1.0 - (-c * i).exp());
            [a.min(1.0), 0.0, c]
        }
        CurveFamily::Hill => {
            let (b, c) = (nonlin[0], nonlin[1]);
            let a = lsq1(pts, |i| {
                if i <= 0.0 {
                    0.0
                } else {
                    let ic = i.powf(c);
                    ic / (b.powf(c) + ic)
                }
            });
            [a.min(1.0), b, c]
        }
        CurveFamily::LogShift => {
            let (a, b) =
                lsq2(pts, |_| 1.0, |i| -1.0 / (i + std::f64::consts::E).ln()).unwrap_or((0.5, 0.0));
            [a.min(1.0), b, 0.0]
        }
    }
}

/// Fit one family to observed `(iteration, accuracy)` points.
///
/// Strategy: every family is linear in its scale parameters given its
/// nonlinear shape parameter(s), so we grid-search the shape
/// parameter(s) (log-spaced, relative to the observed iteration span),
/// solve the scale parameters in closed form, then refine the shape
/// multiplicatively. Deterministic.
pub fn fit_family(family: CurveFamily, pts: &[(f64, f64)]) -> FittedCurve {
    assert!(!pts.is_empty(), "cannot fit an empty curve");
    let span = pts.last().map_or(1.0, |p| p.0).max(1.0);

    // Candidate nonlinear parameters per family.
    let log_grid = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
        (0..n)
            .map(|k| lo * (hi / lo).powf(k as f64 / (n - 1).max(1) as f64))
            .collect()
    };
    let candidates: Vec<[f64; 2]> = match family {
        // Pow3 exponent c.
        CurveFamily::Pow3 => log_grid(0.05, 4.0, 16)
            .into_iter()
            .map(|c| [c, 0.0])
            .collect(),
        // ExpSat rate c, scaled to the observation span.
        CurveFamily::ExpSat => log_grid(0.1 / span, 50.0 / span, 24)
            .into_iter()
            .map(|c| [c, 0.0])
            .collect(),
        // Hill midpoint b (relative to span) × exponent c.
        CurveFamily::Hill => {
            let mut out = Vec::new();
            for b in log_grid(0.05 * span, 20.0 * span, 10) {
                for c in [0.6, 1.0, 1.5, 2.5] {
                    out.push([b, c]);
                }
            }
            out
        }
        // LogShift has no nonlinear parameter.
        CurveFamily::LogShift => vec![[0.0, 0.0]],
    };

    let mut best = fit_linear(family, candidates[0], pts);
    let mut best_mse = mse(family, best, pts);
    for cand in candidates.into_iter().skip(1) {
        let p = fit_linear(family, cand, pts);
        let e = mse(family, p, pts);
        if e < best_mse {
            best_mse = e;
            best = p;
        }
    }

    // Multiplicative refinement of the nonlinear parameter(s), with
    // the linear ones re-solved at every probe.
    let nonlin_dims: &[usize] = match family {
        CurveFamily::Pow3 | CurveFamily::ExpSat => &[2],
        CurveFamily::Hill => &[1, 2],
        CurveFamily::LogShift => &[],
    };
    let mut step = 0.4;
    for _ in 0..30 {
        let mut improved = false;
        for &dim in nonlin_dims {
            for mult in [1.0 + step, 1.0 / (1.0 + step)] {
                let probe = (best[dim] * mult).clamp(1e-9, 1e9);
                let cand_nl = match family {
                    CurveFamily::Hill => {
                        if dim == 1 {
                            [probe, best[2]]
                        } else {
                            [best[1], probe]
                        }
                    }
                    _ => [probe, 0.0],
                };
                let p = fit_linear(family, cand_nl, pts);
                let e = mse(family, p, pts);
                if e < best_mse {
                    best_mse = e;
                    best = p;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-4 {
                break;
            }
        }
    }

    FittedCurve {
        family,
        params: best,
        mse: best_mse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expsat_points(a: f64, k: f64, n: usize) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|i| (i as f64, a * (1.0 - (-k * i as f64).exp())))
            .collect()
    }

    #[test]
    fn expsat_recovers_its_own_curve() {
        let pts = expsat_points(0.9, 0.02, 60);
        let fit = fit_family(CurveFamily::ExpSat, &pts);
        assert!(fit.mse < 1e-5, "mse {}", fit.mse);
        // Extrapolation near truth at i = 400.
        let truth = 0.9 * (1.0 - (-0.02f64 * 400.0).exp());
        assert!((fit.predict(400.0) - truth).abs() < 0.05);
    }

    #[test]
    fn every_family_fits_a_saturating_curve_reasonably() {
        let pts = expsat_points(0.8, 0.01, 100);
        for f in CurveFamily::ALL {
            let fit = fit_family(f, &pts);
            assert!(fit.mse < 0.01, "{f:?} mse {}", fit.mse);
            // Predictions stay in [0,1].
            for i in [0.0, 1.0, 50.0, 1e4] {
                let p = fit.predict(i);
                assert!((0.0..=1.0).contains(&p), "{f:?} at {i}: {p}");
            }
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let pts = expsat_points(0.7, 0.05, 30);
        let a = fit_family(CurveFamily::Hill, &pts);
        let b = fit_family(CurveFamily::Hill, &pts);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn asymptote_is_param_a() {
        for f in CurveFamily::ALL {
            assert_eq!(f.asymptote([0.83, 1.0, 1.0]), 0.83);
        }
    }

    #[test]
    #[should_panic(expected = "empty curve")]
    fn empty_fit_panics() {
        fit_family(CurveFamily::Pow3, &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Fitting any saturating exponential prefix keeps MSE low,
        /// stays deterministic, and predicts within [0, 1].
        #[test]
        fn fits_are_sane_on_exponential_data(
            a in 0.4f64..0.99,
            k in 0.003f64..0.2,
            n in 10usize..120,
        ) {
            let pts: Vec<(f64, f64)> = (1..=n)
                .map(|i| (i as f64, a * (1.0 - (-k * i as f64).exp())))
                .collect();
            for fam in CurveFamily::ALL {
                let f1 = fit_family(fam, &pts);
                let f2 = fit_family(fam, &pts);
                prop_assert_eq!(f1.params, f2.params);
                prop_assert!(f1.mse.is_finite() && f1.mse >= 0.0);
                for i in [0.0, 1.0, n as f64, 10.0 * n as f64] {
                    let p = f1.predict(i);
                    prop_assert!((0.0..=1.0).contains(&p), "{fam:?}@{i}: {p}");
                }
            }
            // The matching family must fit nearly perfectly.
            let exp = fit_family(CurveFamily::ExpSat, &pts);
            prop_assert!(exp.mse < 1e-6, "ExpSat mse {}", exp.mse);
        }
    }

    #[test]
    fn hill_recovers_its_own_curve() {
        let pts: Vec<(f64, f64)> = (1..=80)
            .map(|i| {
                let i = i as f64;
                (i, 0.85 * i.powf(1.3) / (40.0f64.powf(1.3) + i.powf(1.3)))
            })
            .collect();
        let fit = fit_family(CurveFamily::Hill, &pts);
        assert!(fit.mse < 1e-6, "mse {}", fit.mse);
    }

    #[test]
    fn pow3_recovers_its_own_curve() {
        let pts: Vec<(f64, f64)> = (1..=80)
            .map(|i| {
                let i = i as f64;
                (i, 0.9 - 0.6 * (i + 1.0).powf(-0.5))
            })
            .collect();
        let fit = fit_family(CurveFamily::Pow3, &pts);
        assert!(fit.mse < 1e-6, "mse {}", fit.mse);
        // Asymptote close to the true 0.9.
        assert!((fit.params[0] - 0.9).abs() < 0.05, "{:?}", fit.params);
    }

    #[test]
    fn eval_handles_edge_iterations() {
        for f in CurveFamily::ALL {
            let v0 = f.eval([0.9, 0.5, 0.5], 0.0);
            assert!(v0.is_finite());
            let vbig = f.eval([0.9, 0.5, 0.5], 1e9);
            assert!(vbig.is_finite());
            // Saturation: the huge-iteration value is near the asymptote.
            assert!((vbig - f.asymptote([0.9, 0.5, 0.5])).abs() < 0.05, "{f:?}");
        }
    }
}
