//! The OptStop early-stopping rule (§3.5).
//!
//! Faithful to the paper's description: "when a job is running, we
//! first use a weighted probabilistic learning curve model to predict
//! the job's accuracy at the specified maximum iteration. If the
//! predicted accuracy is less than an accuracy threshold, the training
//! stops when the prediction confidence is higher than a threshold.
//! Otherwise, the training continues and stops when the achieved
//! accuracy reaches the accuracy threshold."
//!
//! Two thresholds exist depending on the user's option (§3.5):
//! * option ii (OptStop proper) — the threshold is the job's
//!   *predicted maximum* accuracy minus a small margin: stop at (near)
//!   peak accuracy, avoiding wasted iterations;
//! * option iii — the threshold is the job's *required* accuracy.

use crate::ensemble::EnsemblePredictor;
use serde::{Deserialize, Serialize};

/// The rule's verdict for a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptStopDecision {
    /// Keep training.
    Continue,
    /// The accuracy threshold has been achieved — stop now.
    StopReached,
    /// The threshold is predicted unreachable with high confidence —
    /// stop now and save the resources.
    StopUnreachable,
}

/// Configuration of the stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptStopRule {
    /// Fraction of the predicted maximum accuracy that counts as
    /// "reached the maximum" for option ii (e.g. 0.99).
    pub peak_margin: f64,
    /// Confidence needed before an "unreachable" prediction may stop
    /// the job.
    pub confidence_threshold: f64,
    /// Observations needed before the rule activates at all.
    pub min_observations: usize,
}

impl Default for OptStopRule {
    fn default() -> Self {
        OptStopRule {
            peak_margin: 0.99,
            confidence_threshold: 0.55,
            min_observations: 10,
        }
    }
}

impl OptStopRule {
    /// Option ii: stop at (near) maximum accuracy.
    ///
    /// `history` is the per-iteration accuracy so far; `max_iterations`
    /// is the job's iteration budget; `current_accuracy` the live value.
    pub fn decide_peak(
        &self,
        history: &[(f64, f64)],
        max_iterations: f64,
        current_accuracy: f64,
    ) -> OptStopDecision {
        if history.len() < self.min_observations {
            return OptStopDecision::Continue;
        }
        let Some(e) = EnsemblePredictor::fit(history) else {
            return OptStopDecision::Continue;
        };
        let at_budget = e.predict(max_iterations);
        let target = at_budget.accuracy * self.peak_margin;
        if current_accuracy >= target {
            OptStopDecision::StopReached
        } else {
            OptStopDecision::Continue
        }
    }

    /// Option iii / overload mode: stop when `required` accuracy is
    /// achieved, or when it is confidently predicted unreachable by
    /// the iteration budget.
    pub fn decide_required(
        &self,
        history: &[(f64, f64)],
        max_iterations: f64,
        current_accuracy: f64,
        required: f64,
    ) -> OptStopDecision {
        if current_accuracy >= required {
            return OptStopDecision::StopReached;
        }
        if history.len() < self.min_observations {
            return OptStopDecision::Continue;
        }
        let Some(e) = EnsemblePredictor::fit(history) else {
            return OptStopDecision::Continue;
        };
        let p = e.predict(max_iterations);
        if p.accuracy < required && p.confidence > self.confidence_threshold {
            OptStopDecision::StopUnreachable
        } else {
            OptStopDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(a: f64, k: f64, upto: usize) -> Vec<(f64, f64)> {
        (1..=upto)
            .map(|i| (i as f64, a * (1.0 - (-k * i as f64).exp())))
            .collect()
    }

    #[test]
    fn continues_with_short_history() {
        let rule = OptStopRule::default();
        let h = history(0.9, 0.05, 3);
        assert_eq!(rule.decide_peak(&h, 1000.0, 0.1), OptStopDecision::Continue);
        assert_eq!(
            rule.decide_required(&h, 1000.0, 0.1, 0.8),
            OptStopDecision::Continue
        );
    }

    #[test]
    fn peak_rule_stops_after_saturation() {
        let rule = OptStopRule::default();
        // Fast-converging job: by iteration 200 of a 10000 budget it
        // is flat at ~0.9.
        let h = history(0.9, 0.05, 200);
        let current = h.last().unwrap().1;
        assert_eq!(
            rule.decide_peak(&h, 10_000.0, current),
            OptStopDecision::StopReached
        );
    }

    #[test]
    fn peak_rule_continues_while_growing() {
        let rule = OptStopRule::default();
        // Slow curve observed early: far below its eventual value.
        let h = history(0.9, 0.001, 60);
        let current = h.last().unwrap().1;
        assert_eq!(
            rule.decide_peak(&h, 5_000.0, current),
            OptStopDecision::Continue
        );
    }

    #[test]
    fn required_rule_stops_on_achievement() {
        let rule = OptStopRule::default();
        let h = history(0.9, 0.05, 100);
        let current = h.last().unwrap().1; // ≈ 0.9
        assert_eq!(
            rule.decide_required(&h, 1000.0, current, 0.8),
            OptStopDecision::StopReached
        );
    }

    #[test]
    fn required_rule_detects_unreachable_targets() {
        let rule = OptStopRule::default();
        // Job saturating at 0.6 but required 0.95: after enough
        // observations the ensemble confidently predicts < 0.95.
        let h = history(0.6, 0.03, 300);
        let current = h.last().unwrap().1;
        assert_eq!(
            rule.decide_required(&h, 10_000.0, current, 0.95),
            OptStopDecision::StopUnreachable
        );
    }

    #[test]
    fn required_rule_keeps_training_toward_reachable_target() {
        let rule = OptStopRule::default();
        // Saturates at 0.9; required 0.8; observed early (accuracy
        // still ~0.45): should continue, not stop.
        let h = history(0.9, 0.002, 300);
        let current = h.last().unwrap().1;
        assert!(current < 0.8);
        assert_eq!(
            rule.decide_required(&h, 50_000.0, current, 0.8),
            OptStopDecision::Continue
        );
    }
}
