//! # rl — policy-gradient agent with imitation bootstrapping
//!
//! Implements the learning machinery of MLF-RL (§3.4): a deep policy
//! network trained first by *imitation* of the heuristic scheduler
//! ("MLFS initially runs MLF-H for a certain time period and uses the
//! data to train MLF-RL"), then fine-tuned with policy gradients \[51\]
//! on the multi-objective reward of Eq. 7, discounted by `η`.
//!
//! Scheduling actions have a *variable* candidate set (one entry per
//! underloaded server plus "stay in queue"), so the policy is a
//! *scoring* network: a shared MLP maps each candidate's feature
//! vector to a scalar logit, and the action distribution is the
//! softmax over candidate logits. REINFORCE gradients flow through
//! every candidate's forward pass.
//!
//! Candidates travel as flat row-major [`FeatureBatch`]es: one batched
//! forward scores the whole candidate set against a reusable
//! [`Workspace`], so inference and training are allocation-free on the
//! steady-state hot path while staying bit-identical to the
//! per-candidate formulation.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dataset;
pub mod drift;
pub mod policy;
pub mod trainer;

pub use dataset::{
    decode_feats, encode_feats, warm_start, Dataset, DatasetBuilder, DatasetRecord, PretrainConfig,
    PretrainReport,
};
pub use drift::{DriftConfig, DriftMonitor};
pub use nn::{FeatureBatch, Workspace};
pub use policy::ScoringPolicy;
pub use trainer::{Convergence, ReinforceTrainer, Step, TrainerConfig, TrainerState};
