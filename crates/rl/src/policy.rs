//! Candidate-scoring policy network.

use nn::{softmax, Activation, Mlp};
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// A policy that scores candidate feature vectors with a shared MLP
/// and draws actions from the softmax over the scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoringPolicy {
    net: Mlp,
    input_dim: usize,
}

impl ScoringPolicy {
    /// New policy for `input_dim`-dimensional candidate features with
    /// the given hidden layer sizes.
    pub fn new(input_dim: usize, hidden: &[usize], rng: &mut SimRng) -> Self {
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        ScoringPolicy {
            net: Mlp::new(&sizes, Activation::Relu, rng),
            input_dim,
        }
    }

    /// Feature dimensionality this policy expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The underlying network (for the trainer).
    pub(crate) fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable network access (for the trainer).
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Logit per candidate.
    pub fn scores(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        candidates
            .iter()
            .map(|c| {
                debug_assert_eq!(c.len(), self.input_dim);
                self.net.forward(c)[0]
            })
            .collect()
    }

    /// Action probabilities (softmax over candidate scores).
    pub fn probabilities(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        softmax(&self.scores(candidates))
    }

    /// Sample an action index from the policy distribution.
    ///
    /// # Panics
    /// Panics on an empty candidate set — callers must always offer at
    /// least one option (e.g. "stay in queue").
    pub fn sample(&self, candidates: &[Vec<f64>], rng: &mut SimRng) -> usize {
        assert!(!candidates.is_empty(), "no candidates to sample from");
        let probs = self.probabilities(candidates);
        let mut x = rng.f64();
        for (i, p) in probs.iter().enumerate() {
            if x < *p {
                return i;
            }
            x -= p;
        }
        probs.len() - 1
    }

    /// Highest-scoring action (inference mode).
    pub fn greedy(&self, candidates: &[Vec<f64>]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to choose from");
        let scores = self.scores(candidates);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f64 * 0.1).collect())
            .collect()
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let mut rng = SimRng::new(1);
        let p = ScoringPolicy::new(4, &[8], &mut rng);
        let probs = p.probabilities(&cands(5, 4));
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn greedy_picks_the_max_probability() {
        let mut rng = SimRng::new(2);
        let p = ScoringPolicy::new(3, &[6], &mut rng);
        let c = cands(7, 3);
        let probs = p.probabilities(&c);
        let g = p.greedy(&c);
        let max = probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((probs[g] - max).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = SimRng::new(3);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        let c = cands(3, 2);
        let probs = p.probabilities(&c);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[p.sample(&c, &mut rng)] += 1;
        }
        for i in 0..3 {
            let emp = counts[i] as f64 / n as f64;
            assert!(
                (emp - probs[i]).abs() < 0.015,
                "cand {i}: {emp} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn single_candidate_is_always_chosen() {
        let mut rng = SimRng::new(4);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        let c = cands(1, 2);
        assert_eq!(p.greedy(&c), 0);
        assert_eq!(p.sample(&c, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        let mut rng = SimRng::new(5);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        p.greedy(&[]);
    }
}
