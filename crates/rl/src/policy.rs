//! Candidate-scoring policy network.

use nn::{softmax_in_place, Activation, FeatureBatch, Mlp, TransposedWeights, Workspace};
use serde::{Deserialize, Serialize};
use simcore::SimRng;
use std::cell::RefCell;

thread_local! {
    /// Shared forward-pass workspace + score buffer so `sample` /
    /// `greedy` / `scores_into` are allocation-free after warm-up.
    /// Thread-local (not per-policy) because `ScoringPolicy` must stay
    /// `Clone + Serialize` and parallel sweeps run one scheduler per
    /// thread.
    static INFER_SCRATCH: RefCell<(Workspace, Vec<f64>)> =
        RefCell::new((Workspace::new(), Vec::new()));
}

/// A policy that scores candidate feature vectors with a shared MLP
/// and draws actions from the softmax over the scores.
///
/// Candidates are passed as a flat row-major [`FeatureBatch`]; one
/// batched GEMM-style forward computes every candidate's logit (the
/// scores are bit-identical to per-candidate `Mlp::forward` calls —
/// see `nn::Mlp::forward_batch`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoringPolicy {
    net: Mlp,
    input_dim: usize,
    /// Transposed-weight cache for the vectorised inference kernel.
    /// All weight mutations go through [`ScoringPolicy::net_mut`],
    /// which invalidates it, so scoring refreshes lazily — at most
    /// once per training update, amortised to zero across the many
    /// decisions in between.
    tw: TwCache,
}

/// Interior-mutable wrapper around the transposed-weight cache —
/// scoring takes `&self`, so the lazy refresh needs a `RefCell`.
/// Serialises as `null` and deserialises to a fresh (invalid) cache:
/// the contents are derived state, rebuilt on first use.
#[derive(Debug, Clone, Default)]
struct TwCache(RefCell<TransposedWeights>);

impl serde::Serialize for TwCache {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for TwCache {
    fn deserialize_value(_: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TwCache::default())
    }
}

impl ScoringPolicy {
    /// New policy for `input_dim`-dimensional candidate features with
    /// the given hidden layer sizes.
    pub fn new(input_dim: usize, hidden: &[usize], rng: &mut SimRng) -> Self {
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        ScoringPolicy {
            net: Mlp::new(&sizes, Activation::Relu, rng),
            input_dim,
            tw: TwCache::default(),
        }
    }

    /// Feature dimensionality this policy expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The underlying network (for the trainer).
    pub(crate) fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable network access (for the trainer). Invalidates the
    /// transposed-weight cache — callers are assumed to mutate.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        self.tw.0.get_mut().invalidate();
        &mut self.net
    }

    /// Batched forward through the cached vectorised kernel,
    /// refreshing the transposed weights if a trainer update
    /// invalidated them.
    fn forward_cached<'w>(&self, candidates: &FeatureBatch, ws: &'w mut Workspace) -> &'w [f64] {
        let mut tw = self.tw.0.borrow_mut();
        if !tw.is_valid() {
            self.net.refresh_transposed(&mut tw);
        }
        self.net.forward_batch_cached(candidates, ws, &tw)
    }

    /// Logit per candidate, written into `out` (cleared first) — the
    /// zero-allocation scoring primitive.
    pub fn scores_into(&self, candidates: &FeatureBatch, out: &mut Vec<f64>) {
        debug_assert_eq!(candidates.dim(), self.input_dim);
        INFER_SCRATCH.with(|s| {
            let (ws, _) = &mut *s.borrow_mut();
            let logits = self.forward_cached(candidates, ws);
            out.clear();
            out.extend_from_slice(logits);
        });
    }

    /// Logit per candidate (allocating convenience).
    pub fn scores(&self, candidates: &FeatureBatch) -> Vec<f64> {
        let mut out = Vec::with_capacity(candidates.rows());
        self.scores_into(candidates, &mut out);
        out
    }

    /// Action probabilities (softmax over candidate scores).
    pub fn probabilities(&self, candidates: &FeatureBatch) -> Vec<f64> {
        let mut p = self.scores(candidates);
        softmax_in_place(&mut p);
        p
    }

    /// Sample an action index from the policy distribution.
    /// Allocation-free after warm-up.
    ///
    /// # Panics
    /// Panics on an empty candidate set — callers must always offer at
    /// least one option (e.g. "stay in queue").
    pub fn sample(&self, candidates: &FeatureBatch, rng: &mut SimRng) -> usize {
        assert!(!candidates.is_empty(), "no candidates to sample from");
        INFER_SCRATCH.with(|s| {
            let (ws, probs) = &mut *s.borrow_mut();
            let logits = self.forward_cached(candidates, ws);
            probs.clear();
            probs.extend_from_slice(logits);
            softmax_in_place(probs);
            let mut x = rng.f64();
            for (i, p) in probs.iter().enumerate() {
                if x < *p {
                    return i;
                }
                x -= p;
            }
            probs.len() - 1
        })
    }

    /// Highest-scoring action (inference mode). Allocation-free after
    /// warm-up.
    pub fn greedy(&self, candidates: &FeatureBatch) -> usize {
        assert!(!candidates.is_empty(), "no candidates to choose from");
        INFER_SCRATCH.with(|s| {
            let (ws, _) = &mut *s.borrow_mut();
            let scores = self.forward_cached(candidates, ws);
            scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: usize, dim: usize) -> FeatureBatch {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f64 * 0.1).collect())
            .collect();
        FeatureBatch::from_rows(dim, &rows)
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let mut rng = SimRng::new(1);
        let p = ScoringPolicy::new(4, &[8], &mut rng);
        let probs = p.probabilities(&cands(5, 4));
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn batched_scores_match_per_candidate_forward() {
        // The decision-identity invariant: the batched scoring path
        // must reproduce the per-candidate `Mlp::forward` logits
        // exactly, so greedy/sampled choices (and hence whole
        // scheduling runs) are unchanged by the batching.
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let dim = 1 + (seed as usize % 7);
            let n = 1 + (seed as usize % 9);
            let p = ScoringPolicy::new(dim, &[8, 4], &mut rng);
            let mut batch = FeatureBatch::new(dim);
            for _ in 0..n {
                let row: Vec<f64> = (0..dim).map(|_| rng.range_f64(-1.0, 1.0)).collect();
                batch.push(&row);
            }
            let batched = p.scores(&batch);
            for (i, &b) in batched.iter().enumerate() {
                let reference = p.net().forward(batch.row(i))[0];
                assert_eq!(b, reference, "seed {seed} candidate {i}");
            }
        }
    }

    #[test]
    fn sample_and_greedy_match_per_candidate_reference() {
        // Replays the pre-batching implementation (per-candidate
        // forward + softmax + the same inverse-CDF walk) and checks
        // both action-selection modes agree draw for draw.
        let mut rng = SimRng::new(17);
        let p = ScoringPolicy::new(3, &[6], &mut rng);
        for round in 0..50u64 {
            let mut data_rng = SimRng::new(1000 + round);
            let n = 1 + (round as usize % 6);
            let mut batch = FeatureBatch::new(3);
            for _ in 0..n {
                let row: Vec<f64> = (0..3).map(|_| data_rng.range_f64(-1.0, 1.0)).collect();
                batch.push(&row);
            }
            let reference_scores: Vec<f64> =
                (0..n).map(|i| p.net().forward(batch.row(i))[0]).collect();
            let reference_probs = nn::softmax(&reference_scores);
            let mut rng_a = SimRng::new(round);
            let mut rng_b = SimRng::new(round);
            let sampled = p.sample(&batch, &mut rng_a);
            let reference_sampled = {
                let mut x = rng_b.f64();
                let mut pick = reference_probs.len() - 1;
                for (i, pr) in reference_probs.iter().enumerate() {
                    if x < *pr {
                        pick = i;
                        break;
                    }
                    x -= pr;
                }
                pick
            };
            assert_eq!(sampled, reference_sampled, "round {round}");
            let reference_greedy = reference_scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(p.greedy(&batch), reference_greedy, "round {round}");
        }
    }

    #[test]
    fn weight_updates_invalidate_the_transpose_cache() {
        let mut rng = SimRng::new(6);
        let mut p = ScoringPolicy::new(3, &[8], &mut rng);
        let c = cands(4, 3);
        let before = p.scores(&c); // warms the cache
                                   // Mutate the weights the way the trainer does (via net_mut).
        let g = p.net().zero_grads();
        p.net_mut().visit_params_mut(&g, |params, _| {
            for v in params.iter_mut() {
                *v += 0.1;
            }
        });
        let after = p.scores(&c);
        assert_ne!(before, after, "scores must track the new weights");
        // And the refreshed cache must agree with the direct forward.
        for (i, &a) in after.iter().enumerate() {
            assert_eq!(a, p.net().forward(c.row(i))[0]);
        }
    }

    #[test]
    fn greedy_picks_the_max_probability() {
        let mut rng = SimRng::new(2);
        let p = ScoringPolicy::new(3, &[6], &mut rng);
        let c = cands(7, 3);
        let probs = p.probabilities(&c);
        let g = p.greedy(&c);
        let max = probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((probs[g] - max).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = SimRng::new(3);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        let c = cands(3, 2);
        let probs = p.probabilities(&c);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[p.sample(&c, &mut rng)] += 1;
        }
        for i in 0..3 {
            let emp = counts[i] as f64 / n as f64;
            assert!(
                (emp - probs[i]).abs() < 0.015,
                "cand {i}: {emp} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn single_candidate_is_always_chosen() {
        let mut rng = SimRng::new(4);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        let c = cands(1, 2);
        assert_eq!(p.greedy(&c), 0);
        assert_eq!(p.sample(&c, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        let mut rng = SimRng::new(5);
        let p = ScoringPolicy::new(2, &[4], &mut rng);
        p.greedy(&FeatureBatch::new(2));
    }
}
