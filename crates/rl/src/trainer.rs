//! REINFORCE-with-baseline training and imitation pre-training.

use crate::policy::ScoringPolicy;
use nn::{softmax_in_place, Adam, FeatureBatch, Workspace};
use serde::{Deserialize, Serialize};

/// One recorded decision: the candidate features offered and the index
/// chosen (by MLF-H during imitation, or by the policy itself during
/// RL fine-tuning).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step {
    /// Feature batch, one row per candidate.
    pub candidates: FeatureBatch,
    /// Index of the chosen candidate.
    pub action: usize,
}

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Adam learning rate.
    pub lr: f64,
    /// Reward discount `η` (paper default 0.95; "a larger η enables
    /// the RL agent to consider more weights on the future rewards").
    pub eta: f64,
    /// EMA factor for the reward baseline.
    pub baseline_decay: f64,
    /// Entropy regularisation coefficient (keeps exploration alive
    /// during fine-tuning).
    pub entropy_coef: f64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            lr: 1e-2,
            eta: 0.95,
            baseline_decay: 0.95,
            entropy_coef: 1e-3,
        }
    }
}

/// Convergence detector: tracks an EMA of the per-episode return and
/// declares convergence when its relative change stays small for a
/// window of episodes ("only after the RL model is well trained (i.e.,
/// converged), MLFS switches from MLF-H to MLF-RL", §3.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Convergence {
    ema: Option<f64>,
    stable_for: usize,
    /// Relative-change tolerance.
    pub tol: f64,
    /// Episodes the EMA must stay within tolerance.
    pub window: usize,
}

impl Convergence {
    /// New detector.
    pub fn new(tol: f64, window: usize) -> Self {
        Convergence {
            ema: None,
            stable_for: 0,
            tol,
            window,
        }
    }

    /// Record an episode return. Returns `true` once converged.
    pub fn record(&mut self, episode_return: f64) -> bool {
        match self.ema {
            None => {
                self.ema = Some(episode_return);
                self.stable_for = 0;
            }
            Some(prev) => {
                let ema = 0.9 * prev + 0.1 * episode_return;
                let denom = prev.abs().max(1e-9);
                if ((ema - prev) / denom).abs() < self.tol {
                    self.stable_for += 1;
                } else {
                    self.stable_for = 0;
                }
                self.ema = Some(ema);
            }
        }
        self.is_converged()
    }

    /// Whether the return EMA has been stable long enough.
    pub fn is_converged(&self) -> bool {
        self.stable_for >= self.window
    }

    /// Current EMA of returns.
    pub fn ema(&self) -> Option<f64> {
        self.ema
    }
}

/// The persistent half of a [`ReinforceTrainer`]: policy weights,
/// optimizer moments, and the reward baseline. The trainer's
/// [`Workspace`] and scratch buffers are derived state rebuilt on the
/// next update, so a trainer restored from this state continues
/// training bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerState {
    /// Policy network weights.
    pub policy: ScoringPolicy,
    /// Hyperparameters (restored so a resumed trainer cannot drift
    /// from the run that exported it).
    pub cfg: TrainerConfig,
    /// Adam moments and step count.
    pub optim: Adam,
    /// EMA reward baseline.
    pub baseline: f64,
    /// Whether the baseline has been seeded yet.
    pub baseline_ready: bool,
}

/// REINFORCE trainer with an EMA baseline, plus supervised imitation.
///
/// Each recorded step is trained with one batched forward and one
/// batched backward pass over its candidate rows (instead of one
/// forward/backward per candidate); the trainer owns the [`Workspace`]
/// and scratch buffers, so steady-state training allocates only the
/// per-update gradient set.
#[derive(Debug)]
pub struct ReinforceTrainer {
    /// The policy being trained.
    pub policy: ScoringPolicy,
    cfg: TrainerConfig,
    optim: Adam,
    baseline: f64,
    baseline_ready: bool,
    ws: Workspace,
    probs: Vec<f64>,
    dlogits: Vec<f64>,
}

impl ReinforceTrainer {
    /// Wrap a policy with a trainer.
    pub fn new(policy: ScoringPolicy, cfg: TrainerConfig) -> Self {
        let optim = Adam::new(cfg.lr);
        ReinforceTrainer {
            policy,
            cfg,
            optim,
            baseline: 0.0,
            baseline_ready: false,
            ws: Workspace::new(),
            probs: Vec::new(),
            dlogits: Vec::new(),
        }
    }

    /// Capture the persistent half of the trainer (weights, optimizer
    /// moments, baseline) for a crash-safe restart.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            policy: self.policy.clone(),
            cfg: self.cfg,
            optim: self.optim.clone(),
            baseline: self.baseline,
            baseline_ready: self.baseline_ready,
        }
    }

    /// Adopt state captured by [`ReinforceTrainer::export_state`];
    /// scratch buffers reset and are rebuilt on the next update.
    pub fn import_state(&mut self, st: TrainerState) {
        self.policy = st.policy;
        self.cfg = st.cfg;
        self.optim = st.optim;
        self.baseline = st.baseline;
        self.baseline_ready = st.baseline_ready;
        self.ws = Workspace::new();
        self.probs.clear();
        self.dlogits.clear();
    }

    /// Discounted returns `G_t = Σ_k η^k r_{t+k}` for a reward
    /// sequence.
    pub fn discounted_returns(&self, rewards: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; rewards.len()];
        let mut acc = 0.0;
        for (i, r) in rewards.iter().enumerate().rev() {
            acc = r + self.cfg.eta * acc;
            out[i] = acc;
        }
        out
    }

    /// Batched forward over a step's candidates, leaving the softmax
    /// distribution in `self.probs` and the layer activations in
    /// `self.ws` (ready for `backprop_batch`).
    fn forward_step_probs(
        policy: &ScoringPolicy,
        ws: &mut Workspace,
        probs: &mut Vec<f64>,
        step: &Step,
    ) {
        let logits = policy.net().forward_batch(&step.candidates, ws);
        probs.clear();
        probs.extend_from_slice(logits);
        softmax_in_place(probs);
    }

    /// One REINFORCE update over an episode of `(step, reward)` pairs.
    /// Returns the (undiscounted) episode return.
    pub fn train_episode(&mut self, episode: &[(Step, f64)]) -> f64 {
        if episode.is_empty() {
            return 0.0;
        }
        let rewards: Vec<f64> = episode.iter().map(|(_, r)| *r).collect();
        let returns = self.discounted_returns(&rewards);
        // Update the baseline from the episode's mean return.
        let mean_ret = returns.iter().sum::<f64>() / returns.len() as f64;
        if self.baseline_ready {
            self.baseline = self.cfg.baseline_decay * self.baseline
                + (1.0 - self.cfg.baseline_decay) * mean_ret;
        } else {
            self.baseline = mean_ret;
            self.baseline_ready = true;
        }

        let mut grads = self.policy.net().zero_grads();
        for ((step, _), g_t) in episode.iter().zip(&returns) {
            if step.candidates.rows() < 2 {
                continue; // nothing to learn from a forced choice
            }
            let advantage = g_t - self.baseline;
            Self::forward_step_probs(&self.policy, &mut self.ws, &mut self.probs, step);
            // d(-advantage·log π(a) − β·H(π)) / d logit_i
            //   = advantage·(π_i − 1[i=a]) + β·π_i·(log π_i + H)
            let entropy: f64 = self
                .probs
                .iter()
                .map(|p| if *p > 0.0 { -p * p.ln() } else { 0.0 })
                .sum();
            self.dlogits.clear();
            for (i, p) in self.probs.iter().enumerate() {
                let indicator = if i == step.action { 1.0 } else { 0.0 };
                let mut dlogit = advantage * (p - indicator);
                dlogit += self.cfg.entropy_coef * p * (p.max(1e-12).ln() + entropy);
                self.dlogits.push(dlogit);
            }
            self.policy.net().backprop_batch(
                &step.candidates,
                &self.dlogits,
                &mut grads,
                &mut self.ws,
            );
        }
        self.optim.step(self.policy.net_mut(), &mut grads);
        rewards.iter().sum()
    }

    /// Supervised imitation: raise the probability of the recorded
    /// action via cross-entropy over candidate scores. Returns the
    /// mean cross-entropy loss of the batch.
    pub fn imitate(&mut self, steps: &[Step]) -> f64 {
        if steps.is_empty() {
            return 0.0;
        }
        self.imitate_inner(steps, None)
    }

    /// [`ReinforceTrainer::imitate`] over a minibatch selected by
    /// index — lets replay buffers resample without cloning `Step`s.
    pub fn imitate_indices(&mut self, steps: &[Step], indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        self.imitate_inner(steps, Some(indices))
    }

    /// Shared imitation update; `indices = None` walks `steps` in
    /// order, `Some(idx)` visits `steps[i]` for each `i` (repeats
    /// allowed).
    fn imitate_inner(&mut self, steps: &[Step], indices: Option<&[usize]>) -> f64 {
        let mut grads = self.policy.net().zero_grads();
        let mut total_loss = 0.0;
        let mut counted = 0usize;
        let n = indices.map_or(steps.len(), <[usize]>::len);
        for k in 0..n {
            let step = match indices {
                Some(idx) => &steps[idx[k]],
                None => &steps[k],
            };
            if step.candidates.rows() < 2 {
                continue;
            }
            Self::forward_step_probs(&self.policy, &mut self.ws, &mut self.probs, step);
            total_loss += -self.probs[step.action].max(1e-12).ln();
            counted += 1;
            self.dlogits.clear();
            for (i, p) in self.probs.iter().enumerate() {
                let indicator = if i == step.action { 1.0 } else { 0.0 };
                self.dlogits.push(p - indicator);
            }
            self.policy.net().backprop_batch(
                &step.candidates,
                &self.dlogits,
                &mut grads,
                &mut self.ws,
            );
        }
        self.optim.step(self.policy.net_mut(), &mut grads);
        if counted == 0 {
            0.0
        } else {
            total_loss / counted as f64
        }
    }

    /// Fraction of steps where the policy's greedy choice matches the
    /// recorded action (imitation quality metric).
    pub fn agreement(&self, steps: &[Step]) -> f64 {
        if steps.is_empty() {
            return 1.0;
        }
        let hits = steps
            .iter()
            .filter(|s| self.policy.greedy(&s.candidates) == s.action)
            .count();
        hits as f64 / steps.len() as f64
    }

    /// The current reward baseline.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    /// A contextual bandit: candidate feature [x]; reward 1 when the
    /// chosen candidate has the largest x, else 0. The optimal policy
    /// scores candidates by x.
    fn bandit_episode(policy: &ScoringPolicy, rng: &mut SimRng, steps: usize) -> Vec<(Step, f64)> {
        let mut out = Vec::new();
        for _ in 0..steps {
            let mut candidates = FeatureBatch::new(1);
            for _ in 0..4 {
                candidates.push(&[rng.range_f64(-1.0, 1.0)]);
            }
            let action = policy.sample(&candidates, rng);
            let best = (0..candidates.rows())
                .max_by(|a, b| {
                    candidates.row(*a)[0]
                        .partial_cmp(&candidates.row(*b)[0])
                        .unwrap()
                })
                .unwrap();
            let reward = if action == best { 1.0 } else { 0.0 };
            out.push((Step { candidates, action }, reward));
        }
        out
    }

    #[test]
    fn discounted_returns_match_hand_computation() {
        let t = ReinforceTrainer::new(
            ScoringPolicy::new(1, &[4], &mut SimRng::new(0)),
            TrainerConfig {
                eta: 0.5,
                ..Default::default()
            },
        );
        let g = t.discounted_returns(&[1.0, 0.0, 4.0]);
        // G2 = 4, G1 = 0 + .5·4 = 2, G0 = 1 + .5·2 = 2.
        assert_eq!(g, vec![2.0, 2.0, 4.0]);
    }

    #[test]
    fn reinforce_improves_bandit_reward() {
        let mut rng = SimRng::new(10);
        let policy = ScoringPolicy::new(1, &[8], &mut rng);
        let mut trainer = ReinforceTrainer::new(policy, TrainerConfig::default());

        let mut eval_rng = SimRng::new(99);
        let before: f64 = bandit_episode(&trainer.policy, &mut eval_rng, 500)
            .iter()
            .map(|(_, r)| r)
            .sum::<f64>()
            / 500.0;

        for _ in 0..400 {
            let ep = bandit_episode(&trainer.policy, &mut rng, 32);
            trainer.train_episode(&ep);
        }

        let mut eval_rng = SimRng::new(99);
        let after: f64 = bandit_episode(&trainer.policy, &mut eval_rng, 500)
            .iter()
            .map(|(_, r)| r)
            .sum::<f64>()
            / 500.0;
        assert!(
            after > before + 0.2 && after > 0.7,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn imitation_learns_a_max_rule() {
        let mut rng = SimRng::new(20);
        let policy = ScoringPolicy::new(2, &[8], &mut rng);
        let mut trainer = ReinforceTrainer::new(policy, TrainerConfig::default());

        // Teacher: pick the candidate maximising x0 + 2·x1.
        let make_steps = |rng: &mut SimRng, n: usize| -> Vec<Step> {
            (0..n)
                .map(|_| {
                    let mut candidates = FeatureBatch::new(2);
                    for _ in 0..5 {
                        candidates.push(&[rng.range_f64(0.0, 1.0), rng.range_f64(0.0, 1.0)]);
                    }
                    let action = (0..candidates.rows())
                        .max_by(|a, b| {
                            let sa = candidates.row(*a);
                            let sb = candidates.row(*b);
                            (sa[0] + 2.0 * sa[1])
                                .partial_cmp(&(sb[0] + 2.0 * sb[1]))
                                .unwrap()
                        })
                        .unwrap();
                    Step { candidates, action }
                })
                .collect()
        };

        for _ in 0..300 {
            let batch = make_steps(&mut rng, 32);
            trainer.imitate(&batch);
        }
        let mut test_rng = SimRng::new(77);
        let test = make_steps(&mut test_rng, 400);
        let agree = trainer.agreement(&test);
        assert!(agree > 0.85, "agreement {agree}");
    }

    #[test]
    fn imitation_loss_decreases() {
        let mut rng = SimRng::new(30);
        let policy = ScoringPolicy::new(1, &[6], &mut rng);
        let mut trainer = ReinforceTrainer::new(policy, TrainerConfig::default());
        let steps: Vec<Step> = (0..64)
            .map(|_| {
                let mut candidates = FeatureBatch::new(1);
                for _ in 0..3 {
                    candidates.push(&[rng.range_f64(0.0, 1.0)]);
                }
                let action = (0..candidates.rows())
                    .max_by(|a, b| {
                        candidates.row(*a)[0]
                            .partial_cmp(&candidates.row(*b)[0])
                            .unwrap()
                    })
                    .unwrap();
                Step { candidates, action }
            })
            .collect();
        let first = trainer.imitate(&steps);
        let mut last = first;
        for _ in 0..400 {
            last = trainer.imitate(&steps);
        }
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn imitate_indices_matches_imitate_on_identity_permutation() {
        // Two identical trainers: one fed the steps directly, the
        // other the same steps through the index path. Parameters must
        // stay bit-identical — this is the invariant that lets the
        // replay buffer resample without cloning Steps.
        let mk = || {
            let mut rng = SimRng::new(40);
            let policy = ScoringPolicy::new(2, &[6], &mut rng);
            ReinforceTrainer::new(policy, TrainerConfig::default())
        };
        let mut rng = SimRng::new(41);
        let steps: Vec<Step> = (0..16)
            .map(|_| {
                let mut candidates = FeatureBatch::new(2);
                for _ in 0..4 {
                    candidates.push(&[rng.range_f64(0.0, 1.0), rng.range_f64(0.0, 1.0)]);
                }
                Step {
                    candidates,
                    action: 1,
                }
            })
            .collect();
        let idx: Vec<usize> = (0..steps.len()).collect();
        let mut a = mk();
        let mut b = mk();
        for _ in 0..5 {
            let la = a.imitate(&steps);
            let lb = b.imitate_indices(&steps, &idx);
            assert_eq!(la, lb);
        }
        let extract = |t: &mut ReinforceTrainer| {
            let mut params = Vec::new();
            let g = t.policy.net().zero_grads();
            t.policy
                .net_mut()
                .visit_params_mut(&g, |p: &mut [f64], _| params.extend_from_slice(p));
            params
        };
        assert_eq!(extract(&mut a), extract(&mut b));
        // Repeated indices are allowed (replay-style resampling).
        let resample = [0usize, 0, 3, 15, 3];
        b.imitate_indices(&steps, &resample);
    }

    #[test]
    fn convergence_detector() {
        let mut c = Convergence::new(0.01, 5);
        // Wildly varying returns: never converges.
        for i in 0..20 {
            c.record(if i % 2 == 0 { 0.0 } else { 100.0 });
        }
        assert!(!c.is_converged());
        // Stable returns: converges after the window.
        let mut c2 = Convergence::new(0.01, 5);
        let mut converged_at = None;
        for i in 0..50 {
            if c2.record(10.0) && converged_at.is_none() {
                converged_at = Some(i);
            }
        }
        assert!(converged_at.is_some());
        assert!(converged_at.unwrap() >= 5);
    }

    #[test]
    fn empty_episode_is_harmless() {
        let mut trainer = ReinforceTrainer::new(
            ScoringPolicy::new(1, &[4], &mut SimRng::new(0)),
            TrainerConfig::default(),
        );
        assert_eq!(trainer.train_episode(&[]), 0.0);
        assert_eq!(trainer.imitate(&[]), 0.0);
        assert_eq!(trainer.imitate_indices(&[], &[]), 0.0);
        assert_eq!(trainer.agreement(&[]), 1.0);
    }
}
