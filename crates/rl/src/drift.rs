//! Workload-drift detection for continuous retraining.
//!
//! A warm-started policy is only as good as the workload it was
//! trained on; when the job mix shifts (new model families, different
//! GPU demands, changed arrival pattern), its decisions degrade.
//! Following the continuous/transfer-retraining argument of Sliwko &
//! Mizera-Pietraszko, [`DriftMonitor`] watches the online reward
//! stream with two exponential moving averages — a fast one tracking
//! recent reward and a slow one tracking the long-run level — and
//! flags drift when the fast average falls measurably below the slow
//! one. The scheduler reacts by re-entering an imitation window
//! against its heuristic teacher (see `mlfs::MlfRl`), which retrains
//! the policy on the *current* workload distribution.
//!
//! The monitor is pure arithmetic over the observed rewards: no
//! clocks, no RNG, fully serializable — so drift detection is as
//! deterministic as the rest of the pipeline and survives
//! snapshot/restore.

use serde::{Deserialize, Serialize};

/// Tuning knobs for [`DriftMonitor`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Decay of the fast (recent-reward) EMA.
    pub short_decay: f64,
    /// Decay of the slow (long-run) EMA.
    pub long_decay: f64,
    /// Relative shortfall that counts as drift: trigger when
    /// `short < long − threshold·max(|long|, 1e-9)`.
    pub threshold: f64,
    /// Observations before the monitor may trigger (lets both EMAs
    /// seed).
    pub warmup: u64,
    /// Observations to ignore after a trigger (gives retraining time
    /// to take effect before re-evaluating).
    pub cooldown: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            short_decay: 0.80,
            long_decay: 0.99,
            threshold: 0.15,
            warmup: 32,
            cooldown: 64,
        }
    }
}

/// Dual-EMA reward monitor; [`DriftMonitor::observe`] returns `true`
/// exactly when a retraining window should open.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    short: Option<f64>,
    long: Option<f64>,
    observed: u64,
    cooldown_left: u64,
    triggers: u64,
}

impl DriftMonitor {
    /// New monitor with the given config.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftMonitor {
            cfg,
            short: None,
            long: None,
            observed: 0,
            cooldown_left: 0,
            triggers: 0,
        }
    }

    /// Feed one online reward observation. Returns `true` when drift
    /// is detected (at most once per cooldown window).
    pub fn observe(&mut self, reward: f64) -> bool {
        self.observed += 1;
        let short = match self.short {
            None => reward,
            Some(s) => self.cfg.short_decay * s + (1.0 - self.cfg.short_decay) * reward,
        };
        let long = match self.long {
            None => reward,
            Some(l) => self.cfg.long_decay * l + (1.0 - self.cfg.long_decay) * reward,
        };
        self.short = Some(short);
        self.long = Some(long);
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return false;
        }
        if self.observed < self.cfg.warmup {
            return false;
        }
        let drifted = short < long - self.cfg.threshold * long.abs().max(1e-9);
        if drifted {
            self.triggers += 1;
            self.cooldown_left = self.cfg.cooldown;
            // Re-anchor the fast EMA so post-retrain evaluation starts
            // fresh instead of re-reporting the same shortfall.
            self.short = Some(long);
        }
        drifted
    }

    /// Fast (recent) reward EMA.
    pub fn short(&self) -> Option<f64> {
        self.short
    }

    /// Slow (long-run) reward EMA.
    pub fn long(&self) -> Option<f64> {
        self.long
    }

    /// How many times drift has been flagged.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            short_decay: 0.5,
            long_decay: 0.98,
            threshold: 0.2,
            warmup: 10,
            cooldown: 20,
        }
    }

    #[test]
    fn stable_reward_never_triggers() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..500 {
            assert!(!m.observe(1.0));
        }
        assert_eq!(m.triggers(), 0);
    }

    #[test]
    fn reward_collapse_triggers_once_per_cooldown() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..100 {
            m.observe(1.0);
        }
        let mut fired = 0;
        for _ in 0..10 {
            if m.observe(-1.0) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "drift should fire once, then cool down");
        assert_eq!(m.triggers(), 1);
    }

    #[test]
    fn warmup_suppresses_early_noise() {
        let mut m = DriftMonitor::new(cfg());
        for i in 0..9 {
            assert!(!m.observe(if i % 2 == 0 { 1.0 } else { -1.0 }));
        }
    }

    #[test]
    fn monitor_is_deterministic_and_serializable() {
        let run = || {
            let mut m = DriftMonitor::new(cfg());
            let mut events = Vec::new();
            for i in 0..200u64 {
                let r = if i < 100 { 1.0 } else { -0.5 };
                events.push(m.observe(r));
            }
            (events, m.short(), m.long(), m.triggers())
        };
        assert_eq!(run(), run());
    }
}
