//! Offline training datasets built from replayed decision traces.
//!
//! The DL2-style bootstrap (Peng et al.): a production scheduler logs
//! every decision it makes (`decision_example` trace events carrying
//! the candidate feature matrix and the chosen index); replaying those
//! logs yields a supervised dataset of `(FeatureBatch, action)` pairs;
//! pretraining the policy on that dataset by cross-entropy imitation
//! *warm-starts* MLF-RL, so online fine-tuning begins from the
//! teacher's competence instead of from random weights.
//!
//! Everything here is deterministic end to end: the same trace bytes
//! produce a byte-identical dataset ([`Dataset::to_jsonl`] /
//! [`Dataset::fingerprint`]), and [`warm_start`] with the same
//! [`PretrainConfig`] produces bit-identical policy weights — both
//! properties are test-pinned.

use crate::policy::ScoringPolicy;
use crate::trainer::{ReinforceTrainer, Step, TrainerConfig};
use nn::FeatureBatch;
use obs::TraceEvent;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// One supervised example recovered from a trace, with its replay
/// provenance (round, simulated time, job/task, decision source).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// Scheduler round the decision was made in.
    pub round: u64,
    /// Simulated time (minutes).
    pub t: f64,
    /// Raw `JobId` of the decided task.
    pub job: u32,
    /// Task index within the job.
    pub task: u32,
    /// `"imitation"` (MLF-H teacher) or `"rl"` (the policy's own pick).
    pub source: String,
    /// The candidate features and chosen index.
    pub step: Step,
}

/// An in-memory supervised dataset: decisions replayed from a trace.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    records: Vec<DatasetRecord>,
}

impl Dataset {
    /// Feature dimensionality of every example.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The replayed records, in trace order.
    pub fn records(&self) -> &[DatasetRecord] {
        &self.records
    }

    /// Clone the training steps out of the records (the trainer's
    /// input shape).
    pub fn steps(&self) -> Vec<Step> {
        self.records.iter().map(|r| r.step.clone()).collect()
    }

    /// Canonical JSONL serialization: each record re-encoded as the
    /// `decision_example` trace event it came from. Replaying a trace
    /// and serializing the dataset is byte-stable, which is what makes
    /// dataset artifacts diffable and cacheable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let ev = TraceEvent::DecisionExample {
                round: r.round,
                t: r.t,
                job: r.job,
                task: r.task,
                src: obs::event::intern_reason(&r.source),
                action: r.step.action as u32,
                dim: self.dim as u32,
                rows: r.step.candidates.rows() as u32,
                feats: encode_feats(&r.step.candidates),
            };
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// FNV-1a 64 over the canonical serialization — a cheap identity
    /// for "did two replays produce the same dataset?".
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_jsonl().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Flatten a candidate matrix into the `feats` wire form: row-major,
/// space-separated, shortest-round-trip `f64` display (exact bits on
/// parse-back).
pub fn encode_feats(batch: &FeatureBatch) -> String {
    let mut s = String::with_capacity(batch.as_slice().len() * 8);
    use std::fmt::Write;
    for (i, v) in batch.as_slice().iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        // Rust's `Display` for f64 is shortest-round-trip: parsing the
        // printed form recovers the exact bits.
        let _ = write!(s, "{v}");
    }
    s
}

/// Parse a `feats` string back into a `rows × dim` batch. Returns
/// `None` on count mismatch or unparseable numbers.
pub fn decode_feats(feats: &str, dim: usize, rows: usize) -> Option<FeatureBatch> {
    let mut vals = Vec::with_capacity(dim * rows);
    for tok in feats.split_ascii_whitespace() {
        vals.push(tok.parse::<f64>().ok()?);
    }
    if vals.len() != dim * rows {
        return None;
    }
    let mut batch = FeatureBatch::with_capacity(dim, rows);
    for row in vals.chunks_exact(dim) {
        batch.push(row);
    }
    Some(batch)
}

/// Streaming dataset builder over replayed [`TraceEvent`]s.
///
/// Feed it every event from a [`obs::TraceReader`] (or a
/// pre-filtered stream); it keeps the `decision_example`s that pass
/// its provenance filters and are internally consistent (feature
/// count matches `rows × dim`, action in range, ≥ 2 candidates — the
/// trainer skips forced choices anyway).
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    source: Option<&'static str>,
    rounds: Option<(u64, u64)>,
    time: Option<(f64, f64)>,
    records: Vec<DatasetRecord>,
    rejected: u64,
}

impl DatasetBuilder {
    /// Builder for examples of feature dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        DatasetBuilder {
            dim,
            source: None,
            rounds: None,
            time: None,
            records: Vec::new(),
            rejected: 0,
        }
    }

    /// Keep only one decision source (`"imitation"` or `"rl"`).
    pub fn source(mut self, src: &'static str) -> Self {
        self.source = Some(src);
        self
    }

    /// Keep only rounds in `[lo, hi)`.
    pub fn round_window(mut self, lo: u64, hi: u64) -> Self {
        self.rounds = Some((lo, hi));
        self
    }

    /// Keep only simulated times in `[lo, hi)`.
    pub fn time_window(mut self, lo: f64, hi: f64) -> Self {
        self.time = Some((lo, hi));
        self
    }

    /// Offer one replayed event. Returns `true` if it became a record.
    pub fn ingest(&mut self, ev: &TraceEvent) -> bool {
        let TraceEvent::DecisionExample {
            round,
            t,
            job,
            task,
            src,
            action,
            dim,
            rows,
            feats,
        } = ev
        else {
            return false;
        };
        if let Some(want) = self.source {
            if *src != want {
                return false;
            }
        }
        if let Some((lo, hi)) = self.rounds {
            if *round < lo || *round >= hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.time {
            if *t < lo || *t >= hi {
                return false;
            }
        }
        if *dim as usize != self.dim || (*rows as usize) < 2 || *action >= *rows {
            self.rejected += 1;
            return false;
        }
        let Some(candidates) = decode_feats(feats, self.dim, *rows as usize) else {
            self.rejected += 1;
            return false;
        };
        self.records.push(DatasetRecord {
            round: *round,
            t: *t,
            job: *job,
            task: *task,
            source: (*src).to_string(),
            step: Step {
                candidates,
                action: *action as usize,
            },
        });
        true
    }

    /// Drain an event stream into the builder.
    pub fn ingest_all<I: Iterator<Item = TraceEvent>>(&mut self, events: I) -> usize {
        let mut n = 0;
        for ev in events {
            if self.ingest(&ev) {
                n += 1;
            }
        }
        n
    }

    /// Events that matched the filters but were internally
    /// inconsistent (shape mismatch, out-of-range action).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Finish into an immutable [`Dataset`].
    pub fn finish(self) -> Dataset {
        Dataset {
            dim: self.dim,
            records: self.records,
        }
    }
}

/// Hyperparameters for the offline warm-start pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Hidden-layer widths of the fresh policy.
    pub hidden: Vec<usize>,
    /// Passes over the dataset.
    pub epochs: usize,
    /// Minibatch size (sampled with replacement per update).
    pub batch: usize,
    /// Adam learning rate for the supervised phase.
    pub lr: f64,
    /// RNG seed (policy init + minibatch sampling). Same seed, same
    /// dataset → bit-identical weights.
    pub seed: u64,
    /// Cap on SGD updates per epoch (`None` = one full pass). The
    /// offline budget knob: a sub-convergence cap yields a
    /// deliberately imperfect student — which is exactly what the
    /// drift-retraining experiment needs its frozen baseline to be.
    pub steps_per_epoch: Option<usize>,
    /// Feature dimensions zeroed in every candidate row before
    /// training (empty = train on the full vector). The standard
    /// guard against shortcut learning: masking a teacher-hint
    /// dimension (e.g. MLF-H's heuristic-pick flag) forces the
    /// student to learn the placement rule from raw cluster state
    /// instead of copying the hint.
    pub mask_dims: Vec<usize>,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            hidden: vec![64, 32],
            epochs: 8,
            batch: 64,
            lr: 1e-2,
            seed: 0x00FF_11CE,
            steps_per_epoch: None,
            mask_dims: Vec::new(),
        }
    }
}

/// What the warm-start pass measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainReport {
    /// Mean cross-entropy loss per epoch, in order.
    pub epoch_losses: Vec<f64>,
    /// Greedy agreement with the recorded actions after training.
    pub final_agreement: f64,
    /// Examples trained on.
    pub examples: usize,
}

/// Pretrain a fresh policy on a replayed dataset by supervised
/// imitation (cross-entropy toward the recorded actions), reusing the
/// batched forward/backward passes in `nn`. Returns the warmed policy
/// and a per-epoch loss report.
pub fn warm_start(dataset: &Dataset, cfg: &PretrainConfig) -> (ScoringPolicy, PretrainReport) {
    let mut rng = SimRng::new(cfg.seed);
    let policy = ScoringPolicy::new(dataset.dim(), &cfg.hidden, &mut rng);
    let mut trainer = ReinforceTrainer::new(
        policy,
        TrainerConfig {
            lr: cfg.lr,
            ..TrainerConfig::default()
        },
    );
    let mut steps = dataset.steps();
    for step in &mut steps {
        for r in 0..step.candidates.rows() {
            let row = step.candidates.row_mut(r);
            for &d in &cfg.mask_dims {
                if let Some(v) = row.get_mut(d) {
                    *v = 0.0;
                }
            }
        }
    }
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    if steps.is_empty() {
        return (
            trainer.policy,
            PretrainReport {
                epoch_losses,
                final_agreement: 1.0,
                examples: 0,
            },
        );
    }
    let batch = cfg.batch.max(1);
    let full_pass = steps.len().div_ceil(batch);
    let updates_per_epoch = cfg
        .steps_per_epoch
        .map_or(full_pass, |cap| cap.clamp(1, full_pass));
    let mut indices = Vec::with_capacity(batch);
    for _ in 0..cfg.epochs {
        let mut sum = 0.0;
        for _ in 0..updates_per_epoch {
            indices.clear();
            for _ in 0..batch {
                indices.push(rng.index(steps.len()));
            }
            sum += trainer.imitate_indices(&steps, &indices);
        }
        epoch_losses.push(sum / updates_per_epoch as f64);
    }
    let final_agreement = trainer.agreement(&steps);
    (
        trainer.policy,
        PretrainReport {
            epoch_losses,
            final_agreement,
            examples: steps.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn teacher_event(round: u64, seed: u64) -> TraceEvent {
        // Teacher rule: pick the candidate with the largest x0.
        let mut rng = SimRng::new(seed);
        let mut candidates = FeatureBatch::new(2);
        for _ in 0..4 {
            candidates.push(&[rng.range_f64(0.0, 1.0), rng.range_f64(0.0, 1.0)]);
        }
        let action = (0..candidates.rows())
            .max_by(|a, b| {
                candidates.row(*a)[0]
                    .partial_cmp(&candidates.row(*b)[0])
                    .unwrap()
            })
            .unwrap();
        TraceEvent::DecisionExample {
            round,
            t: round as f64,
            job: round as u32,
            task: 0,
            src: "imitation",
            action: action as u32,
            dim: 2,
            rows: 4,
            feats: encode_feats(&candidates),
        }
    }

    #[test]
    fn feats_encoding_round_trips_exact_bits() {
        let mut b = FeatureBatch::new(3);
        b.push(&[0.1 + 0.2, -1.0 / 3.0, 1e-300]);
        b.push(&[f64::MAX, 5.0, -0.0]);
        let s = encode_feats(&b);
        let back = decode_feats(&s, 3, 2).unwrap();
        assert_eq!(b.as_slice(), back.as_slice());
    }

    #[test]
    fn builder_filters_and_validates() {
        let mut builder = DatasetBuilder::new(2)
            .source("imitation")
            .round_window(0, 10);
        assert!(builder.ingest(&teacher_event(3, 1)));
        assert!(!builder.ingest(&teacher_event(11, 2))); // outside round window
        assert!(!builder.ingest(&TraceEvent::RoundStart {
            round: 1,
            t: 0.0,
            queued: 0
        }));
        // Shape mismatch: dim says 3 but builder wants 2.
        assert!(!builder.ingest(&TraceEvent::DecisionExample {
            round: 1,
            t: 1.0,
            job: 0,
            task: 0,
            src: "imitation",
            action: 0,
            dim: 3,
            rows: 2,
            feats: "1 2 3 4 5 6".to_string(),
        }));
        assert_eq!(builder.rejected(), 1);
        let ds = builder.finish();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.dim(), 2);
    }

    #[test]
    fn same_trace_builds_byte_identical_dataset() {
        let events: Vec<TraceEvent> = (0..32).map(|i| teacher_event(i, i + 100)).collect();
        let build = || {
            let mut b = DatasetBuilder::new(2);
            b.ingest_all(events.iter().cloned());
            b.finish()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // And the serialization survives a JSONL round-trip: parsing
        // the canonical form back rebuilds the same dataset.
        let mut c = DatasetBuilder::new(2);
        c.ingest_all(a.to_jsonl().lines().filter_map(TraceEvent::from_json_line));
        assert_eq!(c.finish().fingerprint(), a.fingerprint());
    }

    #[test]
    fn warm_start_is_seed_deterministic_and_loss_decreases() {
        let events: Vec<TraceEvent> = (0..128).map(|i| teacher_event(i, i + 7)).collect();
        let mut b = DatasetBuilder::new(2);
        b.ingest_all(events.into_iter());
        let ds = b.finish();
        let cfg = PretrainConfig {
            hidden: vec![8],
            epochs: 6,
            batch: 32,
            ..PretrainConfig::default()
        };
        let (p1, r1) = warm_start(&ds, &cfg);
        let (p2, r2) = warm_start(&ds, &cfg);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        // Bit-identical policies: greedy choices agree on every example.
        for rec in ds.records() {
            assert_eq!(
                p1.greedy(&rec.step.candidates),
                p2.greedy(&rec.step.candidates)
            );
        }
        let (first, last) = (r1.epoch_losses[0], *r1.epoch_losses.last().unwrap());
        assert!(
            last < first,
            "losses did not decrease: {:?}",
            r1.epoch_losses
        );
        assert!(r1.final_agreement > 0.5, "agreement {}", r1.final_agreement);
    }

    #[test]
    fn empty_dataset_warm_start_is_harmless() {
        let ds = DatasetBuilder::new(2).finish();
        let (_, report) = warm_start(&ds, &PretrainConfig::default());
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.examples, 0);
    }
}
