//! Graphene \[20\] — packing- and dependency-aware DAG scheduling.
//!
//! §2: "Within one job, Graphene tends to first assign the available
//! resources to the 'troublesome' tasks (the tasks \[that\] have more
//! dependent tasks and tough-to-pack resource demands) and then assign
//! the remaining resources … For a set of jobs, Graphene determines
//! the order of multiple jobs based on weighted scores calculated
//! based on multiple job scheduling objectives including average job
//! completion time, cluster throughput and fairness."
//!
//! Our task score combines transitive dependent count with a demand
//! "toughness" (max normalized resource dimension); the job order
//! blends shortest-remaining-time (JCT), total demand (throughput) and
//! attained-share deficit (fairness). No ML features and no accuracy
//! objective — the paper's stated gap.

use crate::util::{place_in_order, FULL};
use cluster::{JobId, TaskId};
use mlfs::{Action, Scheduler, SchedulerContext};
use std::collections::BTreeMap;
use workload::JobState;

/// The Graphene scheduler.
#[derive(Debug, Clone, Default)]
pub struct Graphene;

impl Graphene {
    /// New Graphene scheduler.
    pub fn new() -> Self {
        Graphene
    }

    /// Job-level weighted score (higher runs first). Graphene blends
    /// JCT, throughput and fairness objectives, but it is a scheduler
    /// for *general* DAG jobs — it has no ML runtime oracle, so the
    /// JCT term uses the DAG's size as a proxy (small jobs first
    /// helps average JCT), not predicted remaining time.
    fn job_score(job: &JobState) -> f64 {
        // JCT proxy: smaller DAGs first (no runtime oracle).
        let jct = 1.0 / (1.0 + job.spec.task_count() as f64);
        // Throughput term: average per-task packing toughness (kept
        // normalized — total demand would convoy behind giant jobs).
        let toughness = job.spec.tasks.iter().map(|t| t.gpu_share).sum::<f64>()
            / job.spec.task_count().max(1) as f64;
        // Fairness term: jobs with nothing running get a boost.
        let fairness = if job.running_tasks() == 0 { 1.0 } else { 0.0 };
        0.5 * jct + 0.2 * toughness + 0.3 * fairness
    }

    /// Task-level troublesomeness within its job, from precomputed
    /// per-job descendant counts (recomputing the transitive closure
    /// per task per round is quadratic and dominated decision time).
    fn task_score(job: &JobState, desc: &[usize], idx: usize) -> f64 {
        if idx >= job.spec.dag.len() {
            // Parameter server: schedule early (everyone depends on it).
            return f64::MAX / 2.0;
        }
        let deps = desc[idx] as f64;
        let demand = &job.spec.tasks[idx].demand;
        let toughness = demand.0.iter().cloned().fold(0.0, f64::max);
        deps + toughness
    }
}

impl Scheduler for Graphene {
    fn name(&self) -> &'static str {
        "Graphene"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut job_scores: BTreeMap<JobId, f64> = BTreeMap::new();
        let mut desc_cache: BTreeMap<JobId, Vec<usize>> = BTreeMap::new();
        for job in ctx.active_jobs() {
            job_scores.insert(job.spec.id, Self::job_score(job));
            desc_cache.insert(job.spec.id, job.spec.dag.descendant_counts());
        }
        let mut order: Vec<TaskId> = ctx.queue.to_vec();
        order.sort_by(|a, b| {
            let ja = job_scores.get(&a.job).copied().unwrap_or(0.0);
            let jb = job_scores.get(&b.job).copied().unwrap_or(0.0);
            jb.partial_cmp(&ja)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    let ta =
                        Self::task_score(&ctx.jobs[&a.job], &desc_cache[&a.job], a.idx as usize);
                    let tb =
                        Self::task_score(&ctx.jobs[&b.job], &desc_cache[&b.job], b.idx as usize);
                    tb.partial_cmp(&ta).unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(b))
        });
        place_in_order(ctx, &order, FULL).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use workload::JobArena;

    #[test]
    fn troublesome_tasks_first_within_a_job() {
        let c = crate::util::tests::test_cluster(4);
        let job = crate::util::tests::test_job(1, 4); // chain 0→1→2→3
        let jobs: JobArena = [(JobId(1), job)].into();
        // Queue in reverse order; Graphene must re-order by dependents.
        let queue: Vec<TaskId> = (0..4).rev().map(|i| TaskId::new(JobId(1), i)).collect();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = Graphene::new().schedule(&ctx);
        let placed: Vec<u16> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { task, .. } => Some(task.idx),
                _ => None,
            })
            .collect();
        assert_eq!(placed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shorter_jobs_outrank_longer_ones() {
        let c = crate::util::tests::test_cluster(4);
        let mut short = crate::util::tests::test_job(1, 1);
        let mut long = crate::util::tests::test_job(2, 1);
        short.spec.predicted_runtime = simcore::SimDuration::from_mins(5);
        long.spec.predicted_runtime = simcore::SimDuration::from_hours(10);
        let jobs: JobArena = [(JobId(1), short), (JobId(2), long)].into();
        let queue = vec![TaskId::new(JobId(2), 0), TaskId::new(JobId(1), 0)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = Graphene::new().schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(task.job),
                _ => None,
            })
            .unwrap();
        assert_eq!(first, JobId(1));
    }
}
