//! Gandiva \[55\] — FIFO + affinity packing + utilization migration.
//!
//! §2: "Gandiva uses first-in-first-out queuing. It defines the jobs
//! with the same number of GPU requirements as affinity jobs and tries
//! to put the affinity jobs to the same machine … to relieve the extra
//! load of an overloaded GPU, Gandiva moves the job with the lowest
//! GPU utilization to the GPU with the lowest utilization." Gandiva
//! handles *only* GPU overload (no CPU/mem/bandwidth awareness), and
//! its migrations ignore communication affinity — which is why it has
//! the highest bandwidth cost in Fig. 4g.

use crate::util::{least_loaded_host, place_in_order_gang, FULL};
use cluster::{Cluster, ServerId, TaskId};
use mlfs::{Action, Scheduler, SchedulerContext};

/// The Gandiva scheduler.
#[derive(Debug, Clone)]
pub struct Gandiva {
    /// GPU utilization above which a GPU is overloaded (paper: "GPU
    /// utilization is higher than a threshold").
    pub gpu_threshold: f64,
}

impl Default for Gandiva {
    fn default() -> Self {
        Gandiva { gpu_threshold: 0.9 }
    }
}

impl Gandiva {
    /// New Gandiva scheduler with the default threshold.
    pub fn new() -> Self {
        Gandiva::default()
    }

    /// Preferred server for a task: one already hosting tasks of jobs
    /// with the same GPU-count requirement (affinity), else the least
    /// loaded feasible server.
    fn affinity_host(
        &self,
        plan: &Cluster,
        ctx: &SchedulerContext<'_>,
        task: TaskId,
    ) -> Option<ServerId> {
        let my_gpus = ctx.jobs[&task.job].spec.worker_count();
        let spec = &ctx.jobs[&task.job].spec.tasks[task.idx as usize];
        // Scan servers for an affinity match that still fits.
        let mut best: Option<ServerId> = None;
        for s in plan.servers() {
            if !s.can_host(&spec.demand, spec.gpu_share, FULL) {
                continue;
            }
            let has_affinity = s.tasks().any(|(t, _)| {
                ctx.jobs
                    .get(&t.job)
                    .map(|j| j.spec.worker_count() == my_gpus)
                    .unwrap_or(false)
            });
            if has_affinity {
                best = Some(s.id);
                break;
            }
        }
        best.or_else(|| least_loaded_host(plan, ctx, task, FULL))
    }
}

impl Scheduler for Gandiva {
    fn name(&self) -> &'static str {
        "Gandiva"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        // FIFO gang placement with affinity packing.
        let (mut actions, mut plan) =
            place_in_order_gang(ctx, ctx.queue, FULL, |plan, ctx, task| {
                self.affinity_host(plan, ctx, task)
            });

        // GPU-overload migration: move the lowest-GPU-utilization task
        // from each overloaded GPU to the globally least-loaded GPU's
        // server. (GPU-only — other resources are ignored, as in the
        // paper's description.)
        for sid in 0..plan.server_count() {
            let sid = ServerId(sid as u32);
            let over: Vec<usize> = plan.server(sid).overloaded_gpus(self.gpu_threshold);
            for g in over {
                let tasks = plan.server(sid).tasks_on_gpu(g);
                // Lowest GPU share first.
                let victim = tasks.into_iter().min_by(|a, b| {
                    let ga = plan
                        .server(sid)
                        .placement(*a)
                        .map(|p| p.gpu_share)
                        .unwrap_or(0.0);
                    let gb = plan
                        .server(sid)
                        .placement(*b)
                        .map(|p| p.gpu_share)
                        .unwrap_or(0.0);
                    ga.partial_cmp(&gb).unwrap_or(std::cmp::Ordering::Equal)
                });
                let Some(victim) = victim else { continue };
                // Destination: server containing the least-loaded GPU.
                let dest = plan
                    .servers()
                    .iter()
                    .map(|s| (s.gpu_load(s.least_loaded_gpu()), s.id))
                    .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(_, s)| s);
                if let Some(dest) = dest {
                    // Same-server moves are GPU rebalances (free);
                    // cross-server moves pay migration traffic. Both
                    // are Gandiva behaviour.
                    let job = &ctx.jobs[&victim.job];
                    let state_mb = 3.0 * job.spec.tasks[victim.idx as usize].partition_mb;
                    plan.migrate(victim, dest, state_mb).ok();
                    actions.push(Action::Migrate {
                        task: victim,
                        to: dest,
                    });
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobId, ResourceVec};
    use simcore::SimTime;
    use workload::{JobArena, TaskRunState};

    #[test]
    fn packs_affinity_jobs_together() {
        let mut c = crate::util::tests::test_cluster(4);
        // An existing 2-GPU job sits on server 3.
        let mut resident = crate::util::tests::test_job(1, 2);
        c.place(
            TaskId::new(JobId(1), 0),
            ServerId(3),
            resident.spec.tasks[0].demand,
            resident.spec.tasks[0].gpu_share,
        )
        .unwrap();
        resident.task_states[0] = TaskRunState::Running {
            server: ServerId(3),
            gpu: 0,
        };
        // Another 2-GPU job arrives (affinity match), and an 8-GPU-class
        // single-task job for contrast.
        let newcomer = crate::util::tests::test_job(2, 2);
        let jobs: JobArena = [(JobId(1), resident), (JobId(2), newcomer)].into();
        let queue = vec![TaskId::new(JobId(2), 0)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = Gandiva::new().schedule(&ctx);
        assert!(
            actions.contains(&Action::Place {
                task: TaskId::new(JobId(2), 0),
                server: ServerId(3)
            }),
            "{actions:?}"
        );
    }

    #[test]
    fn migrates_off_overloaded_gpu() {
        let mut c = crate::util::tests::test_cluster(2);
        let mut job = crate::util::tests::test_job(1, 3);
        // Stack all three tasks on server 0, GPU 0 → 1.5 load > 0.9.
        for i in 0..3 {
            c.place_on_gpu(
                TaskId::new(JobId(1), i),
                ServerId(0),
                ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                0.5,
                0,
            )
            .unwrap();
            job.task_states[i as usize] = TaskRunState::Running {
                server: ServerId(0),
                gpu: 0,
            };
        }
        let jobs: JobArena = [(JobId(1), job)].into();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &[],
        };
        let actions = Gandiva::new().schedule(&ctx);
        assert!(
            actions.iter().any(|a| matches!(a, Action::Migrate { .. })),
            "{actions:?}"
        );
    }
}
