//! "RL" — Mirhoseini-style RL device placement \[39\].
//!
//! §2/§4.1: "Mirhoseini et al. applied RL in job scheduling in a GPU
//! cluster to minimize the average JCT. The scheduler scans all tasks
//! and then maps the tasks to the appropriate GPUs." Crucially, per
//! §3.4, previous RL schedulers "do not aim to improve accuracy or
//! consider ML features" — so this baseline:
//!
//! * featurises candidates with computation/server information only
//!   (no iteration importance, no loss reduction, no partition size,
//!   no urgency);
//! * trains on the JCT component `g1` of the reward alone;
//! * starts exploring immediately (no MLF-H imitation bootstrap).

use crate::util::FULL;
use cluster::{Cluster, Resource, ServerId, TaskId};
use mlfs::{Action, RewardComponents, Scheduler, SchedulerContext};
use rl::{FeatureBatch, ReinforceTrainer, ScoringPolicy, Step, TrainerConfig};
use simcore::SimRng;
use workload::JobState;

/// Feature dimensionality: 6 task dims + 7 server dims.
const DIM: usize = 13;

fn squash(x: f64) -> f64 {
    let x = x.max(0.0);
    x / (1.0 + x)
}

fn features_into(
    cluster: &Cluster,
    job: &JobState,
    task: TaskId,
    server: Option<ServerId>,
    now: simcore::SimTime,
    out: &mut FeatureBatch,
) {
    let t = &job.spec.tasks[task.idx as usize];
    let row = out.push_row();
    row[0] = squash(job.remaining_runtime().as_hours_f64());
    row[1] = squash(job.task_waiting_time(task.idx as usize, now).as_hours_f64());
    row[2] = t.gpu_share;
    row[3] = squash(t.demand.get(Resource::Cpu) / 8.0);
    row[4] = squash(t.demand.get(Resource::Memory) / 32.0);
    row[5] = squash(t.demand.get(Resource::NetBw) / 250.0);
    match server {
        Some(sid) => {
            let srv = cluster.server(sid);
            let u = srv.utilization();
            row[6] = u.get(Resource::GpuCompute);
            row[7] = u.get(Resource::Cpu);
            row[8] = u.get(Resource::Memory);
            row[9] = u.get(Resource::NetBw);
            row[10] = srv.gpu_utilization(srv.least_loaded_gpu());
            row[11] = if srv.can_host(&t.demand, t.gpu_share, FULL) {
                0.0
            } else {
                1.0
            };
            row[12] = 0.0;
        }
        // Queue option: dims 6..12 stay zero, sentinel flag set.
        None => row[12] = 1.0,
    }
}

/// The JCT-only RL placement baseline.
pub struct RlPlacer {
    trainer: ReinforceTrainer,
    rng: SimRng,
    pending: Vec<Step>,
    episode: Vec<(Step, f64)>,
    /// Candidate-set cap (as in MLF-RL, for bounded decision cost).
    pub max_candidates: usize,
    /// Rounds per training episode.
    pub train_interval: usize,
    /// Sample (explore) vs greedy action selection.
    pub explore: bool,
}

impl RlPlacer {
    /// New RL placement baseline.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5EED_BA5E);
        let policy = ScoringPolicy::new(DIM, &[32, 16], &mut rng);
        RlPlacer {
            trainer: ReinforceTrainer::new(policy, TrainerConfig::default()),
            rng,
            pending: Vec::new(),
            episode: Vec::new(),
            max_candidates: 12,
            train_interval: 8,
            explore: true,
        }
    }

    /// Snapshot the policy (for pre-training transfer).
    pub fn export_policy(&self) -> rl::ScoringPolicy {
        self.trainer.policy.clone()
    }

    /// Replace the policy with a pre-trained one.
    pub fn import_policy(&mut self, policy: rl::ScoringPolicy) {
        self.trainer.policy = policy;
    }
}

impl Scheduler for RlPlacer {
    fn name(&self) -> &'static str {
        "RL"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut plan = ctx.cluster.clone();
        // "Scans all tasks" in queue order, but with gang semantics: if
        // the policy parks any task of a job in the queue, the whole
        // job stays queued this round (DL workers are gang-scheduled).
        let mut jobs_seen: Vec<cluster::JobId> = Vec::new();
        for t in ctx.queue {
            if !jobs_seen.contains(&t.job) {
                jobs_seen.push(t.job);
            }
        }
        for job_id in jobs_seen {
            let tasks: Vec<TaskId> = ctx
                .queue
                .iter()
                .copied()
                .filter(|t| t.job == job_id)
                .collect();
            let job = &ctx.jobs[&job_id];
            let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
            let mut complete = true;
            for &task in &tasks {
                let spec = &job.spec.tasks[task.idx as usize];
                let mut servers: Vec<(f64, ServerId)> = plan
                    .servers()
                    .iter()
                    .filter(|s| s.can_host(&spec.demand, spec.gpu_share, FULL))
                    .map(|s| (s.overload_degree(), s.id))
                    .collect();
                servers.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let servers: Vec<ServerId> = servers
                    .into_iter()
                    .take(self.max_candidates)
                    .map(|(_, s)| s)
                    .collect();
                let mut feats = FeatureBatch::with_capacity(DIM, servers.len() + 1);
                for &s in &servers {
                    features_into(&plan, job, task, Some(s), ctx.now, &mut feats);
                }
                features_into(&plan, job, task, None, ctx.now, &mut feats);
                let choice = if self.explore {
                    self.trainer.policy.sample(&feats, &mut self.rng)
                } else {
                    self.trainer.policy.greedy(&feats)
                };
                self.pending.push(Step {
                    candidates: feats,
                    action: choice,
                });
                if choice < servers.len()
                    && plan
                        .place(task, servers[choice], spec.demand, spec.gpu_share)
                        .is_ok()
                {
                    placed.push((task, servers[choice]));
                } else {
                    // Queue chosen, or the host refused (went down
                    // mid-round): the gang fails and rolls back.
                    complete = false;
                    break;
                }
            }
            if complete && placed.len() == tasks.len() {
                for (task, server) in placed {
                    actions.push(Action::Place { task, server });
                }
            } else {
                for (task, _) in placed {
                    plan.remove(task);
                }
            }
        }
        actions
    }

    fn observe_reward(&mut self, reward: &RewardComponents) {
        // JCT objective only.
        let r = reward.g[0];
        for s in self.pending.drain(..) {
            self.episode.push((s, r));
        }
        if self.episode.len() >= self.train_interval {
            let ep: Vec<(Step, f64)> = self.episode.drain(..).collect();
            self.trainer.train_episode(&ep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simcore::SimTime;
    use workload::JobArena;

    #[test]
    fn emits_valid_placements_and_trains() {
        let c = crate::util::tests::test_cluster(3);
        let job = crate::util::tests::test_job(1, 4);
        let queue: Vec<TaskId> = (0..4).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), job)].into();
        let mut s = RlPlacer::new(3);
        s.train_interval = 2;
        for round in 0..4 {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(round + 1),
                jobs: &jobs,
                cluster: &c,
                queue: &queue,
            };
            let actions = s.schedule(&ctx);
            for a in &actions {
                match a {
                    Action::Place { task, server } => {
                        assert!(queue.contains(task));
                        assert!((server.0 as usize) < c.server_count());
                    }
                    other => panic!("unexpected action {other:?}"),
                }
            }
            s.observe_reward(&RewardComponents {
                g: [0.3, 0.0, 0.0, 0.0, 0.0],
            });
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let c = crate::util::tests::test_cluster(3);
        let job = crate::util::tests::test_job(1, 3);
        let queue: Vec<TaskId> = (0..3).map(|i| TaskId::new(JobId(1), i)).collect();
        let jobs: JobArena = [(JobId(1), job)].into();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let a = RlPlacer::new(11).schedule(&ctx);
        let b = RlPlacer::new(11).schedule(&ctx);
        assert_eq!(a, b);
    }
}
