//! "TensorFlow" — the Borg-style fair scheduler \[53\].
//!
//! "TensorFlow uses the Borg resource manager that aims to achieve
//! fairness of resource allocation among different jobs" (§2). We
//! implement max-min fair sharing over GPU allocation: each round,
//! queued tasks are ordered by their job's current GPU share
//! (ascending — the job holding the least runs first), breaking ties
//! by arrival. No ML features, no deadline awareness, no overload
//! handling — exactly the gaps Figs. 4–5 expose.

use crate::util::{place_in_order, running_gpu_share, FULL};
use cluster::TaskId;
use mlfs::{Action, Scheduler, SchedulerContext};

/// Borg-style fair scheduler (the paper's "TensorFlow" line).
#[derive(Debug, Clone, Default)]
pub struct BorgFair;

impl BorgFair {
    /// New fair scheduler.
    pub fn new() -> Self {
        BorgFair
    }
}

impl Scheduler for BorgFair {
    fn name(&self) -> &'static str {
        "TensorFlow"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut order: Vec<TaskId> = ctx.queue.to_vec();
        order.sort_by(|a, b| {
            let sa = running_gpu_share(ctx, a.job);
            let sb = running_gpu_share(ctx, b.job);
            sa.partial_cmp(&sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    ctx.jobs[&a.job]
                        .spec
                        .arrival
                        .cmp(&ctx.jobs[&b.job].spec.arrival)
                })
                .then_with(|| a.cmp(b))
        });
        place_in_order(ctx, &order, FULL).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobId, ServerId};
    use simcore::SimTime;
    use workload::{JobArena, TaskRunState};

    #[test]
    fn starved_job_goes_first() {
        let mut c = crate::util::tests::test_cluster(4);
        let mut j1 = crate::util::tests::test_job(1, 2);
        let j2 = crate::util::tests::test_job(2, 2);
        // Job 1 already runs its task 0.
        c.place(
            TaskId::new(JobId(1), 0),
            ServerId(0),
            j1.spec.tasks[0].demand,
            j1.spec.tasks[0].gpu_share,
        )
        .unwrap();
        j1.task_states[0] = TaskRunState::Running {
            server: ServerId(0),
            gpu: 0,
        };
        let jobs: JobArena = [(JobId(1), j1), (JobId(2), j2)].into();
        // Job 1's remaining task queued before job 2's tasks.
        let queue = vec![
            TaskId::new(JobId(1), 1),
            TaskId::new(JobId(2), 0),
            TaskId::new(JobId(2), 1),
        ];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = BorgFair::new().schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .unwrap();
        // Fairness puts job 2 (zero share) ahead of job 1's second task.
        assert_eq!(first.job, JobId(2));
    }
}
