//! Tiresias \[21\] — 2D least-attained-service with Gittins-style
//! promotion and preemption.
//!
//! §2: "for jobs without prior knowledge of its task running time, the
//! least-attained-service principle gives higher priorities to the
//! jobs that received less service time; for jobs with known task
//! running time distribution, the priority is determined by how likely
//! the job can complete within the next service epoch."
//!
//! Attained service is `Σ (GPU share × run time)`; jobs with a runtime
//! prediction (`previously_run`) rank by remaining runtime instead
//! (shortest-remaining-first ≈ highest completion likelihood in the
//! next epoch). Under contention, a waiting job whose priority beats a
//! running job's by a margin triggers preemption of that job's tasks —
//! Tiresias' defining mechanism.

use crate::util::{try_gang_place, FULL};
use cluster::{JobId, TaskId};
use mlfs::{state_from_json, state_to_json, Action, Scheduler, SchedulerContext};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use workload::{JobState, TaskRunState};

/// Evolving Tiresias state carried across a service restart: the
/// attained-service ledger that drives every ranking decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TiresiasState {
    attained: BTreeMap<JobId, f64>,
    last_round: Option<SimTime>,
}

/// Attained GPU service per job, maintained across rounds.
#[derive(Debug, Clone, Default)]
pub struct Tiresias {
    /// gpu-share-seconds of service each job has attained.
    attained: BTreeMap<JobId, f64>,
    last_round: Option<SimTime>,
    /// Max preemptions per round (Tiresias bounds preemption churn).
    preemption_budget: usize,
}

impl Tiresias {
    /// New Tiresias scheduler.
    pub fn new() -> Self {
        Tiresias {
            attained: BTreeMap::new(),
            last_round: None,
            preemption_budget: 2,
        }
    }

    /// Lower = runs first: discretized two-dimensional LAS. Attained
    /// GPU service is quantized into priority queues (Tiresias'
    /// MLQ), FIFO within a queue. Jobs with a known runtime
    /// distribution get a Gittins-style promotion when they are
    /// likely to finish within one more service epoch — Tiresias has
    /// *no* full SRPT oracle.
    fn rank(&self, job: &JobState) -> f64 {
        let attained = self.attained.get(&job.spec.id).copied().unwrap_or(0.0);
        // Queue thresholds in GPU-seconds (powers of ten).
        let queue = attained.max(1.0).log10().floor().max(0.0);
        if job.spec.previously_run && job.remaining_runtime().as_secs_f64() < 600.0 {
            // Likely to complete in the next epoch: top queue.
            return -1.0;
        }
        queue
    }

    fn update_attained(&mut self, ctx: &SchedulerContext<'_>) {
        let now = ctx.now;
        if let Some(prev) = self.last_round {
            let dt = now.since(prev).as_secs_f64();
            for job in ctx.active_jobs() {
                let share: f64 = job
                    .task_states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
                    .map(|(i, _)| job.spec.tasks[i].gpu_share)
                    .sum();
                if share > 0.0 {
                    *self.attained.entry(job.spec.id).or_insert(0.0) += share * dt;
                }
            }
        }
        self.last_round = Some(now);
    }
}

impl Scheduler for Tiresias {
    fn name(&self) -> &'static str {
        "Tiresias"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        self.update_attained(ctx);
        let mut actions = Vec::new();
        let mut plan = ctx.cluster.clone();

        // Waiting jobs in rank order (ascending — lower rank first).
        let mut waiting: Vec<JobId> = Vec::new();
        for t in ctx.queue {
            if !waiting.contains(&t.job) {
                waiting.push(t.job);
            }
        }
        waiting.sort_by(|a, b| {
            let ra = self.rank(&ctx.jobs[a]);
            let rb = self.rank(&ctx.jobs[b]);
            ra.partial_cmp(&rb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });

        let mut budget = self.preemption_budget;
        let mut evicted_jobs: Vec<JobId> = Vec::new();
        for job in waiting {
            let tasks: Vec<TaskId> = ctx.queue.iter().copied().filter(|t| t.job == job).collect();
            if try_gang_place(&mut plan, ctx, &tasks, FULL, &mut actions) {
                continue;
            }
            // No room: consider preempting the worst-ranked running job
            // if it ranks much worse than this job (gang preemption).
            if budget == 0 {
                continue;
            }
            let my_rank = self.rank(&ctx.jobs[&job]);
            let victim_job = ctx
                .active_jobs()
                .filter(|j| {
                    j.spec.id != job && j.running_tasks() > 0 && !evicted_jobs.contains(&j.spec.id)
                })
                .max_by(|a, b| {
                    self.rank(a)
                        .partial_cmp(&self.rank(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|j| j.spec.id);
            if let Some(vj) = victim_job {
                if self.rank(&ctx.jobs[&vj]) > my_rank * 2.0 + 1.0 {
                    evicted_jobs.push(vj);
                    for (i, st) in ctx.jobs[&vj].task_states.iter().enumerate() {
                        if matches!(st, TaskRunState::Running { .. }) {
                            let t = TaskId::new(vj, i as u16);
                            plan.remove(t);
                            actions.push(Action::Evict { task: t });
                        }
                    }
                    budget -= 1;
                    // Retry this gang once after the eviction.
                    try_gang_place(&mut plan, ctx, &tasks, FULL, &mut actions);
                }
            }
        }
        actions
    }

    fn export_state(&self) -> Option<String> {
        Some(state_to_json(&TiresiasState {
            attained: self.attained.clone(),
            last_round: self.last_round,
        }))
    }

    fn import_state(&mut self, state: &str) -> bool {
        match state_from_json::<TiresiasState>(state) {
            Some(st) => {
                self.attained = st.attained;
                self.last_round = st.last_round;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ResourceVec, ServerId};
    use workload::JobArena;

    #[test]
    fn least_attained_service_runs_first() {
        let c = crate::util::tests::test_cluster(4);
        let mut veteran = crate::util::tests::test_job(1, 1);
        let mut rookie = crate::util::tests::test_job(2, 1);
        veteran.spec.previously_run = false;
        rookie.spec.previously_run = false;
        let jobs: JobArena = [(JobId(1), veteran), (JobId(2), rookie)].into();
        let queue = vec![TaskId::new(JobId(1), 0), TaskId::new(JobId(2), 0)];
        let mut t = Tiresias::new();
        // Pre-load attained service for the veteran.
        t.attained.insert(JobId(1), 10_000.0);
        let ctx = SchedulerContext {
            now: SimTime::from_mins(10),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = t.schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .unwrap();
        assert_eq!(first.job, JobId(2));
    }

    #[test]
    fn known_runtime_jobs_rank_by_remaining_time() {
        let c = crate::util::tests::test_cluster(4);
        let mut long = crate::util::tests::test_job(1, 1);
        let mut short = crate::util::tests::test_job(2, 1);
        long.spec.predicted_runtime = simcore::SimDuration::from_hours(10);
        short.spec.predicted_runtime = simcore::SimDuration::from_mins(5);
        let jobs: JobArena = [(JobId(1), long), (JobId(2), short)].into();
        let queue = vec![TaskId::new(JobId(1), 0), TaskId::new(JobId(2), 0)];
        let mut t = Tiresias::new();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = t.schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .unwrap();
        assert_eq!(first.job, JobId(2));
    }

    #[test]
    fn preempts_much_worse_job_under_contention() {
        // One tiny server fully held by a long job; a short job waits.
        let mut c = cluster::Cluster::new(&cluster::ClusterConfig {
            servers: 1,
            gpus_per_server: 1,
            gpu_capacity: 1.0,
            cpu_cores: 8.0,
            memory_gb: 64.0,
            nic_mbps: 1000.0,
            topology: cluster::Topology::default_flat(),
        });
        let mut long = crate::util::tests::test_job(1, 1);
        long.spec.predicted_runtime = simcore::SimDuration::from_hours(20);
        long.spec.tasks[0].demand = ResourceVec::new(1.0, 4.0, 16.0, 100.0);
        long.spec.tasks[0].gpu_share = 1.0;
        c.place(
            TaskId::new(JobId(1), 0),
            ServerId(0),
            ResourceVec::new(1.0, 4.0, 16.0, 100.0),
            1.0,
        )
        .unwrap();
        long.task_states[0] = TaskRunState::Running {
            server: ServerId(0),
            gpu: 0,
        };
        let mut short = crate::util::tests::test_job(2, 1);
        short.spec.predicted_runtime = simcore::SimDuration::from_mins(2);
        short.spec.tasks[0].demand = ResourceVec::new(1.0, 4.0, 16.0, 100.0);
        short.spec.tasks[0].gpu_share = 1.0;
        let jobs: JobArena = [(JobId(1), long), (JobId(2), short)].into();
        let queue = vec![TaskId::new(JobId(2), 0)];
        let mut t = Tiresias::new();
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = t.schedule(&ctx);
        assert!(
            actions.contains(&Action::Evict {
                task: TaskId::new(JobId(1), 0)
            }),
            "{actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Place { task, .. } if task.job == JobId(2))),
            "{actions:?}"
        );
    }
}
