//! Plain FIFO placement — the building block for Gandiva and a
//! sanity-check baseline.

use crate::util::{place_in_order, FULL};
use mlfs::{Action, Scheduler, SchedulerContext};

/// First-in-first-out scheduler: queue order is arrival order (the
/// engine appends on arrival), placement is least-loaded-feasible.
#[derive(Debug, Clone, Default)]
pub struct Fifo;

impl Fifo {
    /// New FIFO scheduler.
    pub fn new() -> Self {
        Fifo
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        place_in_order(ctx, ctx.queue, FULL).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobId, TaskId};
    use simcore::SimTime;
    use workload::JobArena;

    #[test]
    fn preserves_queue_order() {
        let c = crate::util::tests::test_cluster(4);
        let j1 = crate::util::tests::test_job(1, 2);
        let j2 = crate::util::tests::test_job(2, 2);
        let jobs: JobArena = [(JobId(1), j1), (JobId(2), j2)].into();
        // Queue with job 2 first — FIFO must respect that.
        let queue = vec![
            TaskId::new(JobId(2), 0),
            TaskId::new(JobId(2), 1),
            TaskId::new(JobId(1), 0),
            TaskId::new(JobId(1), 1),
        ];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = Fifo::new().schedule(&ctx);
        let placed: Vec<TaskId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(placed, queue);
    }
}
