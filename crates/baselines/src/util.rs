//! Placement helpers shared by the baselines.

use cluster::{Cluster, ServerId, TaskId};
use mlfs::{Action, SchedulerContext};

/// Overload threshold the baselines admit tasks against. They have no
/// tunable `h_r`; full capacity is the natural admission limit.
pub const FULL: f64 = 1.0;

/// The least-loaded (by overload degree) server that can host the
/// task at threshold `limit`, or `None`.
pub fn least_loaded_host(
    plan: &Cluster,
    ctx: &SchedulerContext<'_>,
    task: TaskId,
    limit: f64,
) -> Option<ServerId> {
    let job = &ctx.jobs[&task.job];
    let spec = &job.spec.tasks[task.idx as usize];
    plan.servers()
        .iter()
        .filter(|s| s.can_host(&spec.demand, spec.gpu_share, limit))
        .map(|s| (s.overload_degree(), s.id))
        .min_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        })
        .map(|(_, s)| s)
}

/// Speculatively place `task` on `server` in `plan` and record the
/// corresponding action. A refusal (the server went down mid-round)
/// simply drops the placement — the task stays queued for next round.
pub fn commit_place(
    plan: &mut Cluster,
    ctx: &SchedulerContext<'_>,
    task: TaskId,
    server: ServerId,
    actions: &mut Vec<Action>,
) {
    let job = &ctx.jobs[&task.job];
    let spec = &job.spec.tasks[task.idx as usize];
    if plan
        .place(task, server, spec.demand, spec.gpu_share)
        .is_ok()
    {
        actions.push(Action::Place { task, server });
    }
}

/// Place queue tasks in the given order with **gang semantics**: all
/// queued tasks of a job are placed atomically or not at all
/// (production DL schedulers — Borg, Tiresias, Gandiva — gang-schedule
/// a job's workers; partial placements would hold resources without
/// making progress). Job order is the order of first appearance in
/// `order`; within a job, tasks keep their `order` positions.
/// `pick_host` chooses the server for each task (least-loaded by
/// default; Gandiva passes its affinity variant).
pub fn place_in_order_gang(
    ctx: &SchedulerContext<'_>,
    order: &[TaskId],
    limit: f64,
    mut pick_host: impl FnMut(&Cluster, &SchedulerContext<'_>, TaskId) -> Option<ServerId>,
) -> (Vec<Action>, Cluster) {
    let mut plan = ctx.cluster.clone();
    let mut actions = Vec::new();
    // Jobs in first-appearance order.
    let mut jobs_seen: Vec<cluster::JobId> = Vec::new();
    for t in order {
        if !jobs_seen.contains(&t.job) {
            jobs_seen.push(t.job);
        }
    }
    for job in jobs_seen {
        let tasks: Vec<TaskId> = order.iter().copied().filter(|t| t.job == job).collect();
        let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
        let mut ok = true;
        for &task in &tasks {
            let spec = &ctx.jobs[&task.job].spec.tasks[task.idx as usize];
            match pick_host(&plan, ctx, task) {
                Some(server)
                    if plan
                        .place(task, server, spec.demand, spec.gpu_share)
                        .is_ok() =>
                {
                    placed.push((task, server));
                }
                // No host, or the picked host refused (went down
                // mid-round): the gang fails and rolls back.
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for (task, server) in placed {
                actions.push(Action::Place { task, server });
            }
        } else {
            // Roll the partial gang back.
            for (task, _) in placed {
                plan.remove(task);
            }
        }
    }
    let _ = limit;
    (actions, plan)
}

/// Attempt to place all of `tasks` (one job's gang) on `plan` with the
/// least-loaded picker, appending Place actions on success. On failure
/// nothing is placed and `false` is returned.
pub fn try_gang_place(
    plan: &mut Cluster,
    ctx: &SchedulerContext<'_>,
    tasks: &[TaskId],
    limit: f64,
    actions: &mut Vec<Action>,
) -> bool {
    let mut placed: Vec<(TaskId, ServerId)> = Vec::new();
    for &task in tasks {
        let spec = &ctx.jobs[&task.job].spec.tasks[task.idx as usize];
        match least_loaded_host(plan, ctx, task, limit) {
            Some(server)
                if plan
                    .place(task, server, spec.demand, spec.gpu_share)
                    .is_ok() =>
            {
                placed.push((task, server));
            }
            // No host, or the picked host refused (went down
            // mid-round): roll the partial gang back.
            _ => {
                for (t, _) in placed {
                    plan.remove(t);
                }
                return false;
            }
        }
    }
    for (task, server) in placed {
        actions.push(Action::Place { task, server });
    }
    true
}

/// [`place_in_order_gang`] with the default least-loaded host picker.
pub fn place_in_order(
    ctx: &SchedulerContext<'_>,
    order: &[TaskId],
    limit: f64,
) -> (Vec<Action>, Cluster) {
    place_in_order_gang(ctx, order, limit, |plan, ctx, task| {
        least_loaded_host(plan, ctx, task, limit)
    })
}

/// Total GPU share consumed by a job's currently running tasks.
pub fn running_gpu_share(ctx: &SchedulerContext<'_>, job: cluster::JobId) -> f64 {
    let j = &ctx.jobs[&job];
    j.task_states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, workload::TaskRunState::Running { .. }))
        .map(|(i, _)| j.spec.tasks[i].gpu_share)
        .sum()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cluster::{ClusterConfig, JobId, ResourceVec, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::{CommStructure, Dag};
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{JobArena, JobState, LearningProfile, MlAlgorithm};

    pub(crate) fn test_cluster(servers: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    pub(crate) fn test_job(id: u32, n: usize) -> JobState {
        let jid = JobId(id);
        let tasks = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 50.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(6),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 300,
            tasks,
            dag: Dag::sequential(n),
            comm: CommStructure::AllReduce,
            comm_mb: 60.0,
            model_mb: 50.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.01, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    #[test]
    fn least_loaded_prefers_emptier_server() {
        let mut c = test_cluster(2);
        c.place(
            TaskId::new(JobId(9), 0),
            ServerId(0),
            ResourceVec::new(1.0, 8.0, 60.0, 400.0),
            1.0,
        )
        .unwrap();
        let job = test_job(1, 1);
        let jobs: JobArena = [(JobId(1), job)].into();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &[],
        };
        assert_eq!(
            least_loaded_host(&c, &ctx, TaskId::new(JobId(1), 0), FULL),
            Some(ServerId(1))
        );
    }

    #[test]
    fn gang_placement_is_all_or_nothing() {
        let c = test_cluster(1);
        // A 16-task job cannot fully fit 2 GPUs (0.5 share each → 4
        // task slots): gang semantics place *nothing*.
        let big = test_job(1, 16);
        // A 4-task job fits exactly: all 4 place.
        let small = test_job(2, 4);
        let jobs: JobArena = [(JobId(1), big), (JobId(2), small)].into();
        let queue: Vec<TaskId> = (0..16)
            .map(|i| TaskId::new(JobId(1), i))
            .chain((0..4).map(|i| TaskId::new(JobId(2), i)))
            .collect();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let (actions, plan) = place_in_order(&ctx, &queue, FULL);
        let placed: Vec<TaskId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(placed.len(), 4, "{actions:?}");
        assert!(placed.iter().all(|t| t.job == JobId(2)), "{placed:?}");
        assert!(!plan.server(ServerId(0)).is_overloaded(1.01));
    }
}
