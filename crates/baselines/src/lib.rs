//! # baselines — the paper's comparison schedulers
//!
//! Implementations of every scheduler MLFS is evaluated against
//! (§4.1, "Comparison methods"), behind the same
//! [`mlfs::Scheduler`] trait:
//!
//! | Name | Paper description (§2) |
//! |------|-------------------------|
//! | [`Fifo`] | plain first-in-first-out placement (building block) |
//! | [`BorgFair`] | "TensorFlow uses the Borg resource manager that aims to achieve fairness of resource allocation among different jobs" |
//! | [`Slaq`] | "chooses the job with the maximum loss reduction per unit runtime" |
//! | [`Tiresias`] | 2D least-attained-service with Gittins-style promotion for jobs with known runtimes, plus preemption |
//! | [`Gandiva`] | FIFO + affinity packing + utilization-driven GPU migration |
//! | [`Graphene`] | dependency-aware: "troublesome" tasks (many dependents, tough-to-pack demand) first |
//! | [`HyperSched`] | deadline-bounded accuracy maximisation; pauses jobs with negligible accuracy gain |
//! | [`RlPlacer`] | Mirhoseini-style RL device placement minimising JCT only (no ML features, no accuracy objective) |
//!
//! All baselines intentionally *lack* MLFS's ML-feature priority,
//! multi-resource overload handling (except Gandiva's GPU-only
//! variant) and load control — those gaps are what the figures
//! measure.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod borg;
pub mod fifo;
pub mod gandiva;
pub mod graphene;
pub mod hypersched;
pub mod rl_placer;
pub mod slaq;
pub mod tiresias;
pub mod util;

pub use borg::BorgFair;
pub use fifo::Fifo;
pub use gandiva::Gandiva;
pub use graphene::Graphene;
pub use hypersched::HyperSched;
pub use rl_placer::RlPlacer;
pub use slaq::Slaq;
pub use tiresias::Tiresias;

use mlfs::Scheduler;

/// Every scheduler evaluated in Figs. 4–5, by legend name. `seed`
/// feeds the RL-based entries.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Scheduler>> {
    let p = mlfs::Params::default();
    Some(match name {
        "MLF-H" => Box::new(mlfs::Mlfs::heuristic(p)),
        "MLF-RL" => Box::new(mlfs::Mlfs::rl(
            p,
            mlfs::MlfRlConfig {
                seed,
                ..Default::default()
            },
        )),
        "MLFS" => Box::new(mlfs::Mlfs::full(
            p,
            mlfs::MlfRlConfig {
                seed,
                ..Default::default()
            },
        )),
        "TensorFlow" => Box::new(BorgFair::new()),
        "SLAQ" => Box::new(Slaq::new()),
        "Tiresias" => Box::new(Tiresias::new()),
        "Gandiva" => Box::new(Gandiva::new()),
        "Graphene" => Box::new(Graphene::new()),
        "HyperSched" => Box::new(HyperSched::new()),
        "RL" => Box::new(RlPlacer::new(seed)),
        "FIFO" => Box::new(Fifo::new()),
        _ => return None,
    })
}

/// The ten legend names of Figs. 4–5, in the paper's order.
pub const FIGURE_SCHEDULERS: [&str; 10] = [
    "MLF-H",
    "MLF-RL",
    "MLFS",
    "TensorFlow",
    "RL",
    "Tiresias",
    "SLAQ",
    "Graphene",
    "Gandiva",
    "HyperSched",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_scheduler_constructs() {
        for name in FIGURE_SCHEDULERS {
            let s = by_name(name, 7).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.name(), name);
        }
        assert!(by_name("nope", 0).is_none());
        assert_eq!(by_name("FIFO", 0).unwrap().name(), "FIFO");
    }
}
