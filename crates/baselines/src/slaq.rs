//! SLAQ \[58\] — quality-driven scheduling.
//!
//! "SLAQ predicts the loss reduction and runtime … and then chooses
//! the job with the maximum loss reduction per unit runtime" (§2).
//! Each round, jobs are ranked by the predicted loss reduction of
//! their next iteration divided by the iteration's runtime; the
//! best-scoring job's tasks are placed first. Pure quality focus — no
//! deadline, no JCT objective, no overload handling — which is why the
//! paper finds SLAQ's JCT the worst of the field.

use crate::util::{place_in_order, FULL};
use cluster::TaskId;
use mlfs::{Action, Scheduler, SchedulerContext};
use std::collections::BTreeMap;

/// The SLAQ scheduler.
#[derive(Debug, Clone, Default)]
pub struct Slaq;

impl Slaq {
    /// New SLAQ scheduler.
    pub fn new() -> Self {
        Slaq
    }

    /// Loss reduction per unit runtime of the job's next iteration.
    fn score(job: &workload::JobState) -> f64 {
        let next = job.iterations + 1.0;
        let dl = job.spec.curve.loss_at(job.iterations) - job.spec.curve.loss_at(next);
        let iter_secs = job.spec.compute_critical_path().as_secs_f64().max(1e-6);
        dl / iter_secs
    }
}

impl Scheduler for Slaq {
    fn name(&self) -> &'static str {
        "SLAQ"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut scores: BTreeMap<cluster::JobId, f64> = BTreeMap::new();
        for job in ctx.active_jobs() {
            scores.insert(job.spec.id, Self::score(job));
        }
        // SLAQ reallocates *every epoch*: when a waiting job promises
        // more loss reduction per unit time than a running one, the
        // running job loses its resources. Converged jobs therefore
        // starve — the paper's explanation for SLAQ's worst-of-field
        // JCT ("SLAQ only aims to maximize the accuracy improvement
        // across jobs rather than JCT").
        let mut actions = Vec::new();
        let best_waiting = ctx
            .queue
            .iter()
            .filter_map(|t| scores.get(&t.job))
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if best_waiting > f64::NEG_INFINITY {
            // SLAQ bounds per-epoch reallocation (it adjusts a few
            // cores at a time, not the whole cluster): evict at most
            // two of the lowest-scoring running jobs per round.
            let mut victims: Vec<(f64, cluster::JobId)> = ctx
                .active_jobs()
                .filter(|j| j.running_tasks() > 0)
                .map(|j| (scores.get(&j.spec.id).copied().unwrap_or(0.0), j.spec.id))
                .filter(|(s, _)| *s * 2.0 < best_waiting)
                .collect();
            victims.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for (_, vj) in victims.into_iter().take(2) {
                for (i, st) in ctx.jobs[&vj].task_states.iter().enumerate() {
                    if matches!(st, workload::TaskRunState::Running { .. }) {
                        actions.push(Action::Evict {
                            task: TaskId::new(vj, i as u16),
                        });
                    }
                }
            }
        }
        let mut order: Vec<TaskId> = ctx.queue.to_vec();
        order.sort_by(|a, b| {
            let sa = scores.get(&a.job).copied().unwrap_or(0.0);
            let sb = scores.get(&b.job).copied().unwrap_or(0.0);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        actions.extend(place_in_order(ctx, &order, FULL).0);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simcore::SimTime;
    use workload::JobArena;

    #[test]
    fn fresh_job_outranks_converged_job() {
        let c = crate::util::tests::test_cluster(4);
        let fresh = crate::util::tests::test_job(1, 1);
        let mut converged = crate::util::tests::test_job(2, 1);
        converged.advance(280.0); // deep into diminishing returns
        let jobs: JobArena = [(JobId(1), fresh), (JobId(2), converged)].into();
        let queue = vec![TaskId::new(JobId(2), 0), TaskId::new(JobId(1), 0)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = Slaq::new().schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(*task),
                _ => None,
            })
            .unwrap();
        assert_eq!(first.job, JobId(1));
    }
}
