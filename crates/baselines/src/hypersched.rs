//! HyperSched \[32\] — deadline-bounded accuracy maximisation.
//!
//! §2: "HyperSched aims to produce a trained model with higher
//! accuracy before the pre-set deadline under a certain resource
//! constraint. This method pauses jobs that do not increase accuracy
//! significantly and tends to assign more resources to the job with
//! more accuracy improvement before its deadline."
//!
//! Score: the accuracy still gainable before the job's deadline,
//! divided by the time it will take. Jobs whose marginal accuracy gain
//! per iteration has fallen below a threshold are *paused*: their
//! queued tasks are withheld and, under queue pressure, their running
//! tasks are evicted to make room for gainers.

use crate::util::{try_gang_place, FULL};
use cluster::{JobId, TaskId};
use mlfs::{Action, Scheduler, SchedulerContext};
use std::collections::BTreeMap;
use workload::{JobState, TaskRunState};

/// The HyperSched scheduler.
#[derive(Debug, Clone)]
pub struct HyperSched {
    /// Accuracy gain per iteration below which a job is "not
    /// increasing accuracy significantly" and gets paused.
    pub pause_gain: f64,
}

impl Default for HyperSched {
    fn default() -> Self {
        HyperSched { pause_gain: 1e-5 }
    }
}

impl HyperSched {
    /// New HyperSched scheduler.
    pub fn new() -> Self {
        HyperSched::default()
    }

    /// Marginal accuracy gain of the job's next iteration.
    fn marginal_gain(job: &JobState) -> f64 {
        let c = &job.spec.curve;
        c.accuracy_at(job.iterations + 1.0) - c.accuracy_at(job.iterations)
    }

    /// Potential accuracy improvement before the deadline, per hour of
    /// remaining work (higher = more resources).
    fn score(job: &JobState, now: simcore::SimTime) -> f64 {
        let slack_h = job.spec.deadline.since(now).as_hours_f64();
        if slack_h <= 0.0 {
            return 0.0; // past deadline: no accuracy can be banked
        }
        let iter_h = job.spec.compute_critical_path().as_hours_f64().max(1e-9);
        let doable = (slack_h / iter_h).min(job.remaining_iterations());
        let potential = job.spec.curve.accuracy_at(job.iterations + doable) - job.accuracy();
        potential / job.remaining_runtime().as_hours_f64().max(1e-3)
    }
}

impl Scheduler for HyperSched {
    fn name(&self) -> &'static str {
        "HyperSched"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut plan = ctx.cluster.clone();

        // HyperSched trains "under a certain resource constraint …
        // before the pre-set deadline": a trial past its deadline
        // whose accuracy has stopped improving is reaped (it has
        // delivered its best model). Still-improving trials keep
        // running — HyperSched pauses laggards, it does not kill
        // progressing ones.
        let mut reaped: Vec<JobId> = Vec::new();
        for job in ctx.active_jobs() {
            if ctx.now > job.spec.deadline && Self::marginal_gain(job) < self.pause_gain {
                reaped.push(job.spec.id);
                actions.push(Action::StopJob {
                    job: job.spec.id,
                    reason: workload::StopReason::OptStop,
                });
            }
        }

        // Classify the surviving jobs.
        let mut paused: Vec<JobId> = Vec::new();
        let mut scores: BTreeMap<JobId, f64> = BTreeMap::new();
        for job in ctx.active_jobs() {
            if reaped.contains(&job.spec.id) {
                continue;
            }
            if Self::marginal_gain(job) < self.pause_gain {
                paused.push(job.spec.id);
            }
            scores.insert(job.spec.id, Self::score(job, ctx.now));
        }

        // Under pressure from *gainers*, evict paused jobs' running
        // tasks. (A pause is temporary: once no gainer waits, paused
        // jobs run again — otherwise they would starve forever.)
        let gainers_waiting = ctx
            .queue
            .iter()
            .any(|t| !paused.contains(&t.job) && !reaped.contains(&t.job));
        if gainers_waiting {
            for &pj in &paused {
                for (i, st) in ctx.jobs[&pj].task_states.iter().enumerate() {
                    if matches!(st, TaskRunState::Running { .. }) {
                        let t = TaskId::new(pj, i as u16);
                        plan.remove(t);
                        actions.push(Action::Evict { task: t });
                    }
                }
            }
        }

        // Place queued tasks: gainers first (best score first), then —
        // only when no gainer waits — the paused jobs' tasks.
        let mut order: Vec<TaskId> = ctx
            .queue
            .iter()
            .copied()
            .filter(|t| !paused.contains(&t.job) && !reaped.contains(&t.job))
            .collect();
        order.sort_by(|a, b| {
            let sa = scores.get(&a.job).copied().unwrap_or(0.0);
            let sb = scores.get(&b.job).copied().unwrap_or(0.0);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        if !gainers_waiting {
            order.extend(
                ctx.queue
                    .iter()
                    .copied()
                    .filter(|t| paused.contains(&t.job) && !reaped.contains(&t.job)),
            );
        }
        // Gang placement per job, in the computed order.
        let mut jobs_seen: Vec<JobId> = Vec::new();
        for t in &order {
            if !jobs_seen.contains(&t.job) {
                jobs_seen.push(t.job);
            }
        }
        for job in jobs_seen {
            let tasks: Vec<TaskId> = order.iter().copied().filter(|t| t.job == job).collect();
            try_gang_place(&mut plan, ctx, &tasks, FULL, &mut actions);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use workload::JobArena;

    #[test]
    fn high_potential_job_places_first() {
        let c = crate::util::tests::test_cluster(4);
        let fresh = crate::util::tests::test_job(1, 1);
        let mut nearly_done = crate::util::tests::test_job(2, 1);
        nearly_done.advance(250.0); // little accuracy left to gain
        let jobs: JobArena = [(JobId(1), fresh), (JobId(2), nearly_done)].into();
        let queue = vec![TaskId::new(JobId(2), 0), TaskId::new(JobId(1), 0)];
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c,
            queue: &queue,
        };
        let actions = HyperSched::new().schedule(&ctx);
        let first = actions
            .iter()
            .find_map(|a| match a {
                Action::Place { task, .. } => Some(task.job),
                _ => None,
            })
            .unwrap();
        assert_eq!(first, JobId(1));
    }

    #[test]
    fn pauses_saturated_jobs_under_pressure() {
        let c = crate::util::tests::test_cluster(1);
        let mut saturated = crate::util::tests::test_job(1, 1);
        // k=0.01, 300-iteration budget: advance far past saturation so
        // the marginal gain is ~0. Give it a huge iteration count via
        // direct advance (curve is what matters).
        saturated.advance(299.0);
        // Force the curve into the flat zone by checking the gain.
        assert!(HyperSched::marginal_gain(&saturated) < 1e-2);
        let mut s = HyperSched {
            pause_gain: HyperSched::marginal_gain(&saturated) * 2.0,
        };
        let mut c2 = c.clone();
        c2.place(
            TaskId::new(JobId(1), 0),
            cluster::ServerId(0),
            saturated.spec.tasks[0].demand,
            saturated.spec.tasks[0].gpu_share,
        )
        .unwrap();
        saturated.task_states[0] = TaskRunState::Running {
            server: cluster::ServerId(0),
            gpu: 0,
        };
        let hungry = crate::util::tests::test_job(2, 1);
        let jobs: JobArena = [(JobId(1), saturated), (JobId(2), hungry)].into();
        let queue = vec![TaskId::new(JobId(2), 0)];
        let ctx = SchedulerContext {
            now: SimTime::from_mins(1),
            jobs: &jobs,
            cluster: &c2,
            queue: &queue,
        };
        let actions = s.schedule(&ctx);
        assert!(
            actions.contains(&Action::Evict {
                task: TaskId::new(JobId(1), 0)
            }),
            "{actions:?}"
        );
    }
}
