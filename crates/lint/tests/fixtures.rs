//! Fixture tests: one positive and one negative case per rule, plus
//! the tricky tokenizer cases (rule tokens inside string literals, doc
//! comments, raw strings, and macro bodies) and the `lint:allow`
//! escape-hatch grammar.

use mlfs_lint::rules::{scan_source, Finding};
use mlfs_lint::workspace::check_cargo_toml;
use mlfs_lint::FilePolicy;

const DET: FilePolicy = FilePolicy {
    deterministic: true,
    hot_path: false,
};
const HOT: FilePolicy = FilePolicy {
    deterministic: false,
    hot_path: true,
};

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn scan(src: &str, policy: FilePolicy) -> Vec<Finding> {
    scan_source("fixture.rs", src, policy).0
}

// ---------------------------------------------------------------- det

#[test]
fn det_hash_collection_positive() {
    let f = scan("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }", DET);
    assert_eq!(rules_of(&f), ["det-hash-collection", "det-hash-collection"]);
    assert_eq!((f[0].line, f[0].col), (1, 17));
    let f = scan("fn f(s: &HashSet<u8>) {}", DET);
    assert_eq!(rules_of(&f), ["det-hash-collection"]);
}

#[test]
fn det_hash_collection_negative() {
    // BTreeMap is the sanctioned container; HashMap inside strings,
    // doc comments, raw strings and char-adjacent positions is text,
    // not code.
    for src in [
        "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }",
        r#"fn f() { let s = "HashMap::iter is banned"; }"#,
        "/// Use BTreeMap, never HashMap.\nfn f() {}",
        r##"fn f() { let s = r#"HashMap"#; }"##,
        "//! HashMap is discussed here only.\nfn f() {}",
    ] {
        assert!(scan(src, DET).is_empty(), "false positive on {src:?}");
    }
}

#[test]
fn det_wall_clock_positive() {
    let f = scan("fn f() { let t = Instant::now(); }", DET);
    assert_eq!(rules_of(&f), ["det-wall-clock"]);
    let f = scan("fn f() { let t = SystemTime::now(); }", DET);
    assert_eq!(rules_of(&f), ["det-wall-clock"]);
}

#[test]
fn det_wall_clock_negative_and_import_rule() {
    // A use-statement import is reported once, as cfg-std-time, not
    // as a wall-clock read.
    let f = scan("use std::time::Instant;\nfn f() {}", DET);
    assert_eq!(rules_of(&f), ["cfg-std-time"]);
    // Duration is simulated-time-safe.
    assert!(scan("use std::time::Duration;\nfn f() {}", DET).is_empty());
    // `Instant` in a macro body string is text.
    assert!(scan(r#"fn f() { println!("Instant::now"); }"#, DET).is_empty());
}

#[test]
fn det_ambient_rng_positive() {
    let f = scan("fn f() { let r = thread_rng(); }", DET);
    assert_eq!(rules_of(&f), ["det-ambient-rng"]);
    let f = scan("fn f() -> f64 { rand::random() }", DET);
    assert_eq!(rules_of(&f), ["det-ambient-rng"]);
    let f = scan("fn f() { let r = StdRng::from_entropy(); }", DET);
    assert_eq!(rules_of(&f), ["det-ambient-rng"]);
}

#[test]
fn det_ambient_rng_negative() {
    // Seeded streams are the sanctioned source.
    assert!(scan("fn f() { let r = SimRng::seed_from(7); }", DET).is_empty());
    // `random` without the `rand::` path is someone's own function.
    assert!(scan("fn f() { let x = self.random(); }", DET).is_empty());
}

#[test]
fn det_float_ord_positive() {
    let f = scan("fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }", DET);
    assert_eq!(rules_of(&f), ["det-float-ord"]);
    let f = scan(
        "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\")); }",
        DET,
    );
    assert_eq!(rules_of(&f), ["det-float-ord"]);
}

#[test]
fn det_float_ord_negative() {
    // unwrap_or(Ordering::Equal) and total_cmp are the sanctioned
    // spellings.
    for src in [
        "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(Ordering::Equal); }",
        "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }",
    ] {
        assert!(scan(src, DET).is_empty(), "false positive on {src:?}");
    }
}

// ---------------------------------------------------------------- hot

#[test]
fn panic_unwrap_positive() {
    let f = scan("fn f(x: Option<u32>) -> u32 { x.unwrap() }", HOT);
    assert_eq!(rules_of(&f), ["panic-unwrap"]);
    let f = scan("fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }", HOT);
    assert_eq!(rules_of(&f), ["panic-unwrap"]);
}

#[test]
fn panic_unwrap_negative() {
    for src in [
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }",
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }",
        "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }",
        // Free function named unwrap is not a method call.
        "fn unwrap() {} fn f() { unwrap(); }",
        r#"fn f() { let s = "please .unwrap() me"; }"#,
        "/// Call `.unwrap()` at your peril.\nfn f() {}",
    ] {
        assert!(scan(src, HOT).is_empty(), "false positive on {src:?}");
    }
}

#[test]
fn panic_unwrap_exempt_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(scan(src, HOT).is_empty());
    // #[cfg(not(test))] is NOT test code.
    let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_of(&scan(src, HOT)), ["panic-unwrap"]);
}

#[test]
fn panic_macro_positive() {
    for (src, _) in [
        ("fn f() { panic!(\"boom\"); }", "panic"),
        ("fn f() { unreachable!(); }", "unreachable"),
        ("fn f() { todo!(); }", "todo"),
        ("fn f() { unimplemented!(); }", "unimplemented"),
    ] {
        assert_eq!(rules_of(&scan(src, HOT)), ["panic-macro"], "on {src:?}");
    }
}

#[test]
fn panic_macro_negative() {
    for src in [
        // The word inside a macro-body string literal is text.
        r#"fn f() { log(format!("do not panic! stay calm")); }"#,
        // A function named panic is not the macro.
        "fn panic() {} fn f() { panic(); }",
        "// panic! is discussed in this comment only\nfn f() {}",
    ] {
        assert!(scan(src, HOT).is_empty(), "false positive on {src:?}");
    }
}

#[test]
fn panic_slice_index_positive() {
    let f = scan("fn f(v: &[u32], i: usize) -> u32 { v[i] }", HOT);
    assert_eq!(rules_of(&f), ["panic-slice-index"]);
    // Chained: call result indexed.
    let f = scan("fn f() -> u32 { g()[0] }", HOT);
    assert_eq!(rules_of(&f), ["panic-slice-index"]);
}

#[test]
fn panic_slice_index_negative() {
    for src in [
        // Array literal, attribute, slice pattern, iterator.
        "fn f() { let a = [1, 2, 3]; }",
        "#[derive(Clone)]\nstruct S;",
        "fn f(v: &[u32]) -> Option<&u32> { v.get(0) }",
        "fn f() { for x in [1, 2] { let _ = x; } }",
        "fn f(s: &[u32]) { if let [a, b] = s { let _ = (a, b); } }",
    ] {
        assert!(scan(src, HOT).is_empty(), "false positive on {src:?}");
    }
}

// ------------------------------------------------------------- config

#[test]
fn cfg_registry_dep_fixtures() {
    let bad = "[dependencies]\nrand = \"0.8\"\n";
    let f = check_cargo_toml("crates/x/Cargo.toml", bad);
    assert_eq!(rules_of(&f), ["cfg-registry-dep"]);
    assert_eq!(f[0].line, 2);
    let good = "[dependencies]\nrand = { path = \"vendor/rand\" }\nsimcore.workspace = true\n";
    assert!(check_cargo_toml("crates/x/Cargo.toml", good).is_empty());
}

// --------------------------------------------------------- lint:allow

#[test]
fn lint_allow_suppresses_on_its_line() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic-unwrap) reason=\"fixture\"\n";
    let (f, stats) = scan_source("fixture.rs", src, HOT);
    assert!(f.is_empty());
    assert_eq!(stats.allows_used.get("panic-unwrap"), Some(&1));
}

#[test]
fn lint_allow_standalone_targets_next_line() {
    let src = "// lint:allow(panic-unwrap) reason=\"fixture\"\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let (f, _) = scan_source("fixture.rs", src, HOT);
    assert!(f.is_empty());
}

#[test]
fn lint_allow_wrong_rule_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(det-wall-clock) reason=\"wrong rule\"\n";
    let (f, stats) = scan_source("fixture.rs", src, HOT);
    assert_eq!(rules_of(&f), ["panic-unwrap"]);
    assert_eq!(stats.allows_unused.len(), 1);
}

#[test]
fn lint_allow_requires_reason() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic-unwrap)\n";
    let (f, _) = scan_source("fixture.rs", src, HOT);
    assert_eq!(rules_of(&f), ["lint-allow-missing-reason"]);
}

#[test]
fn lint_allow_unknown_rule_flagged() {
    let src = "fn f() {} // lint:allow(no-such-rule) reason=\"typo\"\n";
    let (f, _) = scan_source("fixture.rs", src, HOT);
    assert!(rules_of(&f).contains(&"lint-allow-unknown-rule"));
}

#[test]
fn lint_allow_multiple_rules() {
    let src = "fn f(v: &[u32], i: usize) -> u32 { v[i].clone().max(0) } // lint:allow(panic-slice-index, panic-unwrap) reason=\"fixture\"\n";
    let (f, stats) = scan_source("fixture.rs", src, HOT);
    assert!(f.is_empty());
    assert_eq!(stats.allows_used.get("panic-slice-index"), Some(&1));
}

// --------------------------------------------------------- tier map

#[test]
fn obs_crate_is_in_both_tiers() {
    // The tracer runs inside `schedule()`: it must stay deterministic
    // and panic-free like the schedulers it observes.
    let p = mlfs_lint::policy::policy_for("crates/obs/src/lib.rs");
    assert_eq!(p, FilePolicy::ALL);
    let p = mlfs_lint::policy::policy_for("crates/obs/src/event.rs");
    assert!(p.deterministic && p.hot_path);
    // Non-library obs targets stay out of scope like everywhere else.
    assert_eq!(
        mlfs_lint::policy::policy_for("crates/obs/tests/api.rs"),
        FilePolicy::NONE
    );
}

// ------------------------------------------------------- out of tier

#[test]
fn out_of_tier_files_are_silent() {
    let src = "fn f() { let m = HashMap::new(); Some(1).unwrap(); panic!(); }";
    let (f, stats) = scan_source("fixture.rs", src, FilePolicy::NONE);
    assert!(f.is_empty());
    assert_eq!(stats.allows_total, 0);
}
