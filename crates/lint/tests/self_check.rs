//! The linter applied to its own workspace: the committed tree must be
//! clean against the committed `lint-baseline.toml`, and the scan must
//! be deterministic.

use mlfs_lint::{scan_workspace, Baseline};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.toml");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let report = scan_workspace(&root, &baseline).expect("workspace scans");

    assert!(report.files_scanned > 100, "walker found the workspace");
    assert!(
        report.is_clean(),
        "workspace has findings above the committed baseline:\n{}",
        mlfs_lint::render_text(&report)
    );
    // The baseline must not be stale either: every accepted count is
    // still fully used, so burn-down progress is always locked in.
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (regenerate with --write-baseline): {:?}",
        report.stale
    );
    // Every lint:allow annotation in the tree must still suppress
    // something — the escape hatch is audited, not decorative.
    assert!(
        report.stats.allows_unused.is_empty(),
        "unused lint:allow annotations: {:?}",
        report.stats.allows_unused
    );
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = scan_workspace(&root, &Baseline::empty()).expect("scan");
    let b = scan_workspace(&root, &Baseline::empty()).expect("scan");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn deterministic_tier_has_no_determinism_findings() {
    // The determinism rules hold with zero baseline entries: only
    // panic-slice-index (hot-path tier) is currently baselined.
    let root = workspace_root();
    let report = scan_workspace(&root, &Baseline::empty()).expect("scan");
    let det: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule.starts_with("det-") || f.rule.starts_with("cfg-"))
        .collect();
    assert!(det.is_empty(), "determinism/config findings: {det:?}");
}
