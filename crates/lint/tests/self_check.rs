//! The linter applied to its own workspace: the committed tree must be
//! deep-clean against a **retired** (empty) `lint-baseline.toml`, and
//! both the scan and the interprocedural passes must be deterministic.

use mlfs_lint::{render_json, scan_workspace, scan_workspace_deep, Baseline};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_deep_clean_and_baseline_is_retired() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.toml");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    // The ratchet is strict as of PR 9: the baseline stays empty.
    assert!(
        baseline.counts.is_empty(),
        "lint-baseline.toml must stay empty — fix findings or use an \
         argued lint:allow, do not re-grow the baseline: {:?}",
        baseline.counts
    );

    let report = scan_workspace_deep(&root, &baseline, true).expect("workspace scans");
    assert!(report.files_scanned > 100, "walker found the workspace");
    assert!(
        report.is_clean(),
        "workspace has findings:\n{}",
        mlfs_lint::render_text(&report)
    );
    assert!(report.stale.is_empty(), "stale entries: {:?}", report.stale);
    // Every lint:allow annotation in the tree must still suppress
    // something — locally or in a deep pass; the escape hatch is
    // audited, not decorative.
    assert!(
        report.stats.allows_unused.is_empty(),
        "unused lint:allow annotations: {:?}",
        report.stats.allows_unused
    );
    // The deep passes actually ran over a real graph.
    let deep = report.deep.as_ref().expect("deep summary present");
    assert!(
        deep.fn_count > 300,
        "call graph too small: {}",
        deep.fn_count
    );
    assert!(
        deep.entry_count > 10,
        "entry points missing: {}",
        deep.entry_count
    );
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = scan_workspace(&root, &Baseline::empty()).expect("scan");
    let b = scan_workspace(&root, &Baseline::empty()).expect("scan");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files_scanned, b.files_scanned);
}

/// The deep pass is itself deterministic: two scans render
/// byte-identical JSON reports (the JSON deliberately carries no
/// timings). Guards against unordered iteration sneaking into the
/// analyzer — the exact bug class it polices.
#[test]
fn deep_scan_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = scan_workspace_deep(&root, &Baseline::empty(), true).expect("scan");
    let b = scan_workspace_deep(&root, &Baseline::empty(), true).expect("scan");
    assert_eq!(render_json(&a), render_json(&b));
}

#[test]
fn deterministic_tier_has_no_determinism_findings() {
    let root = workspace_root();
    let report = scan_workspace(&root, &Baseline::empty()).expect("scan");
    let det: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule.starts_with("det-") || f.rule.starts_with("cfg-"))
        .collect();
    assert!(det.is_empty(), "determinism/config findings: {det:?}");
}
