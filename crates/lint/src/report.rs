//! Rendering: rustc-style text diagnostics and a `--json` report for
//! CI artifact diffing. JSON is emitted by hand — the linter is
//! dependency-free by design (see the crate docs).

use crate::rules::Finding;
use crate::workspace::WorkspaceReport;
use std::fmt::Write as _;

/// Render the human-readable report (new findings + summary).
pub fn render_text(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &report.new_findings {
        let _ = writeln!(
            out,
            "error[{}]: {}\n  --> {}:{}:{}",
            f.rule, f.message, f.file, f.line, f.col
        );
    }
    for (key, allowed, found) in &report.exceeded {
        if *allowed > 0 {
            let _ = writeln!(
                out,
                "note: `{key}` exceeds its baseline ({found} found, {allowed} \
                 accepted) — all {found} occurrences are shown above"
            );
        }
    }
    for (key, allowed, found) in &report.stale {
        let _ = writeln!(
            out,
            "note: baseline entry `{key}` is stale ({allowed} accepted, only \
             {found} remain) — regenerate with --write-baseline to ratchet down"
        );
    }
    for (file, line, rules) in &report.stats.allows_unused {
        let _ = writeln!(
            out,
            "note: unused lint:allow({rules}) at {file}:{line} suppresses \
             nothing — remove it"
        );
    }
    let allows_fired: usize = report.stats.allows_used.values().sum();
    let _ = writeln!(
        out,
        "mlfs-lint: {} files scanned, {} new finding(s), {} baselined, \
         {} lint:allow annotation(s) ({} fired)",
        report.files_scanned,
        report.new_findings.len(),
        report.baselined,
        report.stats.allows_total,
        allows_fired,
    );
    if let Some(deep) = &report.deep {
        let _ = writeln!(
            out,
            "mlfs-lint: deep scan: {} fns, {} edges, {} entry points, \
             {} finding(s), {} suppressed by lint:allow",
            deep.fn_count,
            deep.edge_count,
            deep.entry_count,
            deep.findings.len(),
            deep.suppressed,
        );
    }
    if report.is_clean() {
        let _ = writeln!(out, "mlfs-lint: clean (no violations above baseline)");
    }
    out
}

/// Render the machine-readable report.
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    let _ = writeln!(out, "  \"baselined\": {},", report.baselined);

    out.push_str("  \"new_findings\": [\n");
    push_findings(&mut out, &report.new_findings);
    out.push_str("  ],\n");

    out.push_str("  \"all_findings\": [\n");
    push_findings(&mut out, &report.findings);
    out.push_str("  ],\n");

    out.push_str("  \"exceeded\": [");
    push_triples(&mut out, &report.exceeded);
    out.push_str("],\n");

    out.push_str("  \"stale_baseline\": [");
    push_triples(&mut out, &report.stale);
    out.push_str("],\n");

    out.push_str("  \"allows\": {\n");
    let _ = writeln!(out, "    \"total\": {},", report.stats.allows_total);
    out.push_str("    \"used\": {");
    for (i, (rule, n)) in report.stats.allows_used.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(rule), n);
    }
    out.push_str("},\n");
    out.push_str("    \"unused\": [");
    for (i, (file, line, rules)) in report.stats.allows_unused.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"file\": {}, \"line\": {line}, \"rules\": {}}}",
            json_str(file),
            json_str(rules)
        );
    }
    match &report.deep {
        None => out.push_str("]\n  }\n}\n"),
        Some(deep) => {
            out.push_str("]\n  },\n");
            out.push_str("  \"deep\": {\n");
            let _ = writeln!(out, "    \"fns\": {},", deep.fn_count);
            let _ = writeln!(out, "    \"edges\": {},", deep.edge_count);
            let _ = writeln!(out, "    \"entries\": {},", deep.entry_count);
            let _ = writeln!(out, "    \"suppressed\": {},", deep.suppressed);
            out.push_str("    \"rules\": {\n");
            // Per-rule arrays, fixed key order — empty arrays are kept
            // so CI diffs stay structurally stable.
            const DEEP_RULES: &[&str] = &[
                "deep-det-taint",
                "deep-panic-path",
                "deep-fp-reduction",
                "lint-seam-unattached",
            ];
            for (ri, rule) in DEEP_RULES.iter().enumerate() {
                let _ = write!(out, "      {}: [", json_str(rule));
                let mut first = true;
                for (f, d) in deep.findings.iter().filter(|(f, _)| f.rule == *rule) {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "{{\"file\": {}, \"line\": {}, \"col\": {}, \
                         \"entry\": {}, \"chain\": [",
                        json_str(&f.file),
                        f.line,
                        f.col,
                        json_str(&d.entry),
                    );
                    for (ci, link) in d.chain.iter().enumerate() {
                        if ci > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&json_str(link));
                    }
                    let _ = write!(out, "], \"message\": {}}}", json_str(&f.message));
                }
                out.push_str(if ri + 1 < DEEP_RULES.len() {
                    "],\n"
                } else {
                    "]\n"
                });
            }
            out.push_str("    }\n  }\n}\n");
        }
    }
    out
}

fn push_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
             \"message\": {}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message)
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
}

fn push_triples(out: &mut String, triples: &[(String, usize, usize)]) {
    for (i, (key, allowed, found)) in triples.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"key\": {}, \"accepted\": {allowed}, \"found\": {found}}}",
            json_str(key)
        );
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_clean_json() {
        let report = WorkspaceReport::default();
        let json = render_json(&report);
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"new_findings\": [\n  ]"));
    }
}
