//! Workspace call graph over [`crate::parse`] items, with name-based
//! resolution and multi-source shortest-path search.
//!
//! Resolution is deliberately over-approximate — there is no type
//! inference, so:
//!
//! * `helper(..)` / `module::helper(..)` resolves to every free fn
//!   named `helper` plus, for qualified paths, `Owner::helper` where
//!   the last-but-one segment names a workspace type;
//! * `recv.helper(..)` resolves to **all** owner-having fns named
//!   `helper` in the workspace;
//! * `Self::helper(..)` resolves via the calling fn's owner.
//!
//! Over-approximation errs toward *more* findings, which is the safe
//! direction for an analyzer whose steady state is zero findings: a
//! spurious edge shows up as a finding to triage once, not as a
//! silently missed panic path. Std/vendored methods simply resolve to
//! nothing (their names don't exist in the workspace index).

use crate::parse::{FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Graph node id: index into [`Graph::fns`].
pub type FnId = usize;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All parsed fns, in (file, line) order — deterministic.
    pub fns: Vec<Node>,
    /// Adjacency: caller → sorted, deduped callees.
    pub edges: Vec<Vec<FnId>>,
}

/// One fn in the graph, with its provenance.
#[derive(Debug, Clone)]
pub struct Node {
    pub file: String,
    pub item: FnItem,
}

impl Node {
    /// `Owner::name` or `name`, for diagnostics.
    pub fn qualified(&self) -> String {
        match &self.item.owner {
            Some(o) => format!("{o}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

impl Graph {
    /// Build the graph from parsed files. Files are processed in the
    /// order given (callers should pass a sorted list); fns keep file
    /// order so ids — and therefore all downstream reports — are
    /// stable across runs.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut g = Graph::default();
        for pf in files {
            for item in &pf.fns {
                g.fns.push(Node {
                    file: pf.file.clone(),
                    item: item.clone(),
                });
            }
        }

        // Name indexes. `by_name` holds every fn; `by_owner_name`
        // resolves qualified and `Self::` calls precisely.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut owners: BTreeSet<&str> = BTreeSet::new();
        for (id, n) in g.fns.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(id);
            if let Some(o) = &n.item.owner {
                owners.insert(o);
                by_owner_name.entry((o, &n.item.name)).or_default().push(id);
                methods.entry(&n.item.name).or_default().push(id);
            }
        }

        for (id, n) in g.fns.iter().enumerate() {
            let mut out: BTreeSet<FnId> = BTreeSet::new();
            for call in &n.item.calls {
                let name = call.path.last().map(String::as_str).unwrap_or_default();
                if call.method {
                    // `recv.helper(..)`: any owner-having fn named
                    // `helper`.
                    if let Some(ids) = methods.get(name) {
                        out.extend(ids.iter().copied());
                    }
                    continue;
                }
                match call.path.len() {
                    1 => {
                        // Unqualified: free fns and same-owner methods
                        // share scope inside an impl, so take all.
                        if let Some(ids) = by_name.get(name) {
                            out.extend(ids.iter().copied());
                        }
                    }
                    _ => {
                        let qual = call.path[call.path.len() - 2].as_str();
                        let owner = if qual == "Self" {
                            n.item.owner.as_deref()
                        } else {
                            Some(qual)
                        };
                        match owner {
                            Some(o) if owners.contains(o) => {
                                if let Some(ids) = by_owner_name.get(&(o, name)) {
                                    out.extend(ids.iter().copied());
                                }
                            }
                            _ => {
                                // `module::helper(..)` — the qualifier
                                // is a module path, not a type: fall
                                // back to free fns of that name.
                                if let Some(ids) = by_name.get(name) {
                                    out.extend(
                                        ids.iter()
                                            .copied()
                                            .filter(|&i| g.fns[i].item.owner.is_none()),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            out.remove(&id); // direct self-recursion adds nothing
            g.edges.push(out.into_iter().collect());
        }
        g
    }

    /// Multi-source BFS from `entries`. Returns, per fn, the BFS
    /// parent (`usize::MAX` for unreached / entry roots) and the entry
    /// each fn was first reached from. Entry order breaks ties, so
    /// witness chains are deterministic.
    pub fn reach_from(&self, entries: &[FnId]) -> Reachability {
        let mut parent = vec![usize::MAX; self.fns.len()];
        let mut entry_of = vec![usize::MAX; self.fns.len()];
        let mut seen = vec![false; self.fns.len()];
        let mut q = VecDeque::new();
        for &e in entries {
            if !seen[e] {
                seen[e] = true;
                entry_of[e] = e;
                q.push_back(e);
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &self.edges[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    entry_of[v] = entry_of[u];
                    q.push_back(v);
                }
            }
        }
        Reachability {
            parent,
            entry_of,
            seen,
        }
    }

    /// Shortest witness chain entry → … → `target`, as qualified
    /// names, using a [`Reachability`] from [`Graph::reach_from`].
    pub fn witness(&self, r: &Reachability, target: FnId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = target;
        loop {
            chain.push(self.fns[cur].qualified());
            if r.parent[cur] == usize::MAX {
                break;
            }
            cur = r.parent[cur];
        }
        chain.reverse();
        chain
    }
}

/// Result of a multi-source BFS.
#[derive(Debug)]
pub struct Reachability {
    pub parent: Vec<usize>,
    pub entry_of: Vec<usize>,
    pub seen: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph(srcs: &[(&str, &str)]) -> Graph {
        let files: Vec<ParsedFile> = srcs.iter().map(|(f, s)| parse_file(f, s)).collect();
        Graph::build(&files)
    }

    fn id(g: &Graph, qualified: &str) -> FnId {
        g.fns
            .iter()
            .position(|n| n.qualified() == qualified)
            .unwrap_or_else(|| panic!("no fn {qualified}"))
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let g = graph(&[
            (
                "a.rs",
                "fn top() { helper(); util::leaf(); }\nfn helper() { leaf(); }\n",
            ),
            ("b.rs", "fn leaf() {}\n"),
        ]);
        let top = id(&g, "top");
        assert_eq!(g.edges[top], vec![id(&g, "helper"), id(&g, "leaf")]);
    }

    #[test]
    fn method_calls_over_approximate() {
        let g = graph(&[
            (
                "a.rs",
                "impl Foo { fn step(&self) {} }\nimpl Bar { fn step(&self) {} }\n",
            ),
            ("b.rs", "fn driver(x: &Foo) { x.step(); }\n"),
        ]);
        let d = id(&g, "driver");
        assert_eq!(g.edges[d].len(), 2); // both Foo::step and Bar::step
    }

    #[test]
    fn self_calls_resolve_via_owner() {
        let g = graph(&[(
            "a.rs",
            "impl Foo { fn a(&self) { Self::b(); } fn b() {} }\nimpl Bar { fn b() {} }\n",
        )]);
        let a = id(&g, "Foo::a");
        assert_eq!(g.edges[a], vec![id(&g, "Foo::b")]);
    }

    #[test]
    fn bfs_finds_shortest_witness() {
        let g = graph(&[(
            "a.rs",
            "fn entry() { mid(); deep1(); }\nfn mid() { tail(); }\n\
             fn deep1() { deep2(); }\nfn deep2() { tail(); }\nfn tail() {}\n",
        )]);
        let r = g.reach_from(&[id(&g, "entry")]);
        let w = g.witness(&r, id(&g, "tail"));
        assert_eq!(w, vec!["entry", "mid", "tail"]);
    }
}
