//! `mlfs-lint` CLI.
//!
//! ```text
//! cargo run -p mlfs-lint --release [-- [--json] [--deep] [--root DIR]
//!     [--baseline FILE] [--write-baseline] [--strict] [--budget-ms N]]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (new findings, a re-grown or
//! stale baseline, or a blown `--budget-ms`), 2 = usage or I/O error.
//!
//! The baseline is **retired**: it was burned down to zero and the
//! ratchet is now strict. Any attempt to re-grow `lint-baseline.toml`
//! (a non-empty file) fails the run — fix the finding or argue a
//! `lint:allow` instead.

use mlfs_lint::{render_json, render_text, scan_workspace_deep, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    root: PathBuf,
    baseline_path: PathBuf,
    json: bool,
    write_baseline: bool,
    /// Ignore the baseline entirely: report every finding.
    strict: bool,
    /// Run the interprocedural passes too.
    deep: bool,
    /// Fail if the scan takes longer than this many milliseconds.
    budget_ms: Option<u64>,
}

fn usage() -> &'static str {
    "usage: mlfs-lint [--json] [--deep] [--root DIR] [--baseline FILE] \
     [--write-baseline] [--strict] [--budget-ms N]\n\
     \n\
     --json            emit the machine-readable report on stdout\n\
     --deep            also run the interprocedural passes (determinism\n\
                       taint, panic reachability, FP-reduction hazards)\n\
     --root DIR        workspace root (default: auto-detected)\n\
     --baseline FILE   baseline file (default: <root>/lint-baseline.toml)\n\
     --write-baseline  accept all current findings into the baseline\n\
     --strict          ignore the baseline; report every finding\n\
     --budget-ms N     fail (exit 1) if the scan exceeds N milliseconds"
}

fn parse_opts() -> Result<Opts, String> {
    // `cargo run -p mlfs-lint` sets the manifest dir to `crates/lint`;
    // the workspace root is two levels up. Fall back to the cwd for a
    // bare binary invocation.
    let default_root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut opts = Opts {
        root: default_root,
        baseline_path: PathBuf::new(),
        json: false,
        write_baseline: false,
        strict: false,
        deep: false,
        budget_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--strict" => opts.strict = true,
            "--deep" => opts.deep = true,
            "--budget-ms" => {
                let v = args.next().ok_or("--budget-ms needs a value")?;
                opts.budget_ms = Some(v.parse().map_err(|_| "--budget-ms needs an integer")?);
            }
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                opts.baseline_path = PathBuf::from(args.next().ok_or("--baseline needs a value")?);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if opts.baseline_path.as_os_str().is_empty() {
        opts.baseline_path = opts.root.join("lint-baseline.toml");
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_opts()?;
    let started = Instant::now();

    let baseline = if opts.strict || opts.write_baseline {
        Baseline::empty()
    } else if opts.baseline_path.exists() {
        let text = std::fs::read_to_string(&opts.baseline_path)
            .map_err(|e| format!("reading {}: {e}", opts.baseline_path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", opts.baseline_path.display()))?
    } else {
        Baseline::empty()
    };

    let report = scan_workspace_deep(&opts.root, &baseline, opts.deep)
        .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;

    if opts.write_baseline {
        let b = Baseline::from_findings(&report.findings);
        std::fs::write(&opts.baseline_path, b.render())
            .map_err(|e| format!("writing {}: {e}", opts.baseline_path.display()))?;
        eprintln!(
            "mlfs-lint: wrote {} entries ({} findings) to {}",
            b.counts.len(),
            report.findings.len(),
            opts.baseline_path.display()
        );
        return Ok(true);
    }

    if opts.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }

    // Strict ratchet: the baseline was burned down to zero, so any
    // committed entry (re-growth) or stale entry fails the run.
    let mut ok = report.is_clean();
    if !opts.strict && !baseline.counts.is_empty() {
        eprintln!(
            "mlfs-lint: error: the baseline is retired — {} has {} entr(y/ies); \
             fix the findings or use an argued lint:allow instead of re-growing it",
            opts.baseline_path.display(),
            baseline.counts.len()
        );
        ok = false;
    }
    if !report.stale.is_empty() {
        eprintln!(
            "mlfs-lint: error: {} stale baseline entr(y/ies) — regenerate with \
             --write-baseline",
            report.stale.len()
        );
        ok = false;
    }
    let elapsed = started.elapsed();
    eprintln!(
        "mlfs-lint: scanned {} files in {:.0?}",
        report.files_scanned, elapsed
    );
    if let Some(budget) = opts.budget_ms {
        if elapsed.as_millis() > u128::from(budget) {
            eprintln!(
                "mlfs-lint: error: scan took {:.0?}, over the {budget} ms budget",
                elapsed
            );
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
