//! Workspace traversal: find every `.rs` file and `Cargo.toml`, apply
//! the per-file tier policy, and reconcile findings with the baseline.

use crate::baseline::{baseline_key, Baseline};
use crate::deep::{analyze, DeepDetail};
use crate::parse::parse_file;
use crate::policy::{policy_for, FilePolicy};
use crate::rules::{scan_source, Finding, ScanStats};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "results", "node_modules"];

/// Aggregated scan result for one workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_scanned: usize,
    /// Every finding after `lint:allow` suppression, before baseline.
    pub findings: Vec<Finding>,
    /// Findings in `(file, rule)` groups whose count exceeds the
    /// baseline — these fail the run.
    pub new_findings: Vec<Finding>,
    /// `(key, allowed, found)` for groups over their baseline count.
    pub exceeded: Vec<(String, usize, usize)>,
    /// `(key, allowed, found)` for baseline entries that are now
    /// larger than reality — the baseline should be regenerated.
    pub stale: Vec<(String, usize, usize)>,
    /// Findings suppressed because their group is within baseline.
    pub baselined: usize,
    /// Merged `lint:allow` escape-hatch statistics.
    pub stats: ScanStats,
    /// Present when the scan ran in `--deep` mode.
    pub deep: Option<DeepSummary>,
}

/// Interprocedural-pass summary attached to a deep scan. Deep findings
/// also flow into [`WorkspaceReport::findings`] (and through the same
/// baseline reconciliation as local findings); this keeps the witness
/// details for the JSON report.
#[derive(Debug, Default)]
pub struct DeepSummary {
    /// Deep findings paired with their witness chains.
    pub findings: Vec<(Finding, DeepDetail)>,
    /// Deep findings suppressed by a seed-line `lint:allow`.
    pub suppressed: usize,
    pub fn_count: usize,
    pub edge_count: usize,
    pub entry_count: usize,
}

impl WorkspaceReport {
    /// True when nothing exceeds the baseline (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.new_findings.is_empty()
    }
}

/// Scan the workspace rooted at `root` and reconcile with `baseline`.
pub fn scan_workspace(root: &Path, baseline: &Baseline) -> io::Result<WorkspaceReport> {
    scan_workspace_deep(root, baseline, false)
}

/// Like [`scan_workspace`], optionally running the interprocedural
/// `--deep` passes ([`crate::deep`]) over tier-crate library code.
/// Deep findings are reconciled against the baseline exactly like
/// local findings.
pub fn scan_workspace_deep(
    root: &Path,
    baseline: &Baseline,
    deep: bool,
) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort(); // deterministic report order regardless of readdir order

    let mut report = WorkspaceReport::default();
    let mut parsed = Vec::new();
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.files_scanned += 1;
        if rel_str.ends_with("Cargo.toml") {
            report.findings.extend(check_cargo_toml(&rel_str, &text));
        } else {
            let (findings, stats) = scan_source(&rel_str, &text, policy_for(&rel_str));
            report.findings.extend(findings);
            report.stats.merge(&stats);
            // The call graph spans exactly the tier-crate library code
            // the local rules police — bins/tests/benches and non-tier
            // crates contribute neither entries nor seeds.
            if deep && policy_for(&rel_str) != FilePolicy::NONE {
                parsed.push(parse_file(&rel_str, &text));
            }
        }
    }

    if deep {
        let dr = analyze(&parsed);
        // A `lint:allow` the deep pass consumed is not unused, even if
        // no local rule fired on its line; credit it per deep rule.
        for (file, at_line, rule) in &dr.allows_used {
            let before = report.stats.allows_unused.len();
            report
                .stats
                .allows_unused
                .retain(|(f, l, _)| !(f == file && l == at_line));
            if report.stats.allows_unused.len() < before {
                *report
                    .stats
                    .allows_used
                    .entry(rule.to_string())
                    .or_insert(0) += 1;
            }
        }
        report.findings.extend(dr.findings.iter().cloned());
        report.deep = Some(DeepSummary {
            findings: dr.findings.into_iter().zip(dr.details).collect(),
            suppressed: dr.suppressed,
            fn_count: dr.fn_count,
            edge_count: dr.edge_count,
            entry_count: dr.entry_count,
        });
        report.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    // Group by (file, rule) and compare counts against the baseline.
    let mut groups: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
    for f in &report.findings {
        groups
            .entry(baseline_key(&f.file, f.rule))
            .or_default()
            .push(f);
    }
    let mut new_findings = Vec::new();
    for (key, fs) in &groups {
        let allowed = baseline.counts.get(key).copied().unwrap_or(0);
        if fs.len() > allowed {
            report.exceeded.push((key.clone(), allowed, fs.len()));
            new_findings.extend(fs.iter().map(|f| (*f).clone()));
        } else {
            report.baselined += fs.len();
            if fs.len() < allowed {
                report.stale.push((key.clone(), allowed, fs.len()));
            }
        }
    }
    // Baseline entries whose findings vanished entirely are also stale.
    for (key, &allowed) in &baseline.counts {
        if allowed > 0 && !groups.contains_key(key) {
            report.stale.push((key.clone(), allowed, 0));
        }
    }
    report.stale.sort();
    report.new_findings = new_findings;
    Ok(report)
}

/// Recursively collect workspace-relative `.rs` and `Cargo.toml` paths.
fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// `cfg-registry-dep`: every dependency in every manifest must resolve
/// inside the workspace — `workspace = true` (definitions live in the
/// root `[workspace.dependencies]`, which is checked too) or an
/// explicit `path = "…"`. Bare version strings, `version =` without
/// `path`, and `git =` specs would all hit the network registry the
/// offline build environment does not have.
pub fn check_cargo_toml(file: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]`-style table currently being accumulated.
    let mut table_dep: Option<(String, u32, Vec<String>)> = None;

    let flush_table = |dep: &mut Option<(String, u32, Vec<String>)>, out: &mut Vec<Finding>| {
        if let Some((name, line, body)) = dep.take() {
            if !spec_is_local(&body.join("\n")) {
                out.push(registry_finding(file, line, &name));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut table_dep, &mut out);
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .to_string();
            // `[dependencies.foo]` / `[workspace.dependencies.foo]`
            if let Some((head, dep)) = split_dep_table(&section) {
                section = head;
                table_dep = Some((dep, lineno, Vec::new()));
            }
            continue;
        }
        if let Some((_, _, body)) = table_dep.as_mut() {
            body.push(line.to_string());
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `name = spec` or `name.workspace = true`
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let spec = spec.trim();
        if let Some(base) = name.strip_suffix(".workspace") {
            let _ = base;
            continue; // resolved via the root manifest, checked there
        }
        if !spec_is_local(spec) {
            out.push(registry_finding(file, lineno, name));
        }
    }
    flush_table(&mut table_dep, &mut out);
    out
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || (section.starts_with("target.") && section.ends_with(".dependencies"))
}

/// Split `dependencies.foo` into `("dependencies", "foo")` when the
/// parent is a dependency section.
fn split_dep_table(section: &str) -> Option<(String, String)> {
    let (head, dep) = section.rsplit_once('.')?;
    if is_dep_section(head) {
        Some((head.to_string(), dep.trim().to_string()))
    } else {
        None
    }
}

/// Is a dependency spec workspace-local? Accepts `{ workspace = true }`
/// and anything carrying a `path` key; rejects bare version strings,
/// `version =`-only specs and `git =` specs.
fn spec_is_local(spec: &str) -> bool {
    if spec.contains("workspace") && spec.contains("true") {
        return true;
    }
    if spec.contains("git") && spec.contains('=') && spec.contains("git =") {
        return false;
    }
    spec.contains("path")
}

fn registry_finding(file: &str, line: u32, name: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        col: 1,
        rule: "cfg-registry-dep",
        message: format!(
            "dependency `{name}` does not resolve inside the workspace; use \
             `workspace = true` or a `path = \"vendor/…\"` spec (the build \
             environment is offline)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let toml = r#"
[package]
name = "x"
version = "0.1.0"

[dependencies]
simcore.workspace = true
serde = { path = "vendor/serde", features = ["derive"] }

[dev-dependencies]
proptest.workspace = true
"#;
        assert!(check_cargo_toml("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_deps_flagged() {
        let toml = r#"
[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }
remote = { git = "https://example.org/x" }
"#;
        let f = check_cargo_toml("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|f| f.rule == "cfg-registry-dep"));
    }

    #[test]
    fn dep_table_form_checked() {
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        assert_eq!(check_cargo_toml("c/Cargo.toml", bad).len(), 1);
        let good = "[dependencies.rand]\npath = \"vendor/rand\"\n";
        assert!(check_cargo_toml("c/Cargo.toml", good).is_empty());
    }

    #[test]
    fn package_version_not_a_dep() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n";
        assert!(check_cargo_toml("c/Cargo.toml", toml).is_empty());
    }
}
