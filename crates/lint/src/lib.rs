//! `mlfs-lint` — workspace-aware static analysis for the MLFS
//! reproduction.
//!
//! Every result this workspace produces rests on two properties that
//! ordinary tests cannot guard by themselves:
//!
//! * **bit-identical determinism** — seeded RNG streams, ordered
//!   (`BTreeMap`) iteration, no wall-clock reads anywhere a scheduling
//!   decision can observe;
//! * **panic-freedom on the scheduler hot path** — a speculative
//!   placement that fails must degrade into skip-and-requeue, never
//!   abort a simulation.
//!
//! This crate machine-checks those conventions. It contains a small
//! comment/string/raw-string-aware Rust tokenizer (no external parser
//! — the build environment is offline) and a rule engine that walks
//! every workspace `.rs` file and `Cargo.toml`, applying per-crate
//! *tier* policies (see [`policy`]). Findings are reported as
//! rustc-style `file:line:col` diagnostics with stable rule IDs, can
//! be suppressed line-by-line with an audited
//! `// lint:allow(<rule>) reason="..."` comment, and are compared
//! against a committed baseline (`lint-baseline.toml`) so pre-existing
//! findings can be burned down incrementally while new ones fail CI
//! immediately.

pub mod baseline;
pub mod callgraph;
pub mod deep;
pub mod parse;
pub mod policy;
pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod workspace;

pub use baseline::Baseline;
pub use deep::{analyze, DeepReport};
pub use parse::{parse_file, ParsedFile};
pub use policy::{FilePolicy, Tier};
pub use report::{render_json, render_text};
pub use rules::{scan_source, Finding, ScanStats};
pub use workspace::{scan_workspace, scan_workspace_deep, WorkspaceReport};
