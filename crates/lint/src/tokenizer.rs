//! A minimal Rust lexer: just enough structure for rule matching.
//!
//! The goal is *not* full fidelity with rustc — it is to never confuse
//! the rule engine about what is code and what is not. Comments (line,
//! doc, nested block), string literals (plain, raw `r#"…"#`, byte),
//! char literals, and lifetimes are all recognised so that a rule
//! token such as `HashMap` inside a doc comment or a format string is
//! never reported as a violation. Everything that survives is emitted
//! as a flat token stream with 1-based line/column positions.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`.`, `[`, `!`, `:`, …).
    Punct,
    /// String/char/number literal (contents are never rule-matched).
    Literal,
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment, captured verbatim (without the `//` / `/*` markers) so
/// the rule engine can parse `lint:allow(...)` annotations out of it.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    /// True when no code token precedes the comment on its line — a
    /// standalone `// lint:allow` applies to the next code line, a
    /// trailing one to its own line.
    pub standalone: bool,
}

/// Tokenizer output: the code token stream plus captured comments.
#[derive(Debug, Default)]
pub struct TokenStream {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    /// Line of the most recently emitted token (for `standalone`).
    last_tok_line: u32,
    out: TokenStream,
}

pub fn tokenize(src: &str) -> TokenStream {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        last_tok_line: 0,
        out: TokenStream::default(),
    };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.last_tok_line = line;
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line, col);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line, col),
                'r' if self.peek(1) == Some('#') && ident_start(self.peek(2)) => {
                    // Raw identifier r#type — emit without the prefix.
                    self.bump();
                    self.bump();
                    self.ident(line, col);
                }
                '\'' => self.quote(line, col),
                c if ident_start(Some(c)) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }

    /// `r"…"`, `r#"…"#`, `br#"…"#` — a raw-string opener at `pos`?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(0) == Some('b') {
            i = 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let standalone = self.last_tok_line != line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            standalone,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let standalone = self.last_tok_line != line;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            standalone,
        });
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.emit(TokKind::Literal, String::new(), line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    // Close only on `"` followed by exactly `hashes` #s.
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        self.emit(TokKind::Literal, String::new(), line, col);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`,
    /// `'\n'`). Escape → char literal; ident-run followed by a closing
    /// quote → char literal; otherwise lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal.
            self.bump(); // '
            self.bump(); // \
            self.bump(); // escaped char
            while let Some(c) = self.peek(0) {
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            self.emit(TokKind::Literal, String::new(), line, col);
            return;
        }
        // Measure the ident-ish run after the quote.
        let mut i = 1;
        while ident_continue(self.peek(i)) {
            i += 1;
        }
        if i > 1 && self.peek(i) == Some('\'') {
            // 'a' / 'word'? (only single chars are valid, but be lax)
            for _ in 0..=i {
                self.bump();
            }
            self.emit(TokKind::Literal, String::new(), line, col);
        } else if i == 1 && self.peek(1).is_some() && self.peek(2) == Some('\'') {
            // Non-ident single char like '+' or ' '.
            self.bump();
            self.bump();
            self.bump();
            self.emit(TokKind::Literal, String::new(), line, col);
        } else {
            // Lifetime.
            self.bump(); // '
            let mut name = String::new();
            while ident_continue(self.peek(0)) {
                name.push(self.bump().unwrap_or('_'));
            }
            self.emit(TokKind::Lifetime, name, line, col);
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while ident_continue(self.peek(0)) {
            match self.bump() {
                Some(c) => text.push(c),
                None => break,
            }
        }
        self.emit(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        // Digits, `_`, alphanumerics (hex, type suffixes), one `.`
        // only when followed by a digit (so `0..n` stays a range).
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false))
                || ((c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E')));
            if !continues {
                break;
            }
            self.bump();
        }
        self.emit(TokKind::Literal, String::new(), line, col);
    }
}

fn ident_start(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphabetic() || c == '_')
}

fn ident_continue(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
}
