//! Per-crate tier policy: which rule families apply where.
//!
//! * **Deterministic tier** — every crate whose code can influence a
//!   scheduling decision or a recorded metric. Bit-identical replay
//!   (the PR 3 determinism tests) requires that nothing here observes
//!   hash-iteration order, wall clocks, or ambient randomness.
//! * **Hot-path tier** — the crates on the per-round scheduling path
//!   (`core` schedulers, `cluster` placement/overlay, the `sim`
//!   engine). A panic here aborts a whole simulation, so `unwrap`/
//!   `expect`/panicking macros/indexing are banned outside tests; the
//!   audited `// lint:allow(<rule>) reason="…"` escape hatch covers
//!   the provably-unreachable remainder.
//!
//! Test modules (`#[cfg(test)]`, `#[test]`), `tests/`, `benches/`,
//! `examples/` and `src/bin/` targets are exempt from both tiers:
//! determinism and panic-freedom are properties of the library code
//! the simulator runs, not of assertions about it.

/// Crates in the deterministic tier (directory names under `crates/`).
pub const DETERMINISTIC_TIER: &[&str] = &[
    "core",
    "cluster",
    "sim",
    "simcore",
    "rl",
    "nn",
    "workload",
    "learncurve",
    "baselines",
    "metrics",
    // obs runs inside `schedule()` via the span/event macros; a
    // nondeterministic tracer would leak into decision traces.
    "obs",
    // The service front-end replays arrival streams bit-identically;
    // its decision loop must not observe wall clocks or hash order.
    "service",
];

/// Crates in the scheduler hot-path tier.
pub const HOT_PATH_TIER: &[&str] = &["core", "cluster", "sim", "obs", "service"];

/// Rule families that apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilePolicy {
    pub deterministic: bool,
    pub hot_path: bool,
}

impl FilePolicy {
    pub const NONE: FilePolicy = FilePolicy {
        deterministic: false,
        hot_path: false,
    };
    pub const ALL: FilePolicy = FilePolicy {
        deterministic: true,
        hot_path: true,
    };
}

/// Tier membership of a crate directory name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Deterministic,
    HotPath,
}

/// Policy for a workspace-relative path such as
/// `crates/core/src/mlfh.rs`. Non-library targets (tests, benches,
/// examples, bin) and non-tier crates get [`FilePolicy::NONE`].
pub fn policy_for(rel_path: &str) -> FilePolicy {
    let p = rel_path.replace('\\', "/");
    // Only library code inside `crates/<name>/src/` is in scope, and
    // `src/bin/` CLI targets are not library code.
    let Some(rest) = p.strip_prefix("crates/") else {
        return FilePolicy::NONE;
    };
    let Some((krate, tail)) = rest.split_once('/') else {
        return FilePolicy::NONE;
    };
    if !tail.starts_with("src/") || tail.starts_with("src/bin/") {
        return FilePolicy::NONE;
    }
    FilePolicy {
        deterministic: DETERMINISTIC_TIER.contains(&krate),
        hot_path: HOT_PATH_TIER.contains(&krate),
    }
}
