//! The rule engine: token-level checks with tier policies, test-code
//! exemption, and the audited `lint:allow` escape hatch.

use crate::policy::FilePolicy;
use crate::tokenizer::{tokenize, Tok, TokKind};
use std::collections::BTreeMap;

/// Stable rule identifiers. Keep in sync with DESIGN.md §"Static
/// analysis & invariants".
pub const ALL_RULES: &[&str] = &[
    // Determinism tier.
    "det-hash-collection",
    "det-wall-clock",
    "det-ambient-rng",
    "det-float-ord",
    // Hot-path tier.
    "panic-unwrap",
    "panic-macro",
    "panic-slice-index",
    // Config rules.
    "cfg-std-time",
    "cfg-registry-dep",
    // Interprocedural rules (`--deep` mode; see crate::deep).
    "deep-det-taint",
    "deep-panic-path",
    "deep-fp-reduction",
    // Meta rules (violations of the escape hatch itself).
    "lint-allow-missing-reason",
    "lint-allow-unknown-rule",
    "lint-seam-unattached",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Per-file statistics about the escape hatch.
#[derive(Debug, Default, Clone)]
pub struct ScanStats {
    /// Total `lint:allow` annotations seen.
    pub allows_total: usize,
    /// Suppressions that actually fired, per rule.
    pub allows_used: BTreeMap<String, usize>,
    /// `(file, line, rules)` of annotations that suppressed nothing.
    /// The deep pass may still claim one of these (a `lint:allow` on a
    /// taint source suppresses the interprocedural finding too), so
    /// the workspace scan — not this per-file pass — has the final
    /// word on which allows are genuinely dead.
    pub allows_unused: Vec<(String, u32, String)>,
}

impl ScanStats {
    pub fn merge(&mut self, other: &ScanStats) {
        self.allows_total += other.allows_total;
        for (r, n) in &other.allows_used {
            *self.allows_used.entry(r.clone()).or_insert(0) += n;
        }
        self.allows_unused
            .extend(other.allows_unused.iter().cloned());
    }
}

/// One `lint:allow(..)` or `lint:seam(..)` annotation, resolved to the
/// code line it targets.
#[derive(Debug, Clone)]
pub struct Mark {
    pub rules: Vec<String>,
    pub has_reason: bool,
    /// Line the annotation applies to (own line for trailing comments,
    /// next code line for standalone ones).
    pub target_line: u32,
    /// Line of the comment itself (for meta diagnostics).
    pub at_line: u32,
}

/// Scan one source file under `policy`. Returns diagnostics plus
/// escape-hatch statistics.
pub fn scan_source(file: &str, src: &str, policy: FilePolicy) -> (Vec<Finding>, ScanStats) {
    let stream = tokenize(src);
    let allows = collect_marks(&stream.comments, &stream.tokens, "lint:allow(");
    let mut used = vec![false; allows.len()];
    let toks = non_test_tokens(&stream.tokens);
    let uses = use_ranges(&toks);

    let mut raw: Vec<Finding> = Vec::new();
    if policy.deterministic {
        determinism_rules(file, &toks, &uses, &mut raw);
    }
    if policy.hot_path {
        panic_rules(file, &toks, &mut raw);
    }

    // Apply suppressions.
    let mut findings: Vec<Finding> = Vec::new();
    let mut stats = ScanStats {
        allows_total: allows.len(),
        ..ScanStats::default()
    };
    for f in raw {
        let mut suppressed = false;
        for (a, u) in allows.iter().zip(used.iter_mut()) {
            if a.target_line == f.line && a.rules.iter().any(|r| r == f.rule) {
                *u = true;
                *stats.allows_used.entry(f.rule.to_string()).or_insert(0) += 1;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Meta diagnostics about the annotations themselves; these cannot
    // be self-suppressed. Out-of-tier files (docs, fixtures, the
    // linter's own sources) may *mention* the annotation grammar
    // without being held to it.
    if policy == FilePolicy::NONE {
        return (findings, ScanStats::default());
    }
    let seams = collect_marks(&stream.comments, &stream.tokens, "lint:seam(");
    for (kind, marks) in [("lint:allow", &allows), ("lint:seam", &seams)] {
        for a in marks {
            for r in &a.rules {
                if !ALL_RULES.contains(&r.as_str()) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: a.at_line,
                        col: 1,
                        rule: "lint-allow-unknown-rule",
                        message: format!("{kind} names unknown rule `{r}`"),
                    });
                }
            }
            if !a.has_reason {
                findings.push(Finding {
                    file: file.to_string(),
                    line: a.at_line,
                    col: 1,
                    rule: "lint-allow-missing-reason",
                    message: format!(
                        "{kind} requires reason=\"...\" explaining why the \
                         exception is sound"
                    ),
                });
            }
        }
    }
    for (a, u) in allows.iter().zip(&used) {
        if !u {
            stats
                .allows_unused
                .push((file.to_string(), a.at_line, a.rules.join(",")));
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, stats)
}

/// Parse `lint:allow(rule-a, rule-b) reason="..."` (or `lint:seam(..)`)
/// annotations out of comments and resolve the line each one targets.
/// `key` is the annotation head including its `(`.
pub(crate) fn collect_marks(
    comments: &[crate::tokenizer::Comment],
    tokens: &[Tok],
    key: &str,
) -> Vec<Mark> {
    let mut out = Vec::new();
    for c in comments {
        let Some(start) = c.text.find(key) else {
            continue;
        };
        let after = &c.text[start + key.len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let tail = &after[close + 1..];
        let has_reason = tail
            .find("reason=\"")
            .map(|i| {
                let rest = &tail[i + "reason=\"".len()..];
                rest.find('"').map(|j| j > 0).unwrap_or(false)
            })
            .unwrap_or(false);
        let target_line = if c.standalone {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        out.push(Mark {
            rules,
            has_reason,
            target_line,
            at_line: c.line,
        });
    }
    out
}

/// `lint:seam(<rule>) reason="..."` marks the next `fn` as a sanctioned
/// boundary for the named deep rules (see [`crate::deep`]).
pub(crate) fn collect_seams(comments: &[crate::tokenizer::Comment], tokens: &[Tok]) -> Vec<Mark> {
    collect_marks(comments, tokens, "lint:seam(")
}

/// Drop tokens belonging to test-only items: any item annotated
/// `#[test]` or `#[cfg(test)]` (typically the `mod tests { … }`
/// block). Inner attributes (`#![…]`) and `#[cfg(not(test))]` /
/// `#[cfg_attr(…)]` do not gate items out.
pub(crate) fn non_test_tokens(tokens: &[Tok]) -> Vec<Tok> {
    let mut keep = vec![true; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len()) {
            i += 1;
            continue;
        }
        // Inner attribute `#![…]`: skip its tokens, gate nothing.
        if tokens[i + 1].is_punct('!') {
            i += 2;
            continue;
        }
        if !tokens[i + 1].is_punct('[') {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = parse_attr(tokens, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Gate out the attribute, any stacked attributes, and the item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let (e, _) = parse_attr(tokens, j + 1);
            j = e + 1;
        }
        // Consume the item: to the matching `}` of its first brace, or
        // to a top-level `;`, whichever comes first.
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            k += 1;
        }
        let end = k.min(tokens.len().saturating_sub(1));
        for slot in keep.iter_mut().take(end + 1).skip(i) {
            *slot = false;
        }
        i = end + 1;
    }
    tokens
        .iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Parse an attribute starting at its `[` token; returns the index of
/// the closing `]` and whether the attribute gates test-only code.
fn parse_attr(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut end = open;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                end = k;
                break;
            }
        }
        end = k;
    }
    let body = &tokens[open + 1..end.min(tokens.len())];
    let first_ident = body.iter().find(|t| t.kind == TokKind::Ident);
    let is_test = match first_ident {
        Some(t) if t.text == "test" => true,
        Some(t) if t.text == "cfg" => cfg_mentions_test(body),
        _ => false,
    };
    (end, is_test)
}

/// Does a `cfg(...)` predicate require `test` (i.e. mention it outside
/// a `not(...)`)?
fn cfg_mentions_test(body: &[Tok]) -> bool {
    for (k, t) in body.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && body[k - 2].is_ident("not") && body[k - 1].is_punct('(');
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Token index ranges (inclusive) covered by `use …;` statements.
fn use_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            out.push((start, i.min(toks.len() - 1)));
        }
        i += 1;
    }
    out
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

fn mk(file: &str, t: &Tok, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

pub(crate) const AMBIENT_RNG: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "from_os_rng",
];

fn determinism_rules(file: &str, toks: &[Tok], uses: &[(usize, usize)], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // Hash collections have observable, seed-dependent
            // iteration order; the deterministic tier must use
            // BTreeMap/BTreeSet or sorted vectors instead.
            "HashMap" | "HashSet" => out.push(mk(
                file,
                t,
                "det-hash-collection",
                format!(
                    "`{}` is banned in the deterministic tier (iteration order is \
                     not reproducible); use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            )),
            "Instant" | "SystemTime" if !in_ranges(uses, i) => out.push(mk(
                file,
                t,
                "det-wall-clock",
                format!(
                    "`{}` reads the wall clock; deterministic-tier code must use \
                     simulated time (simcore::SimTime)",
                    t.text
                ),
            )),
            s if AMBIENT_RNG.contains(&s) => out.push(mk(
                file,
                t,
                "det-ambient-rng",
                format!(
                    "`{s}` draws ambient (OS-seeded) randomness; use the seeded \
                     simcore RNG streams"
                ),
            )),
            "random"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("rand") =>
            {
                out.push(mk(
                    file,
                    t,
                    "det-ambient-rng",
                    "`rand::random` draws ambient randomness; use the seeded \
                     simcore RNG streams"
                        .to_string(),
                ))
            }
            "partial_cmp" => {
                if let Some(f) = float_ord_finding(file, toks, i) {
                    out.push(f);
                }
            }
            _ => {}
        }
    }
    // `use std::time::{Instant, SystemTime, *}` imports a clock type.
    for &(a, b) in uses {
        let body = &toks[a..=b.min(toks.len() - 1)];
        let has_std_time = body
            .windows(4)
            .any(|w| w[0].is_ident("std") && w[1].is_punct(':') && w[3].is_ident("time"));
        let has_clock = body
            .iter()
            .any(|t| t.is_ident("Instant") || t.is_ident("SystemTime") || t.is_punct('*'));
        if has_std_time && has_clock {
            out.push(mk(
                file,
                &toks[a],
                "cfg-std-time",
                "non-test deterministic-tier module imports a wall-clock type \
                 from std::time"
                    .to_string(),
            ));
        }
    }
}

/// `partial_cmp(…).unwrap()` / `.expect(…)` — NaN panics at runtime
/// and, worse, NaN-dependent ordering is not reproducible across
/// refactors. Matches the call's closing paren, then a direct
/// `.unwrap`/`.expect`. `unwrap_or(Ordering::Equal)` is the sanctioned
/// spelling and does not match.
fn float_ord_finding(file: &str, toks: &[Tok], i: usize) -> Option<Finding> {
    let open = i + 1;
    if !toks.get(open)?.is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    let mut close = open;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    let dot = toks.get(close + 1)?;
    let method = toks.get(close + 2)?;
    if dot.is_punct('.') && (method.is_ident("unwrap") || method.is_ident("expect")) {
        Some(mk(
            file,
            &toks[i],
            "det-float-ord",
            format!(
                "`partial_cmp(..).{}()` panics on NaN; use total_cmp or \
                 `partial_cmp(..).unwrap_or(Ordering::Equal)`",
                method.text
            ),
        ))
    } else {
        None
    }
}

/// Rust keywords that can directly precede `[` without forming an
/// index expression (slice patterns, `for x in [..]`, …).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "while", "loop", "for", "where", "use", "pub", "crate", "dyn", "impl", "fn", "unsafe",
    "static", "const", "enum", "struct", "trait", "type", "mod", "await", "yield", "box", "do",
];

fn panic_rules(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        // `.unwrap()` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            out.push(mk(
                file,
                t,
                "panic-unwrap",
                format!(
                    "`.{}()` can panic on the scheduler hot path; degrade \
                     gracefully (skip-and-requeue / Result) or justify with \
                     lint:allow",
                    t.text
                ),
            ));
        }
        // panic!/unreachable!/todo!/unimplemented!
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
        {
            out.push(mk(
                file,
                t,
                "panic-macro",
                format!("`{}!` aborts a whole simulation from the hot path", t.text),
            ));
        }
        // Index expressions `expr[...]` (bounds panics). Array
        // literals, attributes, types and slice patterns don't match
        // because their `[` never follows an identifier, `)` or `]`.
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let indexes = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
                _ => false,
            };
            if indexes {
                out.push(mk(
                    file,
                    t,
                    "panic-slice-index",
                    "indexing can panic out-of-bounds on the hot path; prefer \
                     .get()/.get_mut() or iterate"
                        .to_string(),
                ));
            }
        }
    }
}
