//! Item-level parsing: the syntax layer under the `--deep` passes.
//!
//! Built directly on the [`crate::tokenizer`] stream (no external
//! parser — the build environment is offline), this module recovers
//! just enough structure for interprocedural analysis:
//!
//! * **items** — `fn` definitions with their owning `impl`/`trait`
//!   type, including nesting through inline `mod` blocks;
//! * **call expressions** — free calls (`helper(..)`), path calls
//!   (`Type::helper(..)`, `module::helper(..)`), and method calls
//!   (`recv.helper(..)`), each with its source position;
//! * **source events** — the seeds the deep passes propagate: wall
//!   clock reads, ambient RNG draws, unordered-collection mentions,
//!   `fs::read_dir` calls, panic macros, `.unwrap()`/`.expect()`, slice
//!   indexing, and floating-point accumulation hazards;
//! * **seam annotations** — `// lint:seam(<rule>) reason="…"` on a
//!   `fn` marks it a sanctioned boundary: taint originating at or
//!   below it is considered contained (see [`crate::deep`]).
//!
//! Fidelity is deliberately bounded: generics are skipped, types are
//! never inferred, and `expr[..]` indexing sugar is *not* resolved to
//! workspace `Index` impls (the local `panic-slice-index` rule covers
//! indexing in the hot tier). Test items (`#[test]` / `#[cfg(test)]`)
//! are excluded before parsing, like everywhere else in the linter.

use crate::rules::{
    collect_marks, collect_seams, non_test_tokens, Mark, AMBIENT_RNG, NON_INDEX_KEYWORDS,
};
use crate::tokenizer::{tokenize, Tok, TokKind};

/// What a source event seeds (which deep pass cares about it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `Instant::now()` / `SystemTime::now()`.
    WallClock,
    /// `thread_rng()`, `OsRng`, `from_entropy`, `rand::random`, …
    AmbientRng,
    /// `HashMap` / `HashSet` mention: seed-dependent iteration order.
    HashCollection,
    /// `fs::read_dir(..)`: OS-dependent directory iteration order.
    ReadDir,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `.unwrap()` / `.expect(..)`.
    UnwrapExpect,
    /// `expr[..]` indexing (seeded only in hot-path-tier files).
    SliceIndex,
    /// Accumulation (`+=`, `.sum()`, `.fold(..)`, …) inside a
    /// `par_map` closure argument.
    ParMapAccum,
    /// Float-style reduction chained onto unordered-collection
    /// iteration (`m.values().sum()` with a `HashMap` in scope).
    HashReduce,
}

/// One source event inside a function body.
#[derive(Debug, Clone)]
pub struct Source {
    pub kind: SourceKind,
    pub line: u32,
    pub col: u32,
    /// Human-readable spelling for diagnostics (`Instant::now`, …).
    pub what: String,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments as written (`["Type", "helper"]`, `["helper"]`).
    pub path: Vec<String>,
    /// True for `recv.helper(..)` method-call syntax.
    pub method: bool,
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `impl`/`trait` type the fn is defined on, if any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    pub calls: Vec<Call>,
    pub sources: Vec<Source>,
    /// Rules for which this fn is a sanctioned seam.
    pub seam_rules: Vec<String>,
}

/// Parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub file: String,
    pub fns: Vec<FnItem>,
    /// `lint:allow` marks in this file — the deep pass honors a
    /// source-line allow interprocedurally (suppressing e.g. the
    /// `deep-det-taint` finding seeded at an allowed `det-wall-clock`
    /// line) and reports which ones it used so the workspace-level
    /// unused-allow audit stays accurate.
    pub allows: Vec<Mark>,
    /// Seam annotations that did not attach to any `fn` line — a
    /// drifted annotation silently suppresses nothing, so the deep
    /// pass reports these.
    pub unattached_seams: Vec<(u32, String)>,
}

/// Parse one source file (test items excluded).
pub fn parse_file(file: &str, src: &str) -> ParsedFile {
    let stream = tokenize(src);
    let toks = non_test_tokens(&stream.tokens);
    let seams = collect_seams(&stream.comments, &stream.tokens);
    let mut out = ParsedFile {
        file: file.to_string(),
        allows: collect_marks(&stream.comments, &stream.tokens, "lint:allow("),
        ..ParsedFile::default()
    };
    parse_items(&toks, 0, toks.len(), None, &seams, &mut out.fns);
    // Audit seam attachment: every seam must land on a parsed fn.
    for s in &seams {
        let attached = out.fns.iter().any(|f| f.line == s.target_line);
        if !attached {
            out.unattached_seams.push((s.at_line, s.rules.join(",")));
        }
    }
    out
}

/// Walk `toks[i..end]` collecting `fn` items; recurse into `mod`,
/// `impl` and `trait` blocks.
fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    owner: Option<&str>,
    seams: &[Mark],
    out: &mut Vec<FnItem>,
) {
    while i < end {
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            let is_trait = t.is_ident("trait");
            if let Some((name, open)) = scan_owner(toks, i, end, is_trait) {
                let close = match_brace(toks, open, end);
                parse_items(toks, open + 1, close, name.as_deref(), seams, out);
                i = close + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("mod")
            && i + 2 < end
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct('{')
        {
            let close = match_brace(toks, i + 2, end);
            parse_items(toks, i + 3, close, owner, seams, out);
            i = close + 1;
            continue;
        }
        // `fn name` — but not an `fn(..)` pointer type.
        if t.is_ident("fn") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = t.line;
            // Find the body `{` or a `;` (trait method declaration),
            // tracking paren depth so default args/types don't confuse.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut open = None;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct('(') {
                    paren += 1;
                } else if tj.is_punct(')') {
                    paren -= 1;
                } else if tj.is_punct('{') && paren == 0 {
                    open = Some(j);
                    break;
                } else if tj.is_punct(';') && paren == 0 {
                    break;
                }
                j += 1;
            }
            let Some(open) = open else {
                i = j + 1;
                continue;
            };
            let close = match_brace(toks, open, end);
            let mut item = FnItem {
                name,
                owner: owner.map(str::to_string),
                line,
                calls: Vec::new(),
                sources: Vec::new(),
                seam_rules: seams
                    .iter()
                    .filter(|s| s.target_line == line)
                    .flat_map(|s| s.rules.iter().cloned())
                    .collect(),
            };
            scan_body(toks, i, open + 1, close, &mut item);
            out.push(item);
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// From an `impl`/`trait` keyword, extract the owning type name and
/// the index of the body `{`. For `impl Trait for Type` the owner is
/// `Type`; for `trait Name` it is `Name`; generics are skipped.
fn scan_owner(
    toks: &[Tok],
    kw: usize,
    end: usize,
    is_trait: bool,
) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut idents: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut seen_for = false;
    let mut j = kw + 1;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('{') && angle == 0 {
            let owner = if is_trait {
                idents.first().cloned()
            } else if seen_for {
                after_for.last().cloned()
            } else {
                idents.last().cloned()
            };
            return Some((owner, j));
        } else if t.is_punct(';') && angle == 0 {
            return None; // `impl Trait for Type;` / `trait X;` — no body
        } else if angle == 0 && t.kind == TokKind::Ident {
            if t.text == "for" {
                seen_for = true;
            } else if t.text == "where" {
                // Type position is over; keep scanning for `{`.
            } else if seen_for {
                after_for.push(t.text.clone());
            } else {
                idents.push(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or `end - 1`).
fn match_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    end.saturating_sub(1)
}

/// Keywords that look like call heads but are not calls.
const CALL_HEAD_KEYWORDS: &[&str] = &[
    "if", "match", "while", "loop", "return", "for", "in", "move", "as", "fn", "impl", "trait",
    "mod", "use", "pub", "let", "else", "break", "continue", "unsafe", "where", "await", "yield",
    "dyn", "ref", "mut", "box", "do", "struct", "enum", "union", "static", "const", "type",
    "crate", "self", "Self", "super",
];

/// Reduction methods whose result depends on operand order under
/// floating point.
const REDUCTIONS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Iteration adapters that expose unordered-collection order.
const ITER_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

fn scan_body(toks: &[Tok], sig_start: usize, start: usize, end: usize, item: &mut FnItem) {
    let mut has_hash = false;
    // A hash collection in the *signature* also marks the fn as
    // handling unordered data (`fn f(m: &HashMap<..>)`), which is what
    // the HashReduce check keys on.
    for t in toks.iter().take(start.saturating_sub(1)).skip(sig_start) {
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet") {
            has_hash = true;
            item.sources.push(src(SourceKind::HashCollection, t));
        }
    }
    for k in start..end {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    has_hash = true;
                    item.sources.push(src(SourceKind::HashCollection, t));
                }
                s if AMBIENT_RNG.contains(&s) => {
                    item.sources.push(src(SourceKind::AmbientRng, t));
                }
                "random"
                    if k >= start + 3
                        && toks[k - 1].is_punct(':')
                        && toks[k - 2].is_punct(':')
                        && toks[k - 3].is_ident("rand") =>
                {
                    item.sources.push(Source {
                        kind: SourceKind::AmbientRng,
                        line: t.line,
                        col: t.col,
                        what: "rand::random".to_string(),
                    });
                }
                "now"
                    if k >= start + 3
                        && toks[k - 1].is_punct(':')
                        && toks[k - 2].is_punct(':')
                        && (toks[k - 3].is_ident("Instant")
                            || toks[k - 3].is_ident("SystemTime")) =>
                {
                    item.sources.push(Source {
                        kind: SourceKind::WallClock,
                        line: t.line,
                        col: t.col,
                        what: format!("{}::now", toks[k - 3].text),
                    });
                }
                "read_dir" if next_is(toks, k, end, '(') => {
                    item.sources.push(Source {
                        kind: SourceKind::ReadDir,
                        line: t.line,
                        col: t.col,
                        what: "fs::read_dir".to_string(),
                    });
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if next_is(toks, k, end, '!') =>
                {
                    item.sources.push(Source {
                        kind: SourceKind::PanicMacro,
                        line: t.line,
                        col: t.col,
                        what: format!("{}!", t.text),
                    });
                }
                "unwrap" | "expect"
                    if k > start && toks[k - 1].is_punct('.') && next_is(toks, k, end, '(') =>
                {
                    item.sources.push(Source {
                        kind: SourceKind::UnwrapExpect,
                        line: t.line,
                        col: t.col,
                        what: format!(".{}()", t.text),
                    });
                }
                "par_map" if next_is(toks, k, end, '(') => {
                    scan_par_map(toks, k + 1, end, item);
                }
                _ => {}
            }
            // Call expression: `ident (` that is not a keyword, macro
            // or declaration head.
            if next_is(toks, k, end, '(')
                && !CALL_HEAD_KEYWORDS.contains(&t.text.as_str())
                && !(k > start && toks[k - 1].is_ident("fn"))
            {
                let method = k > start && toks[k - 1].is_punct('.');
                let mut path = vec![t.text.clone()];
                if !method {
                    // Walk `a::b::name` backwards.
                    let mut p = k;
                    while p >= start + 3
                        && toks[p - 1].is_punct(':')
                        && toks[p - 2].is_punct(':')
                        && toks[p - 3].kind == TokKind::Ident
                    {
                        path.insert(0, toks[p - 3].text.clone());
                        p -= 3;
                    }
                }
                // `.unwrap()` / `.expect()` are std combinators, never
                // workspace calls; they are tracked as sources above.
                if !(method && (t.text == "unwrap" || t.text == "expect")) {
                    item.calls.push(Call {
                        path,
                        method,
                        line: t.line,
                    });
                }
            }
        } else if t.is_punct('[') && k > start {
            let p = &toks[k - 1];
            let indexes = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
                _ => false,
            };
            if indexes {
                item.sources.push(Source {
                    kind: SourceKind::SliceIndex,
                    line: t.line,
                    col: t.col,
                    what: "slice indexing".to_string(),
                });
            }
        }
    }
    // Order-sensitive reduction over an unordered collection: a
    // reduction whose statement also drives an iteration adapter, in a
    // fn that mentions a hash collection at all.
    if has_hash {
        for k in start..end {
            let t = &toks[k];
            if t.kind == TokKind::Ident
                && REDUCTIONS.contains(&t.text.as_str())
                && k > start
                && toks[k - 1].is_punct('.')
                && next_is(toks, k, end, '(')
                && statement_has_adapter(toks, start, k)
            {
                item.sources.push(Source {
                    kind: SourceKind::HashReduce,
                    line: t.line,
                    col: t.col,
                    what: format!(".{}() over an unordered collection", t.text),
                });
            }
        }
    }
}

/// Does the statement containing token `k` (scanning backwards to the
/// nearest `;` / `{` / `}`) drive an unordered-iteration adapter?
fn statement_has_adapter(toks: &[Tok], start: usize, k: usize) -> bool {
    let mut p = k;
    while p > start {
        p -= 1;
        let t = &toks[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.kind == TokKind::Ident
            && ITER_ADAPTERS.contains(&t.text.as_str())
            && p > start
            && toks[p - 1].is_punct('.')
        {
            return true;
        }
    }
    false
}

/// Inside a `par_map(..)` call (starting at its `(`), flag float-style
/// accumulation in the argument list — `+=` / `*=` compound ops and
/// order-sensitive reduction methods. Per-cell partial results that
/// are later combined are exactly how thread count changes float
/// grouping.
fn scan_par_map(toks: &[Tok], open: usize, end: usize, item: &mut FnItem) {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        let t = &toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if (t.is_punct('+') || t.is_punct('*'))
            && k + 1 < end
            && toks[k + 1].is_punct('=')
            && toks[k + 1].line == t.line
            && toks[k + 1].col == t.col + 1
        {
            item.sources.push(Source {
                kind: SourceKind::ParMapAccum,
                line: t.line,
                col: t.col,
                what: format!("`{}=` accumulation inside par_map", t.text),
            });
        } else if t.kind == TokKind::Ident
            && REDUCTIONS.contains(&t.text.as_str())
            && k > open
            && toks[k - 1].is_punct('.')
            && next_is(toks, k, end, '(')
        {
            item.sources.push(Source {
                kind: SourceKind::ParMapAccum,
                line: t.line,
                col: t.col,
                what: format!(".{}() reduction inside par_map", t.text),
            });
        }
        k += 1;
    }
}

fn next_is(toks: &[Tok], k: usize, end: usize, c: char) -> bool {
    k + 1 < end && toks[k + 1].is_punct(c)
}

fn src(kind: SourceKind, t: &Tok) -> Source {
    Source {
        kind,
        line: t.line,
        col: t.col,
        what: t.text.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("fixture.rs", src)
    }

    #[test]
    fn fns_and_owners() {
        let p = parse(
            "fn free() {}\n\
             impl Foo { fn method(&self) {} }\n\
             impl Display for Bar { fn fmt(&self) {} }\n\
             trait T { fn provided(&self) { self.required(); } fn required(&self); }\n\
             mod inner { fn nested() {} }\n",
        );
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Foo".into())),
                ("fmt".into(), Some("Bar".into())),
                ("provided".into(), Some("T".into())),
                ("nested".into(), None),
            ]
        );
    }

    #[test]
    fn calls_extracted() {
        let p = parse("fn f() { helper(); cluster::place(x); Type::new(); obj.method(1); }\n");
        let calls: Vec<(Vec<String>, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.path.clone(), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                (vec!["helper".to_string()], false),
                (vec!["cluster".to_string(), "place".to_string()], false),
                (vec!["Type".to_string(), "new".to_string()], false),
                (vec!["method".to_string()], true),
            ]
        );
    }

    #[test]
    fn sources_detected() {
        let p = parse(
            "fn f() { let t = Instant::now(); let r = thread_rng(); \
             let m: HashMap<u32, u32> = HashMap::new(); \
             std::fs::read_dir(d); x.unwrap(); panic!(\"boom\"); v[0]; }\n",
        );
        let kinds: Vec<SourceKind> = p.fns[0].sources.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SourceKind::WallClock));
        assert!(kinds.contains(&SourceKind::AmbientRng));
        assert!(kinds.contains(&SourceKind::HashCollection));
        assert!(kinds.contains(&SourceKind::ReadDir));
        assert!(kinds.contains(&SourceKind::UnwrapExpect));
        assert!(kinds.contains(&SourceKind::PanicMacro));
        assert!(kinds.contains(&SourceKind::SliceIndex));
    }

    #[test]
    fn test_items_excluded() {
        let p = parse("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "live");
    }

    #[test]
    fn par_map_accumulation() {
        let p = parse(
            "fn f(v: &[f64]) -> f64 { let mut acc = 0.0; \
             simcore::par_map(v, 4, |_, x| { acc += x; 0.0 }); acc }\n",
        );
        assert!(p.fns[0]
            .sources
            .iter()
            .any(|s| s.kind == SourceKind::ParMapAccum));
        // A pure per-item map accumulates nothing.
        let p = parse("fn g(v: &[f64]) { simcore::par_map(v, 4, |_, x| x * 2.0); }\n");
        assert!(!p.fns[0]
            .sources
            .iter()
            .any(|s| s.kind == SourceKind::ParMapAccum));
    }

    #[test]
    fn hash_reduce_detected() {
        let p = parse("fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }\n");
        assert!(p.fns[0]
            .sources
            .iter()
            .any(|s| s.kind == SourceKind::HashReduce));
        // Ordered collections reduce deterministically.
        let p = parse("fn g(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n");
        assert!(!p.fns[0]
            .sources
            .iter()
            .any(|s| s.kind == SourceKind::HashReduce));
    }

    #[test]
    fn seam_attaches_to_fn() {
        let p = parse(
            "// lint:seam(deep-det-taint) reason=\"sorted after read\"\n\
             fn f() { std::fs::read_dir(d); }\n",
        );
        assert_eq!(p.fns[0].seam_rules, vec!["deep-det-taint".to_string()]);
        assert!(p.unattached_seams.is_empty());
        let p = parse("// lint:seam(deep-det-taint) reason=\"drifted\"\nstruct S;\n");
        assert_eq!(p.unattached_seams.len(), 1);
    }
}
