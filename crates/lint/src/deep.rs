//! `--deep` mode: interprocedural passes over the workspace call graph.
//!
//! Three passes, all driven by the same [`crate::callgraph::Graph`]:
//!
//! * **`deep-det-taint`** — seed taint at wall-clock reads, ambient
//!   RNG draws, unordered-collection mentions and `fs::read_dir`
//!   inside deterministic-tier files; flag any seed reachable from a
//!   deterministic-tier entry point (`Scheduler::schedule*`, the
//!   engine `begin`/`step`/`run`/`inject_job`/`restore` seam, service
//!   recovery/replay). A `// lint:seam(deep-det-taint) reason="…"`
//!   on a `fn` declares it a sanctioned boundary: the search does not
//!   traverse into it and seeds inside it are contained (e.g. a
//!   directory scan that sorts its results before returning).
//! * **`deep-panic-path`** — can a hot-path entry point transitively
//!   reach a `panic!`-family macro, `.unwrap()`/`.expect()`, or
//!   hot-tier slice indexing? Reported with the shortest witness call
//!   chain, rustc-style.
//! * **`deep-fp-reduction`** — float-accumulation hazards: compound
//!   accumulation or order-sensitive reductions inside `par_map`
//!   closures (thread count changes grouping), and reductions chained
//!   onto unordered-collection iteration (seed changes order). This
//!   pass is intra-procedural; the sources are already precise.
//!
//! Findings are anchored at the **seed** line, so the existing
//! `lint:allow` escape hatch works unchanged: an allow for either the
//! deep rule or the corresponding local rule (`det-wall-clock`,
//! `panic-unwrap`, …) at the seed line suppresses the deep finding,
//! and the workspace scan credits that allow as used.

use crate::callgraph::{FnId, Graph};
use crate::parse::{ParsedFile, SourceKind};
use crate::policy::policy_for;
use crate::rules::Finding;
use std::collections::BTreeSet;

/// Structured companion to a deep [`Finding`], for the JSON report.
#[derive(Debug, Clone)]
pub struct DeepDetail {
    /// Entry point the witness chain starts from (qualified name).
    pub entry: String,
    /// Entry → … → seed fn, qualified names.
    pub chain: Vec<String>,
}

/// Result of the deep passes.
#[derive(Debug, Default)]
pub struct DeepReport {
    /// Unsuppressed findings, in (file, line, col, rule) order.
    pub findings: Vec<Finding>,
    /// Witness details, aligned index-for-index with `findings`.
    /// Empty chain for intra-procedural (`deep-fp-reduction`) and
    /// meta (`lint-seam-unattached`) findings.
    pub details: Vec<DeepDetail>,
    /// Findings suppressed by `lint:allow` at the seed line.
    pub suppressed: usize,
    /// `(file, comment line, deep rule)` of allows the deep pass used
    /// — the workspace unused-allow audit subtracts these.
    pub allows_used: Vec<(String, u32, &'static str)>,
    /// Graph size, for the report header.
    pub fn_count: usize,
    pub edge_count: usize,
    pub entry_count: usize,
}

/// Entry-point names for the engine streaming seam.
const SIM_ENTRIES: &[&str] = &["begin", "step", "run", "inject_job", "restore"];
/// Entry-point names for service recovery/replay.
const SERVICE_ENTRIES: &[&str] = &["recover", "replay_one", "tick", "submit", "replay_inject"];

/// Run all deep passes. `files` must be sorted by path (the workspace
/// walker guarantees this); everything downstream is deterministic.
pub fn analyze(files: &[ParsedFile]) -> DeepReport {
    let graph = Graph::build(files);
    let mut report = DeepReport {
        fn_count: graph.fns.len(),
        edge_count: graph.edges.iter().map(Vec::len).sum(),
        ..DeepReport::default()
    };

    let det_entries = entry_points(&graph, true);
    let hot_entries = entry_points(&graph, false);
    report.entry_count = det_entries
        .iter()
        .chain(&hot_entries)
        .collect::<BTreeSet<_>>()
        .len();

    let mut out: Vec<(Finding, DeepDetail)> = Vec::new();

    // Pass 1: determinism taint, over the graph with `deep-det-taint`
    // seams removed.
    run_reach_pass(
        &graph,
        &det_entries,
        "deep-det-taint",
        |node, kind| {
            policy_for(&node.file).deterministic
                && matches!(
                    kind,
                    SourceKind::WallClock
                        | SourceKind::AmbientRng
                        | SourceKind::HashCollection
                        | SourceKind::ReadDir
                )
        },
        |what, kind, entry, chain| {
            let cause = match kind {
                SourceKind::WallClock => "reads the wall clock",
                SourceKind::AmbientRng => "draws ambient randomness",
                SourceKind::HashCollection => "iterates in seed-dependent order",
                _ => "iterates in OS-dependent order",
            };
            format!(
                "`{what}` {cause} and is reachable from deterministic entry \
                 `{entry}` (via {}); route through a seeded/virtual-time seam \
                 or mark the containing fn `lint:seam(deep-det-taint)`",
                chain.join(" -> ")
            )
        },
        &mut out,
    );

    // Pass 2: panic reachability from hot-path entries. Slice-index
    // seeds only count in hot-tier files (elsewhere the local rule
    // doesn't apply either); panic macros and unwraps count anywhere
    // in parsed library code — the point of the transitive pass is to
    // catch a hot path calling into a panicking helper two crates
    // away.
    run_reach_pass(
        &graph,
        &hot_entries,
        "deep-panic-path",
        |node, kind| match kind {
            SourceKind::PanicMacro | SourceKind::UnwrapExpect => true,
            SourceKind::SliceIndex => policy_for(&node.file).hot_path,
            _ => false,
        },
        |what, _, entry, chain| {
            format!(
                "`{what}` can panic and is reachable from hot-path entry \
                 `{entry}` (via {}); degrade gracefully or justify with \
                 lint:allow at this line",
                chain.join(" -> ")
            )
        },
        &mut out,
    );

    // Pass 3: FP-reduction hazards (intra-procedural, det tier only).
    for pf in files {
        if !policy_for(&pf.file).deterministic {
            continue;
        }
        for f in &pf.fns {
            if f.seam_rules.iter().any(|r| r == "deep-fp-reduction") {
                continue;
            }
            for s in &f.sources {
                if matches!(s.kind, SourceKind::ParMapAccum | SourceKind::HashReduce) {
                    out.push((
                        Finding {
                            file: pf.file.clone(),
                            line: s.line,
                            col: s.col,
                            rule: "deep-fp-reduction",
                            message: format!(
                                "{} in `{}`: operand grouping depends on thread \
                                 count or collection order, so float results are \
                                 not reproducible; accumulate per-item results in \
                                 a fixed order instead",
                                s.what,
                                qualified(&f.name, f.owner.as_deref()),
                            ),
                        },
                        DeepDetail {
                            entry: String::new(),
                            chain: Vec::new(),
                        },
                    ));
                }
            }
        }
    }

    // Meta: seam annotations that attached to nothing suppress
    // nothing — surface them instead of silently ignoring drift.
    for pf in files {
        if policy_for(&pf.file) == crate::policy::FilePolicy::NONE {
            continue;
        }
        for (line, rules) in &pf.unattached_seams {
            out.push((
                Finding {
                    file: pf.file.clone(),
                    line: *line,
                    col: 1,
                    rule: "lint-seam-unattached",
                    message: format!(
                        "lint:seam({rules}) does not attach to any fn; move it \
                         to the line directly above the fn it sanctions"
                    ),
                },
                DeepDetail {
                    entry: String::new(),
                    chain: Vec::new(),
                },
            ));
        }
    }

    // Apply seed-line `lint:allow` suppressions, then order the
    // survivors.
    let mut kept: Vec<(Finding, DeepDetail)> = Vec::new();
    for (f, d) in out {
        let pf = files.iter().find(|p| p.file == f.file);
        let allow = pf.and_then(|p| {
            p.allows.iter().find(|a| {
                a.target_line == f.line
                    && a.rules
                        .iter()
                        .any(|r| r == f.rule || deep_local_alias(f.rule, r))
            })
        });
        match allow {
            Some(a) => {
                report.suppressed += 1;
                report.allows_used.push((f.file.clone(), a.at_line, f.rule));
            }
            None => kept.push((f, d)),
        }
    }
    kept.sort_by(|a, b| {
        (&a.0.file, a.0.line, a.0.col, a.0.rule).cmp(&(&b.0.file, b.0.line, b.0.col, b.0.rule))
    });
    kept.dedup_by(|a, b| {
        a.0.file == b.0.file && a.0.line == b.0.line && a.0.col == b.0.col && a.0.rule == b.0.rule
    });
    report.allows_used.sort();
    report.allows_used.dedup();
    for (f, d) in kept {
        report.findings.push(f);
        report.details.push(d);
    }
    report
}

/// Does a line-level allow for local rule `allowed` also cover deep
/// rule `deep`? (The seed line is the same physical line, so the
/// author's argument applies to both views of the hazard.)
fn deep_local_alias(deep: &str, allowed: &str) -> bool {
    match deep {
        "deep-det-taint" => matches!(
            allowed,
            "det-wall-clock" | "det-ambient-rng" | "det-hash-collection"
        ),
        "deep-panic-path" => matches!(
            allowed,
            "panic-macro" | "panic-unwrap" | "panic-slice-index"
        ),
        "deep-fp-reduction" => allowed == "det-float-ord",
        _ => false,
    }
}

fn qualified(name: &str, owner: Option<&str>) -> String {
    match owner {
        Some(o) => format!("{o}::{name}"),
        None => name.to_string(),
    }
}

/// Deterministic-tier (`det = true`) or hot-path entry points.
fn entry_points(graph: &Graph, det: bool) -> Vec<FnId> {
    let mut out = Vec::new();
    for (id, n) in graph.fns.iter().enumerate() {
        let pol = policy_for(&n.file);
        let tier_ok = if det { pol.deterministic } else { pol.hot_path };
        if !tier_ok {
            continue;
        }
        let name = n.item.name.as_str();
        let is_entry = matches!(name, "schedule" | "schedule_stream")
            || (n.item.owner.as_deref() == Some("Simulation") && SIM_ENTRIES.contains(&name))
            || (n.file.contains("crates/service/") && SERVICE_ENTRIES.contains(&name));
        if is_entry {
            out.push(id);
        }
    }
    out
}

/// One reachability pass: BFS from `entries` over the graph minus
/// edges into fns seam-marked for `rule`, then report every reached
/// source accepted by `seed_filter`.
#[allow(clippy::too_many_arguments)]
fn run_reach_pass(
    graph: &Graph,
    entries: &[FnId],
    rule: &'static str,
    seed_filter: impl Fn(&crate::callgraph::Node, SourceKind) -> bool,
    message: impl Fn(&str, SourceKind, &str, &[String]) -> String,
    out: &mut Vec<(Finding, DeepDetail)>,
) {
    // Remove seam-marked fns from the traversal: taint does not flow
    // *through* a sanctioned boundary, and seeds *inside* one are
    // contained. (An entry that is itself a seam is dropped too.)
    let sealed: Vec<bool> = graph
        .fns
        .iter()
        .map(|n| n.item.seam_rules.iter().any(|r| r == rule))
        .collect();
    let pruned = Graph {
        fns: graph.fns.clone(),
        edges: graph
            .edges
            .iter()
            .map(|es| es.iter().copied().filter(|&v| !sealed[v]).collect())
            .collect(),
    };
    let live_entries: Vec<FnId> = entries.iter().copied().filter(|&e| !sealed[e]).collect();
    let reach = pruned.reach_from(&live_entries);

    for (id, n) in graph.fns.iter().enumerate() {
        if !reach.seen[id] || sealed[id] {
            continue;
        }
        let chain = pruned.witness(&reach, id);
        let entry = graph.fns[reach.entry_of[id]].qualified();
        for s in &n.item.sources {
            if !seed_filter(n, s.kind) {
                continue;
            }
            out.push((
                Finding {
                    file: n.file.clone(),
                    line: s.line,
                    col: s.col,
                    rule,
                    message: message(&s.what, s.kind, &entry, &chain),
                },
                DeepDetail {
                    entry: entry.clone(),
                    chain: chain.clone(),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    /// Paths must look like workspace det/hot-tier files for policy.
    const DET: &str = "crates/rl/src/fixture.rs"; // det, not hot
    const HOT: &str = "crates/sim/src/fixture.rs"; // det + hot

    fn run(srcs: &[(&str, &str)]) -> DeepReport {
        let files: Vec<ParsedFile> = srcs.iter().map(|(f, s)| parse_file(f, s)).collect();
        analyze(&files)
    }

    #[test]
    fn taint_through_helper_chain() {
        let r = run(&[(
            DET,
            "fn schedule() { helper(); }\n\
             fn helper() { leaf(); }\n\
             fn leaf() { let t = Instant::now(); }\n",
        )]);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "deep-det-taint")
            .expect("taint finding");
        assert!(
            f.message.contains("schedule -> helper -> leaf"),
            "{}",
            f.message
        );
    }

    #[test]
    fn seam_contains_taint() {
        let r = run(&[(
            DET,
            "fn schedule() { helper(); }\n\
             // lint:seam(deep-det-taint) reason=\"output sorted before return\"\n\
             fn helper() { std::fs::read_dir(d); }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "deep-det-taint"));
    }

    #[test]
    fn panic_witness_chain() {
        let r = run(&[(
            HOT,
            "impl Simulation { fn step(&mut self) { helper(); } }\n\
             fn helper() { panic!(\"boom\"); }\n",
        )]);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "deep-panic-path")
            .expect("panic finding");
        assert!(
            f.message.contains("Simulation::step -> helper"),
            "{}",
            f.message
        );
    }

    #[test]
    fn allow_at_seed_suppresses_deep_finding() {
        let r = run(&[(
            HOT,
            "impl Simulation { fn step(&mut self) { helper(); } }\n\
             fn helper() {\n\
                 let x = v.first().unwrap(); // lint:allow(panic-unwrap) reason=\"v checked non-empty\"\n\
             }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "deep-panic-path"));
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.allows_used.len(), 1);
    }

    #[test]
    fn seam_contains_panic() {
        let r = run(&[(
            HOT,
            "impl Simulation { fn step(&mut self) { checked(); } }\n\
             // lint:seam(deep-panic-path) reason=\"panics only on a corrupt snapshot, rejected earlier\"\n\
             fn checked() { v.first().unwrap(); }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "deep-panic-path"));
    }

    #[test]
    fn seam_contains_fp_reduction() {
        let r = run(&[(
            DET,
            "// lint:seam(deep-fp-reduction) reason=\"per-item results are re-reduced in index order by the caller\"\n\
             fn f(v: &[f64]) -> f64 { let mut acc = 0.0; \
             simcore::par_map(v, 4, |_, x| { acc += x; 0.0 }); acc }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "deep-fp-reduction"));
    }

    #[test]
    fn unreachable_panic_not_flagged() {
        let r = run(&[(
            HOT,
            "impl Simulation { fn step(&mut self) {} }\n\
             fn dead_helper() { panic!(\"never called\"); }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "deep-panic-path"));
    }

    #[test]
    fn fp_reduction_in_par_map() {
        let r = run(&[(
            DET,
            "fn f(v: &[f64]) -> f64 { let mut acc = 0.0; \
             simcore::par_map(v, 4, |_, x| { acc += x; 0.0 }); acc }\n",
        )]);
        assert!(r.findings.iter().any(|f| f.rule == "deep-fp-reduction"));
    }

    #[test]
    fn unattached_seam_reported() {
        let r = run(&[(
            DET,
            "// lint:seam(deep-det-taint) reason=\"drift\"\nstruct S;\n",
        )]);
        assert!(r.findings.iter().any(|f| f.rule == "lint-seam-unattached"));
    }
}
