//! The threaded front-end: a bounded queue in front of the core.
//!
//! [`Service::spawn`] moves the core onto a worker thread behind a
//! `std::sync::mpsc::sync_channel`. The channel *is* the arrival
//! queue: its capacity bounds how far producers can run ahead of the
//! decision loop, and a full channel surfaces as
//! [`SubmitError::Backpressure`] instead of blocking the caller —
//! overload degrades by shedding, never by stalling submitters.
//!
//! The worker alternates between draining the channel (non-blocking)
//! and running scheduler rounds; when the engine has no work it
//! parks on a blocking `recv` so an idle service costs nothing. No
//! wall clock is read anywhere on this path — the deterministic-tier
//! lint holds for the whole crate.

use crate::core::{Service, ServiceStats};
use metrics::RunMetrics;
use mlfs_sim::engine::StepOutcome;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use workload::JobSpec;

/// Why a non-blocking submission failed. The spec comes back so the
/// caller can retry, reroute, or count the shed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The arrival queue is full — the decision loop is saturated.
    Backpressure(JobSpec),
    /// The worker is gone (finished or panicked).
    Closed(JobSpec),
}

/// What the worker thread hands back at shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Final run metrics (same shape as a batch run's).
    pub metrics: RunMetrics,
    /// Engine-side submission counters.
    pub stats: ServiceStats,
    /// Deepest backlog (queued tasks + unadmitted arrivals) the
    /// decision loop observed — the queue-depth headline of
    /// `BENCH_service.json`.
    pub max_backlog: usize,
    /// True when the worker thread panicked; `metrics`/`stats` are
    /// defaults in that case, not measurements.
    pub worker_panicked: bool,
    /// Durability-layer telemetry (WAL appends/fsyncs, snapshot
    /// writes, recoveries) when the service persisted state.
    pub durability: Option<obs::TelemetrySnapshot>,
    /// First durability I/O failure, if persistence stopped mid-run.
    pub durability_error: Option<String>,
}

/// Deterministic backoff for retrying a backpressured submission:
/// attempt `k` (1-based) waits `base × 2^(k−1)` units, capped at
/// `max`, giving up after `attempts` tries. The same doubling shape
/// (and default cap) as the straggler blacklist's re-admission
/// backoff; units are thread yields in [`ServiceHandle`], abstract
/// in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-attempt wait, in yield units.
    pub base: u32,
    /// Per-attempt wait ceiling.
    pub max: u32,
    /// Total submission attempts before giving up.
    pub attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: 3,
            max: 120,
            attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// Wait before attempt `k` (1-based; attempt 1 never waits).
    pub fn backoff(&self, k: u32) -> u32 {
        if k <= 1 {
            return 0;
        }
        self.base
            .saturating_mul(1u32 << (k - 2).min(30))
            .min(self.max)
    }
}

/// Drive `submit` under `policy`, calling `wait(n)` between attempts.
/// Pure with respect to time — [`ServiceHandle::submit_with_retry`]
/// passes a thread-yield `wait`; the give-up unit test passes a
/// counter. Returns the spec's final refusal if every attempt fails.
#[allow(clippy::result_large_err)]
fn submit_with_retry_impl<S, W>(
    policy: RetryPolicy,
    spec: JobSpec,
    mut submit: S,
    mut wait: W,
) -> Result<(), SubmitError>
where
    S: FnMut(JobSpec) -> Result<(), SubmitError>,
    W: FnMut(u32),
{
    let mut spec = spec;
    let attempts = policy.attempts.max(1);
    for k in 1..=attempts {
        let pause = policy.backoff(k);
        if pause > 0 {
            wait(pause);
        }
        match submit(spec) {
            Ok(()) => return Ok(()),
            // Closed never heals: retrying only burns time.
            Err(SubmitError::Closed(s)) => return Err(SubmitError::Closed(s)),
            Err(SubmitError::Backpressure(s)) => spec = s,
        }
    }
    Err(SubmitError::Backpressure(spec))
}

/// Handle to a running service worker. Dropping the handle (or
/// calling [`ServiceHandle::finish`]) closes the arrival queue; the
/// worker then drains remaining work and exits.
pub struct ServiceHandle {
    tx: SyncSender<JobSpec>,
    join: std::thread::JoinHandle<ServiceReport>,
}

impl Service {
    /// Move the core onto a worker thread behind a bounded arrival
    /// queue of `queue_capacity` jobs.
    pub fn spawn(self, queue_capacity: usize) -> ServiceHandle {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_capacity);
        let join = std::thread::spawn(move || worker_loop(self, rx));
        ServiceHandle { tx, join }
    }
}

impl ServiceHandle {
    /// Non-blocking submit. `Err(Backpressure)` means the bounded
    /// queue is full right now; the job was *not* enqueued.
    // The Err variants hand the spec back by value so a refused
    // caller can retry without a heap allocation per shed.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec) -> Result<(), SubmitError> {
        match self.tx.try_send(spec) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(s)) => Err(SubmitError::Backpressure(s)),
            Err(TrySendError::Disconnected(s)) => Err(SubmitError::Closed(s)),
        }
    }

    /// [`ServiceHandle::submit`] with bounded deterministic retries
    /// on [`SubmitError::Backpressure`]: attempt `k` first yields the
    /// thread `base × 2^(k−1)` times (capped), giving the decision
    /// loop a chance to drain, then resubmits. Gives up after
    /// `policy.attempts` tries, handing the spec back. `Closed` is
    /// returned immediately — a gone worker never heals.
    #[allow(clippy::result_large_err)]
    pub fn submit_with_retry(&self, spec: JobSpec, policy: RetryPolicy) -> Result<(), SubmitError> {
        submit_with_retry_impl(
            policy,
            spec,
            |s| self.submit(s),
            |n| {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            },
        )
    }

    /// Close the arrival queue and wait for the worker to drain all
    /// accepted work and finish.
    pub fn finish(self) -> ServiceReport {
        drop(self.tx);
        match self.join.join() {
            Ok(report) => report,
            Err(_) => ServiceReport {
                worker_panicked: true,
                ..ServiceReport::default()
            },
        }
    }
}

/// The decision loop. Invariants:
///
/// * every queued submission is admitted before the next round, so
///   an arrival's placement latency is at most one round plus the
///   round's own decision time;
/// * the engine never runs an empty round — with no work the loop
///   parks on the channel instead of ticking;
/// * after [`StepOutcome::Horizon`] the loop stops scheduling (the
///   horizon advanced the world to `max_time`) and only drains the
///   channel until the producers hang up.
fn worker_loop(mut svc: Service, rx: Receiver<JobSpec>) -> ServiceReport {
    let mut open = true;
    let mut horizon = false;
    let mut max_backlog = 0usize;
    loop {
        // Drain everything already queued, without blocking.
        loop {
            match rx.try_recv() {
                Ok(spec) => {
                    svc.submit(spec);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        max_backlog = max_backlog.max(svc.backlog());
        if svc.has_work() && !horizon {
            if svc.tick() == StepOutcome::Horizon {
                horizon = true;
            }
        } else if open {
            // Idle (or past the horizon): park until the next
            // submission or hang-up.
            match rx.recv() {
                Ok(spec) => {
                    svc.submit(spec);
                }
                Err(_) => open = false,
            }
        } else {
            break;
        }
    }
    let stats = svc.stats();
    let durability = svc.durability_telemetry();
    let durability_error = svc.durability_error();
    ServiceReport {
        metrics: svc.finish(),
        stats,
        max_backlog,
        worker_panicked: false,
        durability,
        durability_error,
    }
}

#[cfg(test)]
// The test closures return `SubmitError` by design: the real channel
// hands the full `JobSpec` back on refusal, and the retry loop's
// contract is exactly that round-trip.
#[allow(clippy::result_large_err)]
mod tests {
    use super::*;
    use cluster::JobId;
    use workload::{TraceConfig, TraceGenerator};

    fn spec(id: u32) -> JobSpec {
        let mut cfg = TraceConfig::paper_sim(0.25, 64.0, 1.0, 7);
        cfg.jobs = 1;
        let mut s = TraceGenerator::new(cfg)
            .generate()
            .pop()
            .expect("one-job trace");
        s.id = JobId(id);
        s
    }

    #[test]
    fn backoff_doubles_from_base_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), 0);
        assert_eq!(p.backoff(2), 3);
        assert_eq!(p.backoff(3), 6);
        assert_eq!(p.backoff(4), 12);
        // 3·2^6 = 192 > 120 → capped.
        assert_eq!(p.backoff(8), 120);
    }

    #[test]
    fn retry_gives_up_after_bounded_attempts_and_returns_the_job() {
        let p = RetryPolicy::default();
        let mut tries = 0u32;
        let mut waits: Vec<u32> = Vec::new();
        let out = submit_with_retry_impl(
            p,
            spec(7),
            |s| {
                tries += 1;
                Err(SubmitError::Backpressure(s))
            },
            |n| waits.push(n),
        );
        assert_eq!(tries, 8);
        assert_eq!(waits, vec![3, 6, 12, 24, 48, 96, 120]);
        match out {
            Err(SubmitError::Backpressure(s)) => assert_eq!(s.id, JobId(7)),
            other => panic!("expected give-up with the spec, got {other:?}"),
        }
    }

    #[test]
    fn retry_succeeds_once_backpressure_clears() {
        let p = RetryPolicy::default();
        let mut tries = 0u32;
        let out = submit_with_retry_impl(
            p,
            spec(1),
            |s| {
                tries += 1;
                if tries < 3 {
                    Err(SubmitError::Backpressure(s))
                } else {
                    Ok(())
                }
            },
            |_| {},
        );
        assert_eq!(out, Ok(()));
        assert_eq!(tries, 3);
    }

    #[test]
    fn retry_does_not_retry_closed() {
        let p = RetryPolicy::default();
        let mut tries = 0u32;
        let out = submit_with_retry_impl(
            p,
            spec(1),
            |s| {
                tries += 1;
                Err(SubmitError::Closed(s))
            },
            |_| {},
        );
        assert_eq!(tries, 1);
        assert!(matches!(out, Err(SubmitError::Closed(_))));
    }
}
