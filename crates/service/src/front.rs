//! The threaded front-end: a bounded queue in front of the core.
//!
//! [`Service::spawn`] moves the core onto a worker thread behind a
//! `std::sync::mpsc::sync_channel`. The channel *is* the arrival
//! queue: its capacity bounds how far producers can run ahead of the
//! decision loop, and a full channel surfaces as
//! [`SubmitError::Backpressure`] instead of blocking the caller —
//! overload degrades by shedding, never by stalling submitters.
//!
//! The worker alternates between draining the channel (non-blocking)
//! and running scheduler rounds; when the engine has no work it
//! parks on a blocking `recv` so an idle service costs nothing. No
//! wall clock is read anywhere on this path — the deterministic-tier
//! lint holds for the whole crate.

use crate::core::{Service, ServiceStats};
use metrics::RunMetrics;
use mlfs_sim::engine::StepOutcome;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use workload::JobSpec;

/// Why a non-blocking submission failed. The spec comes back so the
/// caller can retry, reroute, or count the shed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The arrival queue is full — the decision loop is saturated.
    Backpressure(JobSpec),
    /// The worker is gone (finished or panicked).
    Closed(JobSpec),
}

/// What the worker thread hands back at shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Final run metrics (same shape as a batch run's).
    pub metrics: RunMetrics,
    /// Engine-side submission counters.
    pub stats: ServiceStats,
    /// Deepest backlog (queued tasks + unadmitted arrivals) the
    /// decision loop observed — the queue-depth headline of
    /// `BENCH_service.json`.
    pub max_backlog: usize,
    /// True when the worker thread panicked; `metrics`/`stats` are
    /// defaults in that case, not measurements.
    pub worker_panicked: bool,
}

/// Handle to a running service worker. Dropping the handle (or
/// calling [`ServiceHandle::finish`]) closes the arrival queue; the
/// worker then drains remaining work and exits.
pub struct ServiceHandle {
    tx: SyncSender<JobSpec>,
    join: std::thread::JoinHandle<ServiceReport>,
}

impl Service {
    /// Move the core onto a worker thread behind a bounded arrival
    /// queue of `queue_capacity` jobs.
    pub fn spawn(self, queue_capacity: usize) -> ServiceHandle {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_capacity);
        let join = std::thread::spawn(move || worker_loop(self, rx));
        ServiceHandle { tx, join }
    }
}

impl ServiceHandle {
    /// Non-blocking submit. `Err(Backpressure)` means the bounded
    /// queue is full right now; the job was *not* enqueued.
    // The Err variants hand the spec back by value so a refused
    // caller can retry without a heap allocation per shed.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec) -> Result<(), SubmitError> {
        match self.tx.try_send(spec) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(s)) => Err(SubmitError::Backpressure(s)),
            Err(TrySendError::Disconnected(s)) => Err(SubmitError::Closed(s)),
        }
    }

    /// Close the arrival queue and wait for the worker to drain all
    /// accepted work and finish.
    pub fn finish(self) -> ServiceReport {
        drop(self.tx);
        match self.join.join() {
            Ok(report) => report,
            Err(_) => ServiceReport {
                worker_panicked: true,
                ..ServiceReport::default()
            },
        }
    }
}

/// The decision loop. Invariants:
///
/// * every queued submission is admitted before the next round, so
///   an arrival's placement latency is at most one round plus the
///   round's own decision time;
/// * the engine never runs an empty round — with no work the loop
///   parks on the channel instead of ticking;
/// * after [`StepOutcome::Horizon`] the loop stops scheduling (the
///   horizon advanced the world to `max_time`) and only drains the
///   channel until the producers hang up.
fn worker_loop(mut svc: Service, rx: Receiver<JobSpec>) -> ServiceReport {
    let mut open = true;
    let mut horizon = false;
    let mut max_backlog = 0usize;
    loop {
        // Drain everything already queued, without blocking.
        loop {
            match rx.try_recv() {
                Ok(spec) => {
                    svc.submit(spec);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        max_backlog = max_backlog.max(svc.backlog());
        if svc.has_work() && !horizon {
            if svc.tick() == StepOutcome::Horizon {
                horizon = true;
            }
        } else if open {
            // Idle (or past the horizon): park until the next
            // submission or hang-up.
            match rx.recv() {
                Ok(spec) => {
                    svc.submit(spec);
                }
                Err(_) => open = false,
            }
        } else {
            break;
        }
    }
    let stats = svc.stats();
    ServiceReport {
        metrics: svc.finish(),
        stats,
        max_backlog,
        worker_panicked: false,
    }
}
