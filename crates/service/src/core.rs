//! The synchronous service core: admission → injection → rounds.
//!
//! [`Service`] owns a [`Simulation`] plus the scheduler it drives.
//! Nothing here is asynchronous — the threaded front-end in
//! [`crate::front`] layers a channel on top — so tests can drive the
//! core round-by-round and compare the result bit-for-bit against the
//! batch engine.

use crate::admission::{AdmissionPolicy, ShedReason, SubmitOutcome};
use metrics::RunMetrics;
use mlfs::Scheduler;
use mlfs_sim::engine::{SimConfig, SimSnapshot, Simulation, StepOutcome};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use workload::JobSpec;

/// Long-running scheduler front-end over the simulation engine.
pub struct Service {
    sim: Simulation,
    scheduler: Box<dyn Scheduler>,
    admission: Option<AdmissionPolicy>,
    accepted: u64,
    shed: u64,
}

/// Submission counters (engine-side; channel backpressure is counted
/// by the caller, who is the one refused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs that passed admission and entered the engine.
    pub accepted: u64,
    /// Jobs refused by admission control (or duplicate ids).
    pub shed: u64,
}

/// Full service state at a round boundary: the engine snapshot plus
/// the service's own counters. The scheduler and the
/// [`AdmissionPolicy`] are *not* captured — a restarted service is
/// handed fresh ones (schedulers rebuild their view from cluster and
/// queue state, which the engine snapshot carries).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Engine state (jobs, cluster, queue, RNG streams, metrics, …).
    pub sim: SimSnapshot,
    /// Submission counters at the snapshot.
    pub stats: ServiceStats,
}

impl Service {
    /// A service over an initially empty engine. `admission: None`
    /// accepts everything (the replay-determinism configuration);
    /// `Some(policy)` sheds at the door under overload.
    pub fn new(
        cfg: SimConfig,
        scheduler: Box<dyn Scheduler>,
        admission: Option<AdmissionPolicy>,
    ) -> Self {
        Service {
            sim: Simulation::new(cfg, Vec::new()),
            scheduler,
            admission,
            accepted: 0,
            shed: 0,
        }
    }

    /// Rebuild a service from a [`ServiceSnapshot`] and the original
    /// `cfg`. Stepping the restored service yields bit-identical
    /// decisions to the uninterrupted run (`service_restart` test).
    pub fn restore(
        cfg: SimConfig,
        snap: ServiceSnapshot,
        scheduler: Box<dyn Scheduler>,
        admission: Option<AdmissionPolicy>,
    ) -> Self {
        Service {
            sim: Simulation::restore(cfg, snap.sim),
            scheduler,
            admission,
            accepted: snap.stats.accepted,
            shed: snap.stats.shed,
        }
    }

    /// Capture the full service state at the current round boundary.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            sim: self.sim.snapshot(),
            stats: self.stats(),
        }
    }

    /// Submit one job. Runs admission control, then hands the spec to
    /// the engine's sorted pending list; it is admitted into the
    /// queue at the first round where `now >= spec.arrival`.
    pub fn submit(&mut self, spec: JobSpec) -> SubmitOutcome {
        if let Some(p) = self.admission {
            let backlog = self.backlog();
            if backlog > p.max_backlog {
                self.shed += 1;
                return SubmitOutcome::Shed(ShedReason::Backlog { backlog }, spec);
            }
            let degree = self.sim.cluster_overload_degree();
            if degree > p.h_s {
                self.shed += 1;
                return SubmitOutcome::Shed(ShedReason::Overload { degree }, spec);
            }
        }
        if self.sim.inject_job(spec.clone()) {
            self.accepted += 1;
            SubmitOutcome::Accepted
        } else {
            self.shed += 1;
            SubmitOutcome::Shed(ShedReason::Duplicate, spec)
        }
    }

    /// Run exactly one scheduler round. The first call jumps the
    /// clock to the earliest pending arrival (`Simulation::begin`).
    pub fn tick(&mut self) -> StepOutcome {
        self.sim.begin(self.scheduler.as_mut());
        self.sim.step(self.scheduler.as_mut())
    }

    /// Tick until the engine reports [`StepOutcome::Drained`] (or
    /// [`StepOutcome::Horizon`]): all accepted work is finished.
    pub fn run_until_drained(&mut self) -> StepOutcome {
        loop {
            match self.tick() {
                StepOutcome::Continue => {}
                done => return done,
            }
        }
    }

    /// Finish the run: fold telemetry and return the final metrics,
    /// stamped with the scheduler's legend name (the same shape the
    /// batch `mlfs_sim::engine::run` produces).
    pub fn finish(self) -> RunMetrics {
        let name = self.scheduler.name().to_string();
        let mut m = self.sim.into_metrics();
        m.scheduler = name;
        m
    }

    /// Queued tasks plus not-yet-admitted arrivals — the admission
    /// backlog signal and the load generator's queue-depth sample.
    pub fn backlog(&self) -> usize {
        self.sim.queue_len() + self.sim.pending_arrivals()
    }

    /// True while the engine has work: unfinished jobs or pending
    /// arrivals. When false, [`Service::tick`] would only burn an
    /// empty round, so callers should wait for submissions instead.
    pub fn has_work(&self) -> bool {
        self.sim.active_jobs() > 0 || self.sim.pending_arrivals() > 0
    }

    /// Accepted jobs whose arrival time the engine has not reached
    /// yet. While this is non-zero the engine cannot drain: its idle
    /// jumps target the earliest of these arrivals.
    pub fn pending_arrivals(&self) -> usize {
        self.sim.pending_arrivals()
    }

    /// Submission counters so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.accepted,
            shed: self.shed,
        }
    }

    /// Simulated clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Scheduler round period.
    pub fn round_period(&self) -> SimDuration {
        self.sim.tick()
    }

    /// Scheduler rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.sim.rounds()
    }

    /// Unfinished jobs currently in the engine.
    pub fn active_jobs(&self) -> usize {
        self.sim.active_jobs()
    }

    /// Cluster overload degree `O_c^t` (the admission signal).
    pub fn overload_degree(&self) -> f64 {
        self.sim.cluster_overload_degree()
    }

    /// The engine's telemetry hub (decision-latency histogram,
    /// deterministic counters). Clone before [`Service::finish`].
    pub fn tracer(&self) -> std::sync::Arc<obs::Tracer> {
        self.sim.tracer()
    }
}
