//! The synchronous service core: admission → injection → rounds.
//!
//! [`Service`] owns a [`Simulation`] plus the scheduler it drives.
//! Nothing here is asynchronous — the threaded front-end in
//! [`crate::front`] layers a channel on top — so tests can drive the
//! core round-by-round and compare the result bit-for-bit against the
//! batch engine.

use crate::admission::{AdmissionPolicy, ShedReason, SubmitOutcome};
use crate::durability::{recovery, Durability, DurabilityConfig, DurabilityError, RecoveryReport};
use metrics::RunMetrics;
use mlfs::Scheduler;
use mlfs_sim::engine::{SimConfig, SimSnapshot, Simulation, StepOutcome};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use workload::JobSpec;

/// Long-running scheduler front-end over the simulation engine.
pub struct Service {
    sim: Simulation,
    scheduler: Box<dyn Scheduler>,
    admission: Option<AdmissionPolicy>,
    accepted: u64,
    shed: u64,
    durability: Option<Durability>,
}

/// Submission counters (engine-side; channel backpressure is counted
/// by the caller, who is the one refused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs that passed admission and entered the engine.
    pub accepted: u64,
    /// Jobs refused by admission control (or duplicate ids).
    pub shed: u64,
}

/// Full service state at a round boundary: the engine snapshot, the
/// service's own counters, and the scheduler's evolving state (from
/// [`mlfs::Scheduler::export_state`]; `None` for stateless
/// schedulers). The [`AdmissionPolicy`] is *not* captured — it is
/// static configuration the restarting caller supplies again.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Engine state (jobs, cluster, queue, RNG streams, metrics, …).
    pub sim: SimSnapshot,
    /// Submission counters at the snapshot.
    pub stats: ServiceStats,
    /// Scheduler state JSON (attained-service ledgers, RL trainer
    /// weights, blacklists, …) if the scheduler exports any.
    pub scheduler_state: Option<String>,
}

impl Service {
    /// A service over an initially empty engine. `admission: None`
    /// accepts everything (the replay-determinism configuration);
    /// `Some(policy)` sheds at the door under overload.
    pub fn new(
        cfg: SimConfig,
        scheduler: Box<dyn Scheduler>,
        admission: Option<AdmissionPolicy>,
    ) -> Self {
        Service {
            sim: Simulation::new(cfg, Vec::new()),
            scheduler,
            admission,
            accepted: 0,
            shed: 0,
            durability: None,
        }
    }

    /// Configure a service incrementally; the builder is how the
    /// durability layer is attached ([`ServiceBuilder::durability`])
    /// or resumed from ([`ServiceBuilder::recover`]).
    pub fn builder(cfg: SimConfig) -> ServiceBuilder {
        ServiceBuilder {
            cfg,
            admission: None,
            durability: None,
        }
    }

    /// Rebuild a service from a [`ServiceSnapshot`] and the original
    /// `cfg`. Stepping the restored service yields bit-identical
    /// decisions to the uninterrupted run (`service_restart` test).
    pub fn restore(
        cfg: SimConfig,
        snap: ServiceSnapshot,
        scheduler: Box<dyn Scheduler>,
        admission: Option<AdmissionPolicy>,
    ) -> Self {
        let mut scheduler = scheduler;
        if let Some(state) = &snap.scheduler_state {
            // Best effort: a scheduler that refuses the state (or a
            // stateless one) still rebuilds its view from the engine
            // snapshot. `durability::recovery` imports *before*
            // restore so it can reject the snapshot instead.
            let _ = scheduler.import_state(state);
        }
        Service {
            sim: Simulation::restore(cfg, snap.sim),
            scheduler,
            admission,
            accepted: snap.stats.accepted,
            shed: snap.stats.shed,
            durability: None,
        }
    }

    /// Capture the full service state at the current round boundary.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            sim: self.sim.snapshot(),
            stats: self.stats(),
            scheduler_state: self.scheduler.export_state(),
        }
    }

    /// Submit one job. Runs admission control, then hands the spec to
    /// the engine's sorted pending list; it is admitted into the
    /// queue at the first round where `now >= spec.arrival`.
    pub fn submit(&mut self, spec: JobSpec) -> SubmitOutcome {
        if let Some(p) = self.admission {
            let backlog = self.backlog();
            if backlog > p.max_backlog {
                self.shed += 1;
                return SubmitOutcome::Shed(ShedReason::Backlog { backlog }, spec);
            }
            let degree = self.sim.cluster_overload_degree();
            if degree > p.h_s {
                self.shed += 1;
                return SubmitOutcome::Shed(ShedReason::Overload { degree }, spec);
            }
        }
        if self.sim.inject_job(spec.clone()) {
            self.accepted += 1;
            if let Some(d) = &mut self.durability {
                d.on_accept(self.accepted, self.sim.rounds(), &spec);
            }
            SubmitOutcome::Accepted
        } else {
            self.shed += 1;
            SubmitOutcome::Shed(ShedReason::Duplicate, spec)
        }
    }

    /// Re-inject an already-acknowledged job during WAL replay:
    /// bypasses admission (the job was admitted pre-crash) and the
    /// WAL (the record is already on disk). Returns false on a
    /// duplicate id.
    pub(crate) fn replay_inject(&mut self, spec: JobSpec) -> bool {
        if self.sim.inject_job(spec) {
            self.accepted += 1;
            true
        } else {
            false
        }
    }

    /// Attach a durable store (recovery does this after replay so
    /// replayed ticks don't re-snapshot).
    pub(crate) fn attach_durability(&mut self, durability: Durability) {
        self.durability = Some(durability);
    }

    /// Run exactly one scheduler round. The first call jumps the
    /// clock to the earliest pending arrival (`Simulation::begin`).
    /// With durability attached, round boundaries that cross the
    /// snapshot period persist a [`ServiceSnapshot`] in-line (the
    /// threaded front-end makes this a background write from the
    /// caller's perspective).
    pub fn tick(&mut self) -> StepOutcome {
        self.sim.begin(self.scheduler.as_mut());
        let out = self.sim.step(self.scheduler.as_mut());
        if self
            .durability
            .as_ref()
            .is_some_and(|d| d.snapshot_due(self.sim.rounds()))
        {
            let round = self.sim.rounds();
            let accepted = self.accepted;
            let body = serde_json::to_string(&self.snapshot());
            if let Some(d) = &mut self.durability {
                match body {
                    Ok(body) => d.on_snapshot(round, accepted, &body),
                    Err(e) => d.record_error(format!("snapshot serialize (round {round}): {e}")),
                }
            }
        }
        out
    }

    /// Tick until the engine reports [`StepOutcome::Drained`] (or
    /// [`StepOutcome::Horizon`]): all accepted work is finished.
    pub fn run_until_drained(&mut self) -> StepOutcome {
        loop {
            match self.tick() {
                StepOutcome::Continue => {}
                done => return done,
            }
        }
    }

    /// Finish the run: fold telemetry and return the final metrics,
    /// stamped with the scheduler's legend name (the same shape the
    /// batch `mlfs_sim::engine::run` produces).
    pub fn finish(self) -> RunMetrics {
        let name = self.scheduler.name().to_string();
        let mut m = self.sim.into_metrics();
        m.scheduler = name;
        m
    }

    /// Queued tasks plus not-yet-admitted arrivals — the admission
    /// backlog signal and the load generator's queue-depth sample.
    pub fn backlog(&self) -> usize {
        self.sim.queue_len() + self.sim.pending_arrivals()
    }

    /// True while the engine has work: unfinished jobs or pending
    /// arrivals. When false, [`Service::tick`] would only burn an
    /// empty round, so callers should wait for submissions instead.
    pub fn has_work(&self) -> bool {
        self.sim.active_jobs() > 0 || self.sim.pending_arrivals() > 0
    }

    /// Accepted jobs whose arrival time the engine has not reached
    /// yet. While this is non-zero the engine cannot drain: its idle
    /// jumps target the earliest of these arrivals.
    pub fn pending_arrivals(&self) -> usize {
        self.sim.pending_arrivals()
    }

    /// Submission counters so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.accepted,
            shed: self.shed,
        }
    }

    /// Simulated clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Scheduler round period.
    pub fn round_period(&self) -> SimDuration {
        self.sim.tick()
    }

    /// Scheduler rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.sim.rounds()
    }

    /// Unfinished jobs currently in the engine.
    pub fn active_jobs(&self) -> usize {
        self.sim.active_jobs()
    }

    /// Cluster overload degree `O_c^t` (the admission signal).
    pub fn overload_degree(&self) -> f64 {
        self.sim.cluster_overload_degree()
    }

    /// The engine's telemetry hub (decision-latency histogram,
    /// deterministic counters). Clone before [`Service::finish`].
    pub fn tracer(&self) -> std::sync::Arc<obs::Tracer> {
        self.sim.tracer()
    }

    /// The durability layer's own telemetry (WAL appends/fsyncs,
    /// snapshot writes, recoveries), if durability is attached. Kept
    /// off the engine tracer so recovered runs stay bit-identical.
    pub fn durability_telemetry(&self) -> Option<obs::TelemetrySnapshot> {
        self.durability.as_ref().map(|d| d.tracer().snapshot())
    }

    /// First durability I/O failure, if persistence has stopped.
    /// Scheduling continues regardless (availability over
    /// durability); callers that need hard guarantees poll this.
    pub fn durability_error(&self) -> Option<String> {
        self.durability
            .as_ref()
            .and_then(|d| d.error().map(str::to_string))
    }
}

/// Incremental [`Service`] construction; see [`Service::builder`].
pub struct ServiceBuilder {
    cfg: SimConfig,
    admission: Option<AdmissionPolicy>,
    durability: Option<DurabilityConfig>,
}

impl ServiceBuilder {
    /// Shed at the door under overload (omit to accept everything).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Persist accepted submissions and periodic snapshots under
    /// `cfg.dir`.
    pub fn durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = Some(cfg);
        self
    }

    /// Build a **fresh** service. With a durability config this
    /// truncates any durable state already in the directory — use
    /// [`ServiceBuilder::recover`] to resume from it instead.
    pub fn build(self, scheduler: Box<dyn Scheduler>) -> Result<Service, DurabilityError> {
        let mut svc = Service::new(self.cfg, scheduler, self.admission);
        if let Some(dcfg) = self.durability {
            svc.durability = Some(Durability::create(dcfg)?);
        }
        Ok(svc)
    }

    /// Rebuild the service from the durable state in the configured
    /// directory: newest valid snapshot, WAL suffix replay, ticked
    /// back to the crash round. Errors if no durability config was
    /// given or the WAL is corrupt before its final record.
    pub fn recover(
        self,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<(Service, RecoveryReport), DurabilityError> {
        let Some(dcfg) = self.durability else {
            return Err(DurabilityError::NotConfigured);
        };
        recovery::recover(self.cfg, dcfg, scheduler, self.admission)
    }
}
