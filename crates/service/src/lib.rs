//! # service — scheduler-as-a-service front-end
//!
//! Everything before this crate treats a run as a *batch*: the full
//! job trace is known up front, `Simulation::run` consumes it, and the
//! metrics come out the other end. A production scheduler is the
//! opposite shape — a long-running process that jobs *arrive at*. This
//! crate wraps the PR 6 engine in that shape without forking it:
//!
//! * [`Service`] — the synchronous core. Jobs are submitted one at a
//!   time ([`Service::submit`]), pass MLF-C-derived admission control
//!   ([`AdmissionPolicy`]), and land in the engine's sorted pending
//!   list via `Simulation::inject_job`. Each [`Service::tick`] runs
//!   exactly one scheduler round (`Simulation::step`), batching every
//!   arrival since the previous round into the scheduler's
//!   `schedule_stream` call. Because the core is synchronous and the
//!   engine is deterministic, a recorded arrival stream replayed
//!   through a `Service` is **bit-identical** to the batch engine —
//!   the `service_determinism` test in `crates/bench` proves it for
//!   all ten figure schedulers.
//! * [`ServiceHandle`] — the threaded front-end. [`Service::spawn`]
//!   moves the core onto a worker thread behind a bounded
//!   `std::sync::mpsc::sync_channel`; [`ServiceHandle::submit`] is
//!   non-blocking and reports [`SubmitError::Backpressure`] when the
//!   queue is full, so overload never blocks (or crashes) the caller.
//! * [`ServiceSnapshot`] — crash-safe restarts. [`Service::snapshot`]
//!   serializes the full engine state at a round boundary (extending
//!   the PR 3 job-level checkpointing to the whole scheduler);
//!   [`Service::restore`] rebuilds a service that continues
//!   bit-identically to the uninterrupted run.
//! * [`durability`] — the durable version of the above: a
//!   write-ahead submission log (checksummed, torn-tail-repairing),
//!   periodic background snapshots with retention and WAL
//!   compaction, and [`ServiceBuilder::recover`], which rebuilds a
//!   crashed service from disk bit-identically (chaos-tested in
//!   `crates/service/tests/chaos.rs`).
//!
//! The load generator (`crates/bench/src/bin/service_load.rs`) drives
//! the threaded front-end closed-loop and gates throughput and p99
//! decision latency (`BENCH_service.json`); see `docs/SERVICE.md`.
//!
//! This crate is in the deterministic lint tier: nothing here reads a
//! wall clock — decision latency is measured *inside* the engine
//! (`obs` log₂ histogram) and by the load generator, which is a
//! `src/bin/` target and therefore tier-exempt.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod core;
pub mod durability;
pub mod front;

pub use admission::{AdmissionPolicy, ShedReason, SubmitOutcome};
pub use core::{Service, ServiceBuilder, ServiceSnapshot, ServiceStats};
pub use durability::{
    DurabilityConfig, DurabilityError, FsyncPolicy, RecoveryReport, WalError, WalRecord,
};
pub use front::{ServiceHandle, ServiceReport, SubmitError};
