//! Admission control: when does the service say *no*?
//!
//! The policy reuses the two signals MLF-C (§3.3.2) already computes
//! for its own stop decisions, lifted from per-job policy to
//! service-level load control:
//!
//! * **backlog** — queued tasks plus not-yet-admitted arrivals. A
//!   deep backlog means admitted jobs would only wait; shedding at
//!   the door keeps the tail of the waiting-time distribution
//!   bounded.
//! * **cluster overload degree** — `O_c^t`, the mean per-server
//!   overload degree. Above the MLF-C threshold `h_s` the cluster
//!   cannot absorb new load without slowing every running job.
//!
//! Both checks are pure functions of engine state, so shedding is
//! deterministic: the same arrival stream against the same policy
//! sheds the same jobs (the `service_backpressure` test pins this).

use serde::{Deserialize, Serialize};
use workload::JobSpec;

/// Service-level admission thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Shed when `queue_len + pending_arrivals` exceeds this.
    pub max_backlog: usize,
    /// Shed while the cluster overload degree `O_c^t` exceeds this
    /// (same default as MLF-C's `h_s`).
    pub h_s: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_backlog: 4096,
            h_s: mlfs::Params::default().h_s,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ShedReason {
    /// Backlog (queued tasks + unadmitted arrivals) over
    /// [`AdmissionPolicy::max_backlog`].
    Backlog { backlog: usize },
    /// Cluster overload degree over [`AdmissionPolicy::h_s`].
    Overload { degree: f64 },
    /// A job with this id is already known to the engine.
    Duplicate,
}

/// The outcome of one [`crate::Service::submit`] call. The spec is
/// returned on shed so the caller can retry later.
// Shed carries the spec by value on purpose: the caller gets their
// job back without a heap allocation on the (overload-hot) shed path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job entered the pending-arrival list.
    Accepted,
    /// The job was refused; nothing about engine state changed.
    Shed(ShedReason, JobSpec),
}

impl SubmitOutcome {
    /// True when the job was admitted.
    pub fn accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted)
    }
}
