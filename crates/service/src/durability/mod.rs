//! Durable service state: write-ahead submission log, background
//! snapshots, and crash recovery.
//!
//! Layered under [`crate::Service`] behind a [`DurabilityConfig`]:
//!
//! * **WAL** ([`wal`]) — every accepted submit is appended (and
//!   optionally fsynced) *before* the service acknowledges it.
//! * **Snapshots** ([`snapshot`]) — every `snapshot_every_rounds`
//!   ticks the worker serializes the full [`crate::ServiceSnapshot`]
//!   (engine + counters + scheduler state) to `snap-<round>.json`
//!   atomically, prunes old snapshots, and compacts the WAL.
//! * **Recovery** ([`recovery`]) — newest valid snapshot + WAL suffix
//!   replay reproduces the pre-crash service bit-identically; damaged
//!   files degrade gracefully (torn WAL tail → truncate, damaged
//!   snapshot → older snapshot → empty service + full replay).
//!
//! The durability layer runs its own [`obs::Tracer`] (events
//! `wal_append`/`wal_truncated`/`snapshot_write`/`recovery`, counter
//! slots 6–9) so durability bookkeeping never perturbs the engine
//! telemetry that [`metrics::RunMetrics`] folds — crash recovery must
//! be *bit-identical*, counters included.

pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use recovery::RecoveryReport;
pub use wal::{FsyncPolicy, WalError, WalRecord};

use obs::{Counter, TraceConfig, TraceEvent, Tracer};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wal::WalWriter;
use workload::JobSpec;

/// Where and how service state is persisted.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snap-<round>.json` files.
    /// Created if absent. One service per directory.
    pub dir: PathBuf,
    /// When WAL appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Snapshot every this many engine rounds (0 disables periodic
    /// snapshots; the WAL alone still bounds loss).
    pub snapshot_every_rounds: u64,
    /// How many snapshots to retain (≥ 1). Older files are deleted
    /// and the WAL is compacted past the oldest survivor.
    pub keep_snapshots: usize,
    /// Tracer for durability events/counters (separate from the
    /// engine tracer by design; see the module docs).
    pub trace: TraceConfig,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the defaults used by the bench
    /// harness: fsync every 32 appends, snapshot every 50 rounds,
    /// keep 3 snapshots, tracing disabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(32),
            snapshot_every_rounds: 50,
            keep_snapshots: 3,
            trace: TraceConfig::Disabled,
        }
    }
}

/// Errors surfaced while opening, recovering, or persisting.
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The WAL is damaged before its final record (see
    /// [`WalError::Corrupt`]) — replay cannot be trusted.
    CorruptLog {
        /// Byte offset of the damaged record.
        offset: u64,
    },
    /// The WAL replay suffix does not connect to the recovered
    /// snapshot: expected the next record to carry `expected`.
    WalGap {
        /// Sequence number recovery needed next.
        expected: u64,
        /// Sequence number actually found (0 = none).
        found: u64,
    },
    /// [`crate::ServiceBuilder::recover`] was called without a
    /// durability config.
    NotConfigured,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability io error: {e}"),
            DurabilityError::CorruptLog { offset } => {
                write!(f, "write-ahead log corrupt mid-log at byte {offset}")
            }
            DurabilityError::WalGap { expected, found } => write!(
                f,
                "write-ahead log gap: expected record seq {expected}, found {found}"
            ),
            DurabilityError::NotConfigured => {
                write!(f, "recover() requires a durability config")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(io) => DurabilityError::Io(io),
            WalError::Corrupt { offset } => DurabilityError::CorruptLog { offset },
            // Wrong magic means the file is damaged from byte 0.
            WalError::BadMagic => DurabilityError::CorruptLog { offset: 0 },
        }
    }
}

/// Live durability state owned by a [`crate::Service`]. All I/O
/// errors after open are *sticky*: the first failure is recorded and
/// persistence stops, but scheduling continues (availability over
/// durability — the caller polls [`crate::Service::durability_error`]
/// and decides).
#[derive(Debug)]
pub struct Durability {
    cfg: DurabilityConfig,
    writer: WalWriter,
    tracer: Arc<Tracer>,
    error: Option<String>,
}

impl Durability {
    /// Open `cfg.dir` as a **fresh** durable store: creates the
    /// directory, truncates any existing WAL, and removes old
    /// snapshots. Use [`crate::ServiceBuilder::recover`] to resume
    /// from existing state instead.
    pub fn create(cfg: DurabilityConfig) -> std::io::Result<Durability> {
        std::fs::create_dir_all(&cfg.dir)?;
        for (_, path) in snapshot::list_snapshots(&cfg.dir)? {
            std::fs::remove_file(path)?;
        }
        let writer = WalWriter::create(&cfg.dir.join("wal.log"))?;
        let tracer = Arc::new(Tracer::from_config(&cfg.trace)?);
        Ok(Durability {
            cfg,
            writer,
            tracer,
            error: None,
        })
    }

    /// Reattach to an existing store after recovery: append to the
    /// WAL at `valid_len` (torn tail already truncated).
    pub(crate) fn reopen(cfg: DurabilityConfig, valid_len: u64) -> std::io::Result<Durability> {
        let writer = WalWriter::open_at(&cfg.dir.join("wal.log"), valid_len)?;
        let tracer = Arc::new(Tracer::from_config(&cfg.trace)?);
        Ok(Durability {
            cfg,
            writer,
            tracer,
            error: None,
        })
    }

    /// Path of the WAL file under `dir`.
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Log one accepted submission. Must be called for every accept,
    /// in acceptance order, with the post-accept counter as `seq`.
    pub(crate) fn on_accept(&mut self, seq: u64, round: u64, spec: &JobSpec) {
        if self.error.is_some() {
            return;
        }
        let rec = WalRecord {
            seq,
            round,
            spec: spec.clone(),
        };
        match self.writer.append(&rec, self.cfg.fsync) {
            Ok((bytes, fsynced)) => {
                self.tracer.add(Counter::WalAppends, 1);
                if fsynced {
                    self.tracer.add(Counter::WalFsyncs, 1);
                }
                self.tracer.emit(|| TraceEvent::WalAppend {
                    seq,
                    round,
                    job: rec.spec.id.0,
                    bytes,
                });
            }
            Err(e) => self.error = Some(format!("wal append (seq {seq}): {e}")),
        }
    }

    /// Whether this round boundary should take a snapshot.
    pub(crate) fn snapshot_due(&self, round: u64) -> bool {
        self.error.is_none()
            && self.cfg.snapshot_every_rounds > 0
            && round > 0
            && round.is_multiple_of(self.cfg.snapshot_every_rounds)
    }

    /// Persist a snapshot body, prune old snapshots, compact the WAL.
    pub(crate) fn on_snapshot(&mut self, round: u64, accepted: u64, body: &str) {
        if self.error.is_some() {
            return;
        }
        // The WAL must be on disk past this snapshot before the
        // snapshot claims coverage up to `accepted`.
        if let Err(e) = self.writer.sync() {
            self.error = Some(format!("wal sync before snapshot (round {round}): {e}"));
            return;
        }
        match snapshot::write_snapshot(&self.cfg.dir, round, accepted, body) {
            Ok(bytes) => {
                self.tracer.add(Counter::SnapshotWrites, 1);
                self.tracer.emit(|| TraceEvent::SnapshotWrite {
                    round,
                    accepted,
                    bytes,
                });
            }
            Err(e) => {
                self.error = Some(format!("snapshot write (round {round}): {e}"));
                return;
            }
        }
        match snapshot::apply_retention(&self.cfg.dir, self.cfg.keep_snapshots) {
            Ok(floor) => {
                if let Err(e) = self.writer.compact(floor) {
                    self.error = Some(format!("wal compact (floor {floor}): {e}"));
                }
            }
            Err(e) => self.error = Some(format!("snapshot retention (round {round}): {e}")),
        }
    }

    /// Record a persistence failure from the owning service (e.g.
    /// snapshot serialization); persistence stops.
    pub(crate) fn record_error(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(msg);
        }
    }

    /// The durability tracer (counters: WAL appends/fsyncs, snapshot
    /// writes, recoveries; events if configured).
    pub fn tracer(&self) -> Arc<Tracer> {
        self.tracer.clone()
    }

    /// First persistence failure, if any (persistence has stopped).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }
}
