//! Crash recovery: newest valid snapshot + WAL suffix replay.
//!
//! The invariant the chaos tests pin: a service killed at an
//! arbitrary point and recovered from disk produces **bit-identical**
//! scheduling decisions to the uninterrupted run, for every submission
//! the recovered state still covers. Recovery proceeds in order:
//!
//! 1. Scan the WAL. A torn final record is truncated away (the crash
//!    interrupted that append, so the job was never acknowledged);
//!    damage before the final record is a hard
//!    [`DurabilityError::CorruptLog`].
//! 2. Walk snapshots newest → oldest. A candidate is accepted only if
//!    its header validates (magic/length/CRC), its body parses, and
//!    the scheduler accepts its exported state. Anything else falls
//!    back to the next older file, down to an empty service.
//! 3. Replay the WAL suffix (`seq > snapshot.accepted`, which must be
//!    contiguous): tick the engine to each record's round, then
//!    re-inject the job *bypassing admission* — it was already
//!    admitted pre-crash, and re-running admission against recovered
//!    state could double-shed.
//! 4. Reattach the WAL writer at the truncated end so new accepts
//!    continue the sequence.

use super::snapshot::{list_snapshots, load_snapshot};
use super::wal::{read_wal, truncate_to, WalRecord};
use super::{Durability, DurabilityConfig, DurabilityError};
use crate::admission::AdmissionPolicy;
use crate::core::{Service, ServiceSnapshot};
use mlfs::Scheduler;
use mlfs_sim::engine::{SimConfig, StepOutcome};
use obs::{Counter, TraceEvent};

/// What recovery found and did — returned alongside the service so
/// callers (and the chaos bench) can assert on the recovery path
/// taken.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Round of the snapshot restored from; `None` = started empty.
    pub snapshot_round: Option<u64>,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: usize,
    /// WAL records re-injected on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes of torn WAL tail truncated, if any.
    pub wal_truncated_bytes: Option<u64>,
    /// Engine round the recovered service resumed at.
    pub resumed_round: u64,
    /// Accepted-submission count after replay — the driver's cursor
    /// for re-submitting anything the durable state did not cover.
    pub resumed_accepted: u64,
}

/// Rebuild a [`Service`] from the durable state in `dcfg.dir`.
pub fn recover(
    cfg: SimConfig,
    dcfg: DurabilityConfig,
    scheduler: Box<dyn Scheduler>,
    admission: Option<AdmissionPolicy>,
) -> Result<(Service, RecoveryReport), DurabilityError> {
    let mut report = RecoveryReport::default();
    let wal_path = Durability::wal_path(&dcfg.dir);

    // 1. Scan the WAL; repair a torn tail on disk before anything
    // else so the append handle can be reattached at the end.
    let scan = read_wal(&wal_path)?;
    if let Some((_, dropped)) = scan.torn {
        if wal_path.exists() {
            truncate_to(&wal_path, scan.valid_len)?;
        }
        report.wal_truncated_bytes = Some(dropped);
    }

    // 2. Newest → oldest snapshot that validates end-to-end.
    let mut scheduler = scheduler;
    let mut chosen: Option<ServiceSnapshot> = None;
    for (_, path) in list_snapshots(&dcfg.dir)? {
        let Some(file) = load_snapshot(&path) else {
            report.snapshots_rejected += 1;
            continue;
        };
        let Ok(snap) = serde_json::from_str::<ServiceSnapshot>(&file.body) else {
            report.snapshots_rejected += 1;
            continue;
        };
        // Scheduler state must import cleanly; `import_state`
        // contracts to not mutate on failure, so falling back to an
        // older snapshot (or empty) stays sound.
        if let Some(state) = &snap.scheduler_state {
            if !scheduler.import_state(state) {
                report.snapshots_rejected += 1;
                continue;
            }
        }
        report.snapshot_round = Some(file.round);
        chosen = Some(snap);
        break;
    }

    let mut svc = match chosen {
        Some(snap) => Service::restore(cfg, snap, scheduler, admission),
        None => Service::new(cfg, scheduler, admission),
    };

    // 3. Replay the contiguous WAL suffix past the snapshot.
    let base = svc.stats().accepted;
    for (i, rec) in scan.records.iter().filter(|r| r.seq > base).enumerate() {
        let expected = base + 1 + i as u64;
        if rec.seq != expected {
            return Err(DurabilityError::WalGap {
                expected,
                found: rec.seq,
            });
        }
        replay_one(&mut svc, rec)?;
        report.wal_records_replayed += 1;
    }

    report.resumed_round = svc.rounds();
    report.resumed_accepted = svc.stats().accepted;

    // 4. Reattach the durable store and stamp the recovery.
    let durability = Durability::reopen(dcfg, scan.valid_len)?;
    durability.tracer.add(Counter::Recoveries, 1);
    if let Some((at, dropped)) = scan.torn {
        durability
            .tracer
            .emit(|| TraceEvent::WalTruncated { at, dropped });
    }
    {
        let r = &report;
        durability.tracer.emit(|| TraceEvent::Recovery {
            snap_round: r.snapshot_round.unwrap_or(0),
            replayed: u32::try_from(r.wal_records_replayed).unwrap_or(u32::MAX),
            resumed_round: r.resumed_round,
        });
    }
    svc.attach_durability(durability);
    Ok((svc, report))
}

/// Tick the engine forward to the record's round, then re-inject.
fn replay_one(svc: &mut Service, rec: &WalRecord) -> Result<(), DurabilityError> {
    while svc.rounds() < rec.round {
        match svc.tick() {
            StepOutcome::Continue => {}
            // The live run ticked past this point, so replaying the
            // same prefix cannot drain earlier — hitting this means
            // the log does not match the engine config.
            StepOutcome::Drained | StepOutcome::Horizon => {
                return Err(DurabilityError::WalGap {
                    expected: rec.seq,
                    found: rec.seq,
                });
            }
        }
    }
    if svc.replay_inject(rec.spec.clone()) {
        Ok(())
    } else {
        // Duplicate id: the snapshot already contains this job, so
        // the seq bookkeeping is inconsistent with the snapshot.
        Err(DurabilityError::WalGap {
            expected: rec.seq,
            found: rec.seq,
        })
    }
}
