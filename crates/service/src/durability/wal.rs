//! Write-ahead submission log.
//!
//! Every accepted submission is appended as one length-prefixed,
//! checksummed record *before* the service acknowledges it, so a crash
//! never loses an acknowledged job. On-disk layout:
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────┬───┐
//! │ magic (8 B)  │ record 0                                 │ … │
//! │ "MLFSWAL1"   │ ┌─────────┬─────────┬──────────────────┐ │   │
//! │              │ │ len u32 │ crc u32 │ payload (len B)  │ │   │
//! │              │ │ LE      │ LE      │ JSON `WalRecord` │ │   │
//! │              │ └─────────┴─────────┴──────────────────┘ │   │
//! └──────────────┴──────────────────────────────────────────┴───┘
//! ```
//!
//! The CRC-32 (IEEE polynomial, table built in a `const fn` — no
//! external crate) covers the payload bytes only. A record that fails
//! validation is classified by position: the *final* record is a torn
//! tail (the crash interrupted the append) and is truncated away; any
//! earlier record is real corruption and surfaces as
//! [`WalError::Corrupt`] — silently dropping acknowledged history
//! would be worse than refusing to start.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use workload::JobSpec;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"MLFSWAL1";

/// Per-record fixed header: `len` + `crc`, both little-endian u32.
const REC_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // lint:allow(panic-slice-index) reason="const-fn table build; i ranges over 0..256 by the loop bound"
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        // lint:allow(panic-slice-index) reason="index is masked to 0xFF over a 256-entry table"
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

/// Little-endian u32 at `at`, if the slice is long enough.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    let mut a = [0u8; 4];
    for (d, b) in a.iter_mut().zip(s) {
        *d = *b;
    }
    Some(u32::from_le_bytes(a))
}

/// One logged submission: the accepted sequence number (1-based,
/// equals the service's `accepted` counter after this submit), the
/// engine round at submission time, and the full job spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// 1-based acceptance sequence number.
    pub seq: u64,
    /// `Service::rounds()` at submission time — replay ticks the
    /// engine back to this round before re-injecting.
    pub round: u64,
    /// The accepted job.
    pub spec: JobSpec,
}

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append. Durable through power loss, but
    /// each submit pays a device flush.
    Always,
    /// `fsync` every `n` appends (and on snapshot). Bounds loss to at
    /// most `n − 1` acknowledged submissions on power loss; an
    /// OS-level process crash alone loses nothing (the page cache
    /// survives).
    EveryN(u32),
    /// Never `fsync` explicitly; rely on the OS writeback. Fastest,
    /// weakest.
    Never,
}

/// Why a WAL could not be read.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists but does not start with [`WAL_MAGIC`].
    BadMagic,
    /// A record *before* the final one failed its checksum or did not
    /// parse: acknowledged history is damaged and replay cannot be
    /// trusted. `offset` is the byte position of the bad record.
    Corrupt { offset: u64 },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadMagic => write!(f, "wal file has wrong magic"),
            WalError::Corrupt { offset } => {
                write!(f, "wal corrupt mid-log at byte {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where appends must resume).
    pub valid_len: u64,
    /// `Some((at, dropped))` if a torn tail was detected: `dropped`
    /// trailing bytes starting at offset `at` are not a valid record.
    pub torn: Option<(u64, u64)>,
}

/// Scan `path`, validating every record. A missing file yields an
/// empty scan. A torn tail (short or checksum-failing *final* record)
/// is reported in [`WalScan::torn`], not an error — the caller
/// truncates and continues.
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan::default());
        }
        Err(e) => return Err(WalError::Io(e)),
    };
    if bytes.len() < WAL_MAGIC.len() {
        // File created but the magic itself was torn: everything goes.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn: Some((0, bytes.len() as u64)),
        });
    }
    if bytes.get(..WAL_MAGIC.len()) != Some(WAL_MAGIC.as_slice()) {
        return Err(WalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let total = bytes.len();
    while pos < total {
        let torn = |at: usize| WalScan {
            records: Vec::new(),
            valid_len: at as u64,
            torn: Some((at as u64, (total - at) as u64)),
        };
        let (len, crc) = match (le_u32(&bytes, pos), le_u32(&bytes, pos + 4)) {
            (Some(len), Some(crc)) => (len as usize, crc),
            // Header itself runs past EOF: the append was interrupted.
            _ => {
                let mut scan = torn(pos);
                scan.records = records;
                return Ok(scan);
            }
        };
        let start = pos + REC_HEADER;
        let end = start.saturating_add(len);
        let Some(payload) = bytes.get(start..end) else {
            // Payload runs past EOF: the append was interrupted.
            let mut scan = torn(pos);
            scan.records = records;
            return Ok(scan);
        };
        let last = end == total;
        if crc32(payload) != crc {
            if last {
                let mut scan = torn(pos);
                scan.records = records;
                return Ok(scan);
            }
            return Err(WalError::Corrupt { offset: pos as u64 });
        }
        let parsed: Option<WalRecord> = std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str(s).ok());
        match parsed {
            Some(rec) => records.push(rec),
            // Checksum valid but unparseable: a writer bug or schema
            // break, not a crash artifact — never silently truncate.
            None => return Err(WalError::Corrupt { offset: pos as u64 }),
        }
        pos = end;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        torn: None,
    })
}

/// Truncate `path` to `valid_len` bytes (drop a torn tail) and sync.
pub fn truncate_to(path: &Path, valid_len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_len)?;
    f.sync_data()?;
    Ok(())
}

/// Append handle over a WAL file. Writes go straight to the `File`
/// (no userspace buffering) so a crash can tear at most the final
/// record — exactly the case the reader repairs.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    unsynced: u32,
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file),
    /// write the magic, and sync it.
    pub fn create(path: &Path) -> std::io::Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            unsynced: 0,
        })
    }

    /// Open an existing WAL for appending at `valid_len` (from a
    /// prior [`read_wal`] scan; any torn tail must already be
    /// truncated away by [`truncate_to`]).
    pub fn open_at(path: &Path, valid_len: u64) -> std::io::Result<WalWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            unsynced: 0,
        })
    }

    /// Append one record; returns `(bytes_written, fsynced)`.
    pub fn append(&mut self, rec: &WalRecord, fsync: FsyncPolicy) -> std::io::Result<(u32, bool)> {
        let payload =
            serde_json::to_string(rec).map_err(|e| std::io::Error::other(e.to_string()))?;
        let payload = payload.as_bytes();
        let len = payload.len() as u32;
        let crc = crc32(payload);
        let mut buf = Vec::with_capacity(REC_HEADER + payload.len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.unsynced += 1;
        let do_sync = match fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if do_sync {
            self.sync()?;
        }
        Ok((buf.len() as u32, do_sync))
    }

    /// Flush OS buffers to the device and reset the unsynced counter.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record with `seq <= floor` by rewriting the log
    /// through a temp file and renaming over it (atomic on POSIX).
    /// Called after snapshot retention: records already covered by the
    /// *oldest retained* snapshot can never be replayed again.
    /// Returns the number of records dropped.
    pub fn compact(&mut self, floor: u64) -> std::io::Result<u64> {
        if floor == 0 {
            return Ok(0);
        }
        self.sync()?;
        let scan = read_wal(&self.path).map_err(|e| match e {
            WalError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })?;
        let keep: Vec<&WalRecord> = scan.records.iter().filter(|r| r.seq > floor).collect();
        let dropped = (scan.records.len() - keep.len()) as u64;
        if dropped == 0 {
            return Ok(0);
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut w = WalWriter::create(&tmp)?;
            for rec in keep {
                w.append(rec, FsyncPolicy::Never)?;
            }
            w.sync()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old handle still points at the unlinked inode; reopen.
        let end = std::fs::metadata(&self.path)?.len();
        *self = WalWriter::open_at(&self.path, end)?;
        Ok(dropped)
    }
}
