//! Durable snapshot store: atomically written, checksummed,
//! retention-pruned `snap-<round>.json` files.
//!
//! Each file is two parts separated by the first newline:
//!
//! ```text
//! {"ev":"snap_header","magic":"MLFSSNAP1","round":R,"accepted":A,"len":L,"crc32":C}
//! <serde_json of ServiceSnapshot, L bytes, CRC-32 C>
//! ```
//!
//! The header reuses the observability layer's flat-JSON schema so
//! `obs::parse_flat_json` can validate a snapshot without parsing the
//! (much larger) body. Writes go through `snap-<round>.json.tmp` +
//! `rename`, so a crash mid-write leaves at worst a garbage `.tmp`
//! file that recovery ignores; a complete `snap-*.json` is always
//! internally consistent or provably damaged (checksum mismatch).

use super::wal::crc32;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic string in every snapshot header.
pub const SNAP_MAGIC: &str = "MLFSSNAP1";

/// A parsed, checksum-validated snapshot file.
#[derive(Debug)]
pub struct SnapshotFile {
    /// Engine round the snapshot was taken at.
    pub round: u64,
    /// Accepted-submission count at the snapshot — the WAL replay
    /// floor (replay records with `seq > accepted`).
    pub accepted: u64,
    /// The `ServiceSnapshot` JSON body.
    pub body: String,
}

/// File name for a snapshot at `round`.
pub fn snap_name(round: u64) -> String {
    format!("snap-{round}.json")
}

/// Write a snapshot atomically; returns total bytes written.
pub fn write_snapshot(dir: &Path, round: u64, accepted: u64, body: &str) -> std::io::Result<u64> {
    let header = format!(
        "{{\"ev\":\"snap_header\",\"magic\":\"{SNAP_MAGIC}\",\"round\":{round},\
         \"accepted\":{accepted},\"len\":{},\"crc32\":{}}}\n",
        body.len(),
        crc32(body.as_bytes()),
    );
    let final_path = dir.join(snap_name(round));
    let tmp_path = dir.join(format!("snap-{round}.json.tmp"));
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(header.as_bytes())?;
        f.write_all(body.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok((header.len() + body.len()) as u64)
}

/// Parse and fully validate the snapshot at `path`: magic, body
/// length, and checksum must all agree with the header. Any failure
/// returns `None` — the caller falls back to an older snapshot.
pub fn load_snapshot(path: &Path) -> Option<SnapshotFile> {
    let content = fs::read_to_string(path).ok()?;
    let (header, body) = content.split_once('\n')?;
    let (round, accepted) = parse_header(header, body)?;
    Some(SnapshotFile {
        round,
        accepted,
        body: body.to_string(),
    })
}

/// Read only the validated header of the snapshot at `path`:
/// `(round, accepted)`. Used to pick the WAL compaction floor without
/// loading snapshot bodies.
pub fn read_header(path: &Path) -> Option<(u64, u64)> {
    let content = fs::read_to_string(path).ok()?;
    let (header, body) = content.split_once('\n')?;
    parse_header(header, body)
}

fn parse_header(header: &str, body: &str) -> Option<(u64, u64)> {
    let fields = obs::event::parse_flat_json(header)?;
    let get = |k: &str| {
        fields.iter().find_map(|(key, v)| match v {
            obs::event::JsonVal::Num(n) if key == k => Some(*n),
            _ => None,
        })
    };
    let magic = fields.iter().find_map(|(key, v)| match v {
        obs::event::JsonVal::Str(s) if key == "magic" => Some(s.as_str()),
        _ => None,
    })?;
    if magic != SNAP_MAGIC {
        return None;
    }
    let round = get("round")? as u64;
    let accepted = get("accepted")? as u64;
    let len = get("len")? as u64;
    let crc = get("crc32")? as u32;
    if body.len() as u64 != len || crc32(body.as_bytes()) != crc {
        return None;
    }
    Some((round, accepted))
}

/// All complete snapshots in `dir`, newest round first. `.tmp`
/// leftovers and unrelated files are skipped; validation happens at
/// load time, not here.
///
/// This is a sanctioned determinism seam: `read_dir` yields entries in
/// OS-dependent order, but the result is sorted by round (descending,
/// rounds unique per file name) before returning, so every caller —
/// recovery's newest-first fallback walk, retention — observes a
/// fully deterministic sequence. Pinned by
/// `list_snapshots_order_is_deterministic` in the recovery tests.
// lint:seam(deep-det-taint) reason="read_dir order is discarded: results are sorted by unique round key before return"
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        if let Ok(round) = stem.parse::<u64>() {
            out.push((round, entry.path()));
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(out)
}

/// Delete all but the newest `keep` snapshots. Returns the WAL
/// compaction floor: the `accepted` count of the **oldest retained**
/// snapshot (not the newest — if the newest file is later found
/// damaged, recovery falls back to an older one and still needs the
/// WAL suffix past *that* snapshot's acceptance point).
pub fn apply_retention(dir: &Path, keep: usize) -> std::io::Result<u64> {
    let snaps = list_snapshots(dir)?;
    for (_, path) in snaps.iter().skip(keep.max(1)) {
        fs::remove_file(path)?;
    }
    let oldest_kept = snaps.iter().take(keep.max(1)).next_back();
    Ok(oldest_kept
        .and_then(|(_, p)| read_header(p))
        .map(|(_, accepted)| accepted)
        .unwrap_or(0))
}
