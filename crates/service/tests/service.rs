//! Service-level integration tests: deterministic shedding under
//! overload, crash-safe snapshot/restore, and the threaded front-end.

use mlfs_service::{AdmissionPolicy, Service, ShedReason, SubmitOutcome};
use mlfs_sim::engine::StepOutcome;
use mlfs_sim::experiments::{fig4, Experiment};

fn small_fig4(jobs: usize) -> Experiment {
    let mut e = fig4(0.25, 64.0, 7);
    e.trace.jobs = jobs;
    e
}

fn mlfh(e: &Experiment) -> Box<dyn mlfs::Scheduler> {
    e.scheduler("MLF-H", 7)
}

/// Run a full submit-everything-then-drain cycle and return the
/// wall-clock-stripped metrics JSON.
fn drain_all(e: &Experiment, svc: &mut Option<Service>) -> String {
    let mut s = svc.take().expect("service");
    for spec in e.jobs() {
        assert!(s.submit(spec).accepted());
    }
    assert_eq!(s.run_until_drained(), StepOutcome::Drained);
    let mut m = s.finish();
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

#[test]
fn submit_everything_up_front_matches_batch() {
    // With every spec submitted before the first tick the service is
    // the batch run with extra plumbing — results must be identical.
    let e = small_fig4(8);
    let mut scheduler = mlfh(&e);
    let mut batch = e.run(scheduler.as_mut());
    batch.clear_wall_clock();
    let batch = serde_json::to_string(&batch).expect("serializable metrics");

    let mut svc = Some(Service::new(e.sim.clone(), mlfh(&e), None));
    assert_eq!(drain_all(&e, &mut svc), batch);
}

#[test]
fn overload_sheds_deterministically() {
    let e = small_fig4(30);
    let policy = AdmissionPolicy {
        max_backlog: 5,
        ..AdmissionPolicy::default()
    };
    let offered = e.jobs();

    // Submit the whole trace as one burst, twice, without ever
    // ticking: admission decisions depend only on engine state, so
    // the shed pattern must repeat exactly.
    let run = || {
        let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(policy));
        let outcomes: Vec<SubmitOutcome> = offered.iter().cloned().map(|s| svc.submit(s)).collect();
        let stats = svc.stats();
        (outcomes, stats)
    };
    let (out1, stats1) = run();
    let (out2, stats2) = run();
    assert_eq!(out1, out2, "shedding must be deterministic");
    assert_eq!(stats1, stats2);

    // The burst overflows the backlog: some accepted, some shed, and
    // every shed is a Backlog shed carrying its spec back.
    assert_eq!(stats1.accepted, 6, "backlog 5 admits 6 before tripping");
    assert_eq!(stats1.accepted + stats1.shed, offered.len() as u64);
    for o in &out1 {
        if let SubmitOutcome::Shed(reason, spec) = o {
            assert!(matches!(reason, ShedReason::Backlog { backlog } if *backlog > 5));
            assert!(offered.iter().any(|s| s.id == spec.id));
        }
    }

    // Once the backlog drains, the door reopens.
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(policy));
    let mut it = offered.iter().cloned();
    for spec in it.by_ref().take(7) {
        svc.submit(spec);
    }
    svc.run_until_drained();
    let late = it.next().expect("spec 8 exists");
    assert!(svc.submit(late).accepted(), "drained service accepts again");
}

#[test]
fn overload_threshold_is_strict_at_the_boundary() {
    // An empty cluster has overload degree exactly 0.0. The paper's
    // shed rule is strict (`O_c^t > h_s`), so `h_s = 0.0` sits right
    // on the boundary and must still admit...
    let e = small_fig4(2);
    let at_boundary = AdmissionPolicy {
        h_s: 0.0,
        ..AdmissionPolicy::default()
    };
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(at_boundary));
    assert_eq!(svc.overload_degree(), 0.0);
    assert!(svc.submit(e.jobs().remove(0)).accepted());

    // ...while any threshold *below* the current degree sheds.
    let below = AdmissionPolicy {
        h_s: -1.0,
        ..AdmissionPolicy::default()
    };
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(below));
    match svc.submit(e.jobs().remove(0)) {
        SubmitOutcome::Shed(ShedReason::Overload { degree }, _) => assert_eq!(degree, 0.0),
        other => panic!("expected overload shed, got {other:?}"),
    }
}

#[test]
fn zero_backlog_policy_admits_one_then_sheds() {
    // `max_backlog = 0` is the degenerate-but-legal config: a job is
    // admitted only when the service is completely empty (the check
    // is strict, and the backlog is sampled *before* the submit).
    let e = small_fig4(4);
    let policy = AdmissionPolicy {
        max_backlog: 0,
        ..AdmissionPolicy::default()
    };
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(policy));
    let mut jobs = e.jobs().into_iter();
    assert!(svc.submit(jobs.next().expect("job 0")).accepted());
    match svc.submit(jobs.next().expect("job 1")) {
        SubmitOutcome::Shed(ShedReason::Backlog { backlog: 1 }, _) => {}
        other => panic!("expected backlog shed at depth 1, got {other:?}"),
    }
    // Draining empties the backlog and reopens the door.
    svc.run_until_drained();
    assert!(svc.submit(jobs.next().expect("job 2")).accepted());
}

#[test]
fn snapshot_mid_burst_preserves_shed_and_accept_decisions() {
    // Crash in the middle of an overload burst: the restored service
    // must shed/accept the rest of the burst exactly as the
    // uninterrupted service would — admission reads backlog and
    // overload degree, both of which the snapshot carries.
    let e = small_fig4(30);
    let policy = AdmissionPolicy {
        max_backlog: 5,
        ..AdmissionPolicy::default()
    };
    let offered = e.jobs();
    let split = 10;

    let mut reference = Service::new(e.sim.clone(), mlfh(&e), Some(policy));
    let want: Vec<SubmitOutcome> = offered
        .iter()
        .cloned()
        .map(|s| reference.submit(s))
        .collect();

    let mut svc = Service::new(e.sim.clone(), mlfh(&e), Some(policy));
    let head: Vec<SubmitOutcome> = offered
        .iter()
        .take(split)
        .cloned()
        .map(|s| svc.submit(s))
        .collect();
    assert_eq!(head, want[..split], "pre-crash burst must match");
    let snap = svc.snapshot();
    drop(svc); // the crash, mid-burst, with arrivals still pending
    let restored_snap =
        serde_json::from_str(&serde_json::to_string(&snap).expect("snapshot serializes"))
            .expect("snapshot deserializes");
    let mut svc = Service::restore(e.sim.clone(), restored_snap, mlfh(&e), Some(policy));
    assert!(svc.pending_arrivals() > 0, "burst snapshot holds arrivals");
    let tail: Vec<SubmitOutcome> = offered
        .iter()
        .skip(split)
        .cloned()
        .map(|s| svc.submit(s))
        .collect();
    assert_eq!(tail, want[split..], "post-restore burst must match");
    assert_eq!(svc.stats().accepted, 6, "same accepts as the one-shot run");
}

#[test]
fn duplicate_ids_are_shed() {
    let e = small_fig4(4);
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), None);
    let spec = e.jobs().remove(0);
    assert!(svc.submit(spec.clone()).accepted());
    match svc.submit(spec) {
        SubmitOutcome::Shed(ShedReason::Duplicate, _) => {}
        other => panic!("expected duplicate shed, got {other:?}"),
    }
}

#[test]
fn snapshot_restore_is_bit_identical_mid_run() {
    let e = small_fig4(8);

    // Reference: uninterrupted service run.
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), None);
    for spec in e.jobs() {
        assert!(svc.submit(spec).accepted());
    }
    assert_eq!(svc.run_until_drained(), StepOutcome::Drained);
    let half = svc.rounds() / 2;
    assert!(half > 0, "reference run must span multiple rounds");
    let mut m = svc.finish();
    m.clear_wall_clock();
    let reference = serde_json::to_string(&m).expect("serializable metrics");

    // Interrupted run: snapshot at a round boundary mid-flight,
    // serialize the snapshot (a restart must survive a process
    // boundary), restore into a *fresh* service + scheduler, finish.
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), None);
    for spec in e.jobs() {
        assert!(svc.submit(spec).accepted());
    }
    for _ in 0..half {
        assert_eq!(svc.tick(), StepOutcome::Continue, "mid-run rounds continue");
    }
    let snap = svc.snapshot();
    drop(svc); // the "crash"
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let snap = serde_json::from_str(&json).expect("snapshot deserializes");

    let mut restored = Service::restore(e.sim.clone(), snap, mlfh(&e), None);
    assert_eq!(restored.rounds(), half, "metrics survive the restart");
    assert_eq!(restored.run_until_drained(), StepOutcome::Drained);
    let mut m = restored.finish();
    m.clear_wall_clock();
    let resumed = serde_json::to_string(&m).expect("serializable metrics");

    assert_eq!(
        reference, resumed,
        "restored service diverged from the uninterrupted run"
    );
}

#[test]
fn snapshot_restore_roundtrips_counters_and_backlog() {
    let e = small_fig4(6);
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), None);
    for spec in e.jobs() {
        svc.submit(spec);
    }
    for _ in 0..10 {
        svc.tick();
    }
    let snap = svc.snapshot();
    assert_eq!(snap.stats.accepted, 6);
    let restored = Service::restore(e.sim.clone(), snap, mlfh(&e), None);
    assert_eq!(restored.stats(), svc.stats());
    assert_eq!(restored.backlog(), svc.backlog());
    assert_eq!(restored.now(), svc.now());
    assert_eq!(restored.active_jobs(), svc.active_jobs());
}

#[test]
fn threaded_front_end_completes_all_accepted_jobs() {
    let e = small_fig4(8);
    let svc = Service::new(e.sim.clone(), mlfh(&e), None);
    let handle = svc.spawn(64);
    let mut sent = 0u64;
    for spec in e.jobs() {
        let mut spec = spec;
        loop {
            match handle.submit(spec) {
                Ok(()) => break,
                Err(mlfs_service::SubmitError::Backpressure(s)) => {
                    spec = s;
                    std::thread::yield_now();
                }
                Err(mlfs_service::SubmitError::Closed(_)) => panic!("worker closed early"),
            }
        }
        sent += 1;
    }
    let report = handle.finish();
    assert!(!report.worker_panicked);
    assert_eq!(report.stats.accepted, sent);
    assert_eq!(report.metrics.jobs.len() as u64, sent);
    assert_eq!(report.metrics.scheduler, "MLF-H");
    assert!(report.max_backlog > 0);
    let finished = report
        .metrics
        .jobs
        .iter()
        .filter(|j| j.finished.is_some())
        .count() as u64;
    assert_eq!(finished, sent, "every accepted job must finish");
}
