//! Durability-layer tests: WAL format and repair, snapshot store
//! validation and retention, and the pinned degraded-recovery paths
//! (torn tail → truncate; damaged snapshot → older snapshot;
//! mid-log damage → hard error).

use mlfs_service::durability::snapshot::{
    apply_retention, list_snapshots, load_snapshot, write_snapshot,
};
use mlfs_service::durability::wal::{
    crc32, read_wal, truncate_to, FsyncPolicy, WalError, WalRecord, WalWriter,
};
use mlfs_service::{DurabilityConfig, DurabilityError, Service};
use mlfs_sim::engine::StepOutcome;
use mlfs_sim::experiments::{fig4, Experiment};
use std::path::{Path, PathBuf};

fn small_fig4(jobs: usize) -> Experiment {
    let mut e = fig4(0.25, 64.0, 7);
    e.trace.jobs = jobs;
    e
}

fn mlfh(e: &Experiment) -> Box<dyn mlfs::Scheduler> {
    e.scheduler("MLF-H", 7)
}

/// Fresh scratch directory under the system temp dir.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlfs-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte extents `(start, end)` of every record in a WAL file,
/// header included — the chaos surgeon's scalpel.
fn record_extents(path: &Path) -> Vec<(usize, usize)> {
    let bytes = std::fs::read(path).expect("wal readable");
    let mut out = Vec::new();
    let mut pos = 8; // magic
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        out.push((pos, end));
        pos = end;
    }
    out
}

/// Flip one byte inside the payload of the record at `(start, end)`.
fn corrupt_payload(path: &Path, extent: (usize, usize)) {
    let mut bytes = std::fs::read(path).expect("wal readable");
    let target = extent.0 + 8 + (extent.1 - extent.0 - 8) / 2;
    bytes[target] ^= 0xFF;
    std::fs::write(path, bytes).expect("wal writable");
}

fn spec(id: u32) -> workload::JobSpec {
    let e = small_fig4(8);
    let mut s = e.jobs().remove(0);
    s.id = cluster::JobId(id);
    s
}

// ---------------------------------------------------------------
// WAL unit tests
// ---------------------------------------------------------------

#[test]
fn crc32_matches_the_ieee_check_value() {
    // The canonical CRC-32/IEEE test vector.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn wal_append_read_roundtrip() {
    let dir = tmpdir("roundtrip");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("wal.log");
    let mut w = WalWriter::create(&path).expect("create");
    for seq in 1..=5u64 {
        let rec = WalRecord {
            seq,
            round: seq * 2,
            spec: spec(seq as u32),
        };
        w.append(&rec, FsyncPolicy::Never).expect("append");
    }
    w.sync().expect("sync");
    let scan = read_wal(&path).expect("valid wal");
    assert_eq!(scan.records.len(), 5);
    assert!(scan.torn.is_none());
    for (i, rec) in scan.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
        assert_eq!(rec.round, rec.seq * 2);
        assert_eq!(rec.spec.id, cluster::JobId(rec.seq as u32));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_missing_file_reads_as_empty() {
    let scan = read_wal(Path::new("/nonexistent/never/wal.log")).expect("empty scan");
    assert!(scan.records.is_empty());
    assert_eq!(scan.valid_len, 0);
}

#[test]
fn torn_final_record_is_detected_and_truncated() {
    let dir = tmpdir("torn");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("wal.log");
    let mut w = WalWriter::create(&path).expect("create");
    for seq in 1..=3u64 {
        let rec = WalRecord {
            seq,
            round: 0,
            spec: spec(seq as u32),
        };
        w.append(&rec, FsyncPolicy::Always).expect("append");
    }
    drop(w);
    // Chop mid-way through the final record: a crashed append.
    let full = std::fs::metadata(&path).expect("meta").len();
    let extents = record_extents(&path);
    let last_start = extents[2].0 as u64;
    truncate_to(&path, full - 7).expect("simulated tear");

    let scan = read_wal(&path).expect("torn is not an error");
    assert_eq!(scan.records.len(), 2, "intact prefix survives");
    assert_eq!(scan.valid_len, last_start, "valid length excludes the tear");
    let (at, dropped) = scan.torn.expect("tear detected");
    assert_eq!(at, last_start);
    assert_eq!(dropped, full - 7 - last_start);

    // Repair and confirm the log is clean again.
    truncate_to(&path, scan.valid_len).expect("repair");
    let scan = read_wal(&path).expect("repaired wal");
    assert_eq!(scan.records.len(), 2);
    assert!(scan.torn.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checksum_failure_on_final_record_is_a_torn_tail() {
    let dir = tmpdir("tailcrc");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("wal.log");
    let mut w = WalWriter::create(&path).expect("create");
    for seq in 1..=3u64 {
        let rec = WalRecord {
            seq,
            round: 0,
            spec: spec(seq as u32),
        };
        w.append(&rec, FsyncPolicy::Always).expect("append");
    }
    drop(w);
    let extents = record_extents(&path);
    corrupt_payload(&path, extents[2]);
    let scan = read_wal(&path).expect("tail damage is repairable");
    assert_eq!(scan.records.len(), 2);
    assert!(scan.torn.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checksum_failure_mid_log_is_a_hard_error() {
    let dir = tmpdir("midlog");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("wal.log");
    let mut w = WalWriter::create(&path).expect("create");
    for seq in 1..=3u64 {
        let rec = WalRecord {
            seq,
            round: 0,
            spec: spec(seq as u32),
        };
        w.append(&rec, FsyncPolicy::Always).expect("append");
    }
    drop(w);
    let extents = record_extents(&path);
    corrupt_payload(&path, extents[1]); // NOT the final record
    match read_wal(&path) {
        Err(WalError::Corrupt { offset }) => assert_eq!(offset, extents[1].0 as u64),
        other => panic!("mid-log damage must be a hard error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_drops_covered_records_and_keeps_the_suffix() {
    let dir = tmpdir("compact");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("wal.log");
    let mut w = WalWriter::create(&path).expect("create");
    for seq in 1..=6u64 {
        let rec = WalRecord {
            seq,
            round: 0,
            spec: spec(seq as u32),
        };
        w.append(&rec, FsyncPolicy::Never).expect("append");
    }
    let dropped = w.compact(4).expect("compact");
    assert_eq!(dropped, 4);
    // The handle stays appendable after the rename swap.
    w.append(
        &WalRecord {
            seq: 7,
            round: 0,
            spec: spec(7),
        },
        FsyncPolicy::Always,
    )
    .expect("append after compact");
    drop(w);
    let scan = read_wal(&path).expect("valid wal");
    let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, vec![5, 6, 7]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------
// Snapshot store unit tests
// ---------------------------------------------------------------

#[test]
fn snapshot_write_load_roundtrip_and_tmp_files_are_ignored() {
    let dir = tmpdir("snap");
    std::fs::create_dir_all(&dir).expect("mkdir");
    write_snapshot(&dir, 10, 3, "{\"hello\":1}").expect("write");
    write_snapshot(&dir, 20, 5, "{\"hello\":2}").expect("write");
    std::fs::write(dir.join("snap-99.json.tmp"), b"garbage mid-write").expect("tmp");
    let snaps = list_snapshots(&dir).expect("list");
    let rounds: Vec<u64> = snaps.iter().map(|(r, _)| *r).collect();
    assert_eq!(rounds, vec![20, 10], "newest first, .tmp ignored");
    let file = load_snapshot(&snaps[0].1).expect("valid snapshot");
    assert_eq!(file.round, 20);
    assert_eq!(file.accepted, 5);
    assert_eq!(file.body, "{\"hello\":2}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pins the `lint:seam(deep-det-taint)` on `list_snapshots`: the fn
/// reads `fs::read_dir` (OS-dependent iteration order), which the
/// deep determinism-taint pass would flag on the recovery path — the
/// seam is sound only because the result is sorted by a unique key
/// before returning. Create files in several scrambled orders (so the
/// directory's physical order varies) and assert the listing is
/// always the same strictly-descending round sequence.
#[test]
fn list_snapshots_order_is_deterministic() {
    let rounds: &[u64] = &[7, 400, 31, 1, 250, 99];
    let mut expected: Vec<u64> = rounds.to_vec();
    expected.sort_by_key(|&r| std::cmp::Reverse(r));
    for (i, perm) in [
        vec![7u64, 400, 31, 1, 250, 99],
        vec![99, 250, 1, 31, 400, 7],
        vec![250, 7, 99, 400, 1, 31],
    ]
    .iter()
    .enumerate()
    {
        let dir = tmpdir(&format!("snaporder{i}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for &round in perm {
            write_snapshot(&dir, round, round, "{}").expect("write");
        }
        for _ in 0..3 {
            let got: Vec<u64> = list_snapshots(&dir)
                .expect("list")
                .iter()
                .map(|(r, _)| *r)
                .collect();
            assert_eq!(got, expected, "creation order {perm:?} must not leak");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_with_flipped_body_byte_fails_validation() {
    let dir = tmpdir("snapcrc");
    std::fs::create_dir_all(&dir).expect("mkdir");
    write_snapshot(&dir, 10, 3, "{\"hello\":1}").expect("write");
    let path = dir.join("snap-10.json");
    let mut bytes = std::fs::read(&path).expect("read");
    let n = bytes.len();
    bytes[n - 2] ^= 0xFF;
    std::fs::write(&path, bytes).expect("rewrite");
    assert!(
        load_snapshot(&path).is_none(),
        "checksum must catch the flip"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_keeps_newest_and_returns_oldest_survivors_floor() {
    let dir = tmpdir("retention");
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (round, accepted) in [(10u64, 2u64), (20, 5), (30, 9), (40, 12)] {
        write_snapshot(&dir, round, accepted, "{}").expect("write");
    }
    let floor = apply_retention(&dir, 2).expect("retention");
    // Keep 30 and 40; the floor is the *oldest retained* (30 →
    // accepted 9), so a fallback to snap-30 still has its suffix.
    assert_eq!(floor, 9);
    let rounds: Vec<u64> = list_snapshots(&dir)
        .expect("list")
        .iter()
        .map(|(r, _)| *r)
        .collect();
    assert_eq!(rounds, vec![40, 30]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------
// End-to-end recovery paths (pinned)
// ---------------------------------------------------------------

/// A durable service mid-run: submit everything, tick `rounds`
/// times, then "crash" (drop). Returns what was accepted.
fn run_and_crash(e: &Experiment, dcfg: &DurabilityConfig, rounds: u64) -> u64 {
    let mut svc = Service::builder(e.sim.clone())
        .durability(dcfg.clone())
        .build(mlfh(e))
        .expect("fresh durable service");
    for s in e.jobs() {
        assert!(svc.submit(s).accepted());
    }
    for _ in 0..rounds {
        assert_eq!(svc.tick(), StepOutcome::Continue);
    }
    assert_eq!(svc.durability_error(), None);
    svc.stats().accepted
}

#[test]
fn recovery_resumes_bit_identically_from_wal_only() {
    let e = small_fig4(6);
    let dir = tmpdir("recover-walonly");
    // Snapshots off: recovery must come purely from WAL replay.
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 0;
    dcfg.fsync = FsyncPolicy::Always;

    // Reference: uninterrupted, no durability.
    let mut svc = Service::new(e.sim.clone(), mlfh(&e), None);
    for s in e.jobs() {
        assert!(svc.submit(s).accepted());
    }
    assert_eq!(svc.run_until_drained(), StepOutcome::Drained);
    let mut m = svc.finish();
    m.clear_wall_clock();
    let reference = serde_json::to_string(&m).expect("metrics json");

    let accepted = run_and_crash(&e, &dcfg, 5);
    assert_eq!(accepted, 6);

    let (mut svc, report) = Service::builder(e.sim.clone())
        .durability(dcfg)
        .recover(mlfh(&e))
        .expect("recovery succeeds");
    assert_eq!(report.snapshot_round, None);
    assert_eq!(report.wal_records_replayed, 6);
    assert_eq!(report.resumed_accepted, 6);
    assert_eq!(svc.rounds(), report.resumed_round);
    assert_eq!(svc.run_until_drained(), StepOutcome::Drained);
    let mut m = svc.finish();
    m.clear_wall_clock();
    let recovered = serde_json::to_string(&m).expect("metrics json");
    assert_eq!(reference, recovered, "recovered run diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_wal_tail_recovers_by_truncation_and_resubmission() {
    let e = small_fig4(6);
    let dir = tmpdir("recover-tail");
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 0;
    dcfg.fsync = FsyncPolicy::Always;

    let accepted = run_and_crash(&e, &dcfg, 3);
    assert_eq!(accepted, 6);
    // Damage the tail: flip a payload byte of the final record.
    let wal = dir.join("wal.log");
    let extents = record_extents(&wal);
    assert_eq!(extents.len(), 6);
    corrupt_payload(&wal, extents[5]);

    let (mut svc, report) = Service::builder(e.sim.clone())
        .durability(dcfg)
        .recover(mlfh(&e))
        .expect("tail damage is repairable");
    assert!(report.wal_truncated_bytes.is_some(), "tail was truncated");
    assert_eq!(
        report.resumed_accepted, 5,
        "the damaged final record is not acknowledged-recoverable"
    );
    // The driver re-submits the lost job (its cursor is
    // `resumed_accepted`), and the run completes with all six.
    let lost = e.jobs().remove(5);
    assert!(svc.submit(lost).accepted());
    assert_eq!(svc.run_until_drained(), StepOutcome::Drained);
    assert_eq!(svc.stats().accepted, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_newest_snapshot_falls_back_to_previous() {
    let e = small_fig4(8);
    let dir = tmpdir("recover-fallback");
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 5;
    dcfg.keep_snapshots = 3;
    dcfg.fsync = FsyncPolicy::EveryN(2);

    run_and_crash(&e, &dcfg, 17);
    let snaps = list_snapshots(&dir).expect("list");
    assert!(
        snaps.len() >= 2,
        "need ≥2 snapshots to test fallback, got {}",
        snaps.len()
    );
    let newest = snaps[0].0;
    let second = snaps[1].0;
    // Flip a body byte of the newest snapshot.
    let path = dir.join(format!("snap-{newest}.json"));
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let n = bytes.len();
    bytes[n - 2] ^= 0xFF;
    std::fs::write(&path, bytes).expect("rewrite snapshot");

    let (mut svc, report) = Service::builder(e.sim.clone())
        .durability(dcfg)
        .recover(mlfh(&e))
        .expect("fallback recovery succeeds");
    assert_eq!(report.snapshots_rejected, 1, "newest was rejected");
    assert_eq!(
        report.snapshot_round,
        Some(second),
        "recovery fell back to the previous snapshot"
    );
    assert_eq!(report.resumed_accepted, 8, "WAL suffix filled the gap");
    assert_eq!(svc.run_until_drained(), StepOutcome::Drained);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_wal_damage_is_a_hard_recovery_error() {
    let e = small_fig4(6);
    let dir = tmpdir("recover-midlog");
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 0;
    dcfg.fsync = FsyncPolicy::Always;

    run_and_crash(&e, &dcfg, 3);
    let wal = dir.join("wal.log");
    let extents = record_extents(&wal);
    corrupt_payload(&wal, extents[2]); // mid-log, not the tail

    match Service::builder(e.sim.clone())
        .durability(dcfg)
        .recover(mlfh(&e))
    {
        Err(DurabilityError::CorruptLog { offset }) => {
            assert_eq!(offset, extents[2].0 as u64);
        }
        Err(other) => panic!("mid-log damage must refuse to start, got {other:?}"),
        Ok(_) => panic!("mid-log damage must refuse to start, got a service"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_without_config_is_an_explicit_error() {
    let e = small_fig4(2);
    match Service::builder(e.sim.clone()).recover(mlfh(&e)) {
        Err(DurabilityError::NotConfigured) => {}
        Err(other) => panic!("expected NotConfigured, got {other:?}"),
        Ok(_) => panic!("expected NotConfigured, got a service"),
    }
}

#[test]
fn build_on_an_existing_dir_starts_fresh() {
    let e = small_fig4(4);
    let dir = tmpdir("build-fresh");
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 2;
    dcfg.fsync = FsyncPolicy::Always;
    run_and_crash(&e, &dcfg, 6);
    assert!(!list_snapshots(&dir).expect("list").is_empty());

    // build() truncates: the old WAL and snapshots are gone.
    let svc = Service::builder(e.sim.clone())
        .durability(dcfg)
        .build(mlfh(&e))
        .expect("fresh build");
    drop(svc);
    assert!(list_snapshots(&dir).expect("list").is_empty());
    let scan = read_wal(&dir.join("wal.log")).expect("fresh wal");
    assert!(scan.records.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
