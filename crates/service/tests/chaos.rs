//! Chaos-tested crash recovery: kill a durable service at seeded
//! points, damage its files the way real crashes do, recover from
//! disk, and demand **bit-identical** final metrics versus the
//! uninterrupted run.
//!
//! The driver is the `service_determinism` just-in-time streamer: it
//! submits each spec no earlier than the decision loop needs it, so
//! crashes land between real submissions and real rounds. Every
//! (submit | tick) is one *op*; a kill point drops the service
//! before op `k`. Surgery flavors then model the crash tail:
//!
//! * `Clean`     — the crash left the files intact (kill between ops);
//! * `TornTail`  — the final WAL append was cut short (truncate
//!   mid-record) — the mid-append crash;
//! * `TailFlip`  — the final record hit the disk with a flipped
//!   payload byte (checksum catches it, truncation repairs it);
//! * `SnapCrash` — the crash hit during a snapshot: a garbage
//!   `.tmp` left behind *and* the newest complete snapshot damaged,
//!   forcing fallback to an older one (or empty + full replay).
//!
//! After recovery the driver resumes from `resumed_accepted` — any
//! acknowledged-but-lost tail submission is simply re-submitted, and
//! the recovered timeline must still replay the original decisions
//! exactly.

use mlfs_service::durability::snapshot::list_snapshots;
use mlfs_service::durability::wal::WAL_MAGIC;
use mlfs_service::{DurabilityConfig, FsyncPolicy, RecoveryReport, Service};
use mlfs_sim::engine::StepOutcome;
use mlfs_sim::experiments::{fig4, Experiment};
use std::path::{Path, PathBuf};
use workload::JobSpec;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Surgery {
    Clean,
    TornTail,
    TailFlip,
    SnapCrash,
}

const FLAVORS: [Surgery; 4] = [
    Surgery::Clean,
    Surgery::TornTail,
    Surgery::TailFlip,
    Surgery::SnapCrash,
];

fn experiment(jobs: usize) -> Experiment {
    let mut e = fig4(0.25, 64.0, 7);
    e.trace.jobs = jobs;
    e
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlfs-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive the just-in-time streamer. `cursor` indexes the next spec to
/// submit; each executed submit or tick increments `ops`. Returns
/// `None` if the kill point fired (the service must then be dropped
/// by the caller), `Some(outcome)` when the engine drained.
fn drive(
    svc: &mut Service,
    specs: &[JobSpec],
    cursor: &mut usize,
    ops: &mut u64,
    kill_at: Option<u64>,
) -> Option<StepOutcome> {
    let first_arrival = specs.first().map(|s| s.arrival);
    loop {
        let upcoming = if svc.rounds() == 0 {
            first_arrival.unwrap_or_else(|| svc.now())
        } else {
            svc.now()
        };
        while *cursor < specs.len()
            && (specs[*cursor].arrival <= upcoming || svc.pending_arrivals() == 0)
        {
            if kill_at == Some(*ops) {
                return None;
            }
            *ops += 1;
            assert!(
                svc.submit(specs[*cursor].clone()).accepted(),
                "no admission control => accepted"
            );
            *cursor += 1;
        }
        if kill_at == Some(*ops) {
            return None;
        }
        *ops += 1;
        match svc.tick() {
            StepOutcome::Continue => {}
            done => {
                assert_eq!(*cursor, specs.len(), "engine stopped mid-stream");
                return Some(done);
            }
        }
    }
}

/// Byte extents of complete WAL records (header included).
fn record_extents(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        out.push((pos, end));
        pos = end;
    }
    out
}

/// Post-crash file surgery. Returns true if anything was damaged.
fn operate(dir: &Path, surgery: Surgery) -> bool {
    match surgery {
        Surgery::Clean => false,
        Surgery::TornTail => {
            let wal = dir.join("wal.log");
            let Ok(bytes) = std::fs::read(&wal) else {
                return false;
            };
            let extents = record_extents(&bytes);
            let Some(&(start, end)) = extents.last() else {
                return false;
            };
            // Cut mid-way through the final record.
            let cut = start + (end - start) / 2;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .expect("wal opens");
            f.set_len(cut as u64).expect("truncate");
            true
        }
        Surgery::TailFlip => {
            let wal = dir.join("wal.log");
            let Ok(mut bytes) = std::fs::read(&wal) else {
                return false;
            };
            let extents = record_extents(&bytes);
            let Some(&(start, end)) = extents.last() else {
                return false;
            };
            let mid = start + 8 + (end - start - 8) / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&wal, bytes).expect("wal rewrites");
            true
        }
        Surgery::SnapCrash => {
            std::fs::write(dir.join("snap-424242.json.tmp"), b"crash mid-snapshot")
                .expect("tmp writes");
            let Ok(snaps) = list_snapshots(dir) else {
                return false;
            };
            let Some((_, newest)) = snaps.first() else {
                return false;
            };
            let mut bytes = std::fs::read(newest).expect("snapshot reads");
            let n = bytes.len();
            bytes[n - 2] ^= 0xFF;
            std::fs::write(newest, bytes).expect("snapshot rewrites");
            true
        }
    }
}

/// Uninterrupted streamed run (no durability): the reference
/// metrics and the total op count the kill points are seeded from.
fn reference(e: &Experiment, name: &str) -> (String, u64) {
    let mut svc = Service::new(e.sim.clone(), e.scheduler(name, 7), None);
    let mut specs = e.jobs();
    specs.sort_by_key(|s| s.arrival);
    let mut cursor = 0usize;
    let mut ops = 0u64;
    let out = drive(&mut svc, &specs, &mut cursor, &mut ops, None);
    assert_eq!(out, Some(StepOutcome::Drained));
    let mut m = svc.finish();
    m.clear_wall_clock();
    (serde_json::to_string(&m).expect("metrics json"), ops)
}

/// One chaos round: run durably, kill at `kill_at`, operate, recover,
/// resume, finish. Returns the final metrics and the recovery report.
fn chaos_run(
    e: &Experiment,
    name: &str,
    dcfg: &DurabilityConfig,
    kill_at: u64,
    surgery: Surgery,
) -> (String, RecoveryReport, bool) {
    let mut specs = e.jobs();
    specs.sort_by_key(|s| s.arrival);

    let mut svc = Service::builder(e.sim.clone())
        .durability(dcfg.clone())
        .build(e.scheduler(name, 7))
        .expect("durable service builds");
    let mut cursor = 0usize;
    let mut ops = 0u64;
    let killed = drive(&mut svc, &specs, &mut cursor, &mut ops, Some(kill_at));
    assert_eq!(killed, None, "kill point {kill_at} must fire mid-run");
    assert_eq!(svc.durability_error(), None, "persistence stayed healthy");
    drop(svc); // the crash

    let damaged = operate(&dcfg.dir, surgery);

    let (mut svc, report) = Service::builder(e.sim.clone())
        .durability(dcfg.clone())
        .recover(e.scheduler(name, 7))
        .expect("recovery succeeds");
    // Resume exactly where the durable state left off: specs are
    // submitted in acceptance order, so the cursor *is* the count.
    let mut cursor = usize::try_from(report.resumed_accepted).expect("cursor fits");
    let mut ops = 0u64;
    let out = drive(&mut svc, &specs, &mut cursor, &mut ops, None);
    assert_eq!(out, Some(StepOutcome::Drained));
    assert_eq!(svc.durability_error(), None, "persistence stayed healthy");
    let mut m = svc.finish();
    m.clear_wall_clock();
    (
        serde_json::to_string(&m).expect("metrics json"),
        report,
        damaged,
    )
}

/// ≥ 8 seeded kill points spread across the run, cycling through all
/// four surgery flavors (each flavor hit ≥ 2×).
fn kill_points(total_ops: u64) -> Vec<u64> {
    assert!(total_ops >= 20, "run too short to chaos-test: {total_ops}");
    [1, 8, 12, 20, 40, 55, 70, 85, 95]
        .iter()
        .map(|pct_or_op| {
            if *pct_or_op <= 1 {
                1 // immediately after the very first submission
            } else {
                (total_ops * pct_or_op / 100).max(2)
            }
        })
        .collect()
}

fn chaos_scheduler(name: &str) {
    let e = experiment(8);
    let (want, total_ops) = reference(&e, name);

    let dir = tmpdir(name);
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.snapshot_every_rounds = 4;
    dcfg.keep_snapshots = 2;
    dcfg.fsync = FsyncPolicy::EveryN(4);

    let kills = kill_points(total_ops);
    assert!(kills.len() >= 8, "need ≥8 kill points, got {}", kills.len());
    let mut truncations = 0usize;
    let mut snapshot_fallbacks = 0usize;
    let mut snapshot_recoveries = 0usize;
    for (i, &kill_at) in kills.iter().enumerate() {
        let surgery = FLAVORS[i % FLAVORS.len()];
        let (got, report, damaged) = chaos_run(&e, name, &dcfg, kill_at, surgery);
        assert_eq!(
            want, got,
            "{name}: kill@{kill_at} {surgery:?} diverged from the uninterrupted run"
        );
        if report.wal_truncated_bytes.is_some() {
            truncations += 1;
        }
        if report.snapshots_rejected > 0 {
            snapshot_fallbacks += 1;
        }
        if report.snapshot_round.is_some() {
            snapshot_recoveries += 1;
        }
        if damaged && matches!(surgery, Surgery::TornTail | Surgery::TailFlip) {
            assert!(
                report.wal_truncated_bytes.is_some(),
                "{name}: kill@{kill_at} {surgery:?} damaged the tail but nothing was truncated"
            );
        }
    }
    assert!(
        truncations >= 2,
        "{name}: the mid-append path was never exercised"
    );
    assert!(
        snapshot_fallbacks >= 1,
        "{name}: the mid-snapshot fallback path was never exercised"
    );
    assert!(
        snapshot_recoveries >= 1,
        "{name}: no kill point recovered from a snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_recovery_is_bit_identical_mlf_h() {
    chaos_scheduler("MLF-H");
}

#[test]
fn chaos_recovery_is_bit_identical_mlfs() {
    chaos_scheduler("MLFS");
}

#[test]
fn chaos_recovery_is_bit_identical_tiresias() {
    chaos_scheduler("Tiresias");
}
