//! Flat, batch-major feature tensors and the reusable workspace that
//! makes batched inference allocation-free.
//!
//! A scheduling decision scores N candidate feature vectors with one
//! shared MLP. Doing that as N independent `forward` calls costs N ×
//! layers heap allocations and N separate weight-matrix walks; packing
//! the candidates into one row-major `FeatureBatch` lets the network
//! run GEMM-style loops over a [`Workspace`] whose buffers are reused
//! across calls, so the steady-state hot path never allocates.

use serde::{Deserialize, Serialize};

/// A row-major `rows × dim` batch of feature vectors in one flat
/// allocation. Row `r` is `data[r*dim .. (r+1)*dim]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureBatch {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
}

impl FeatureBatch {
    /// Empty batch of `dim`-dimensional rows.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        FeatureBatch {
            data: Vec::new(),
            dim,
            rows: 0,
        }
    }

    /// Empty batch with room for `rows` rows pre-reserved.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        let mut b = Self::new(dim);
        b.data.reserve(rows * dim);
        b
    }

    /// Build from per-row slices (convenience for tests and porting
    /// `Vec<Vec<f64>>` call sites).
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut b = Self::with_capacity(dim, rows.len());
        for r in rows {
            b.push(r);
        }
        b
    }

    /// Remove all rows, keeping the allocation (for pooled reuse).
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Append a zero-filled row and return it for in-place writing.
    pub fn push_row(&mut self) -> &mut [f64] {
        let start = self.data.len();
        self.data.resize(start + self.dim, 0.0);
        self.rows += 1;
        &mut self.data[start..]
    }

    /// Append a row, copying from a slice (must be `dim` long).
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length must equal dim");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drop the last `n` rows (rollback during speculative planning).
    pub fn truncate_rows(&mut self, rows: usize) {
        let rows = rows.min(self.rows);
        self.rows = rows;
        self.data.truncate(rows * self.dim);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Row `r` as a mutable slice (in-place feature edits, e.g.
    /// masking dimensions before offline training).
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// The whole batch, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterate rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }
}

/// Reusable buffers for batched forward/backward passes. One
/// `Workspace` serves any network/batch size — buffers grow to the
/// high-water mark and are then reused, so steady-state batched
/// inference performs zero heap allocation.
///
/// Lifecycle contract: [`crate::Mlp::forward_batch`] fills `acts`
/// (one buffer per layer, `rows × layer_width`, plus the cached
/// input) and [`crate::Mlp::backprop_batch`] consumes them — so a
/// backward pass must directly follow the forward pass for the same
/// batch on the same workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-layer activated outputs, row-major (`acts[l]` is
    /// `rows × width(l)`).
    pub(crate) acts: Vec<Vec<f64>>,
    /// Rows of the last forward pass (shape check for backprop).
    pub(crate) rows: usize,
    /// δ buffer (current layer), row-major.
    pub(crate) delta: Vec<f64>,
    /// δ buffer (next layer down), swapped with `delta` per layer.
    pub(crate) delta_next: Vec<f64>,
}

impl Workspace {
    /// Fresh workspace (buffers grow lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure `acts` holds at least `layers` buffers.
    pub(crate) fn ensure_layers(&mut self, layers: usize) {
        if self.acts.len() < layers {
            self.acts.resize_with(layers, Vec::new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut b = FeatureBatch::new(3);
        assert!(b.is_empty());
        b.push(&[1.0, 2.0, 3.0]);
        let r = b.push_row();
        r.copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = FeatureBatch::with_capacity(2, 4);
        b.push(&[1.0, 2.0]);
        b.push(&[3.0, 4.0]);
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.data.capacity(), cap);
        b.push(&[5.0, 6.0]);
        assert_eq!(b.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn truncate_rolls_back() {
        let mut b = FeatureBatch::from_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        b.truncate_rows(1);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
        b.truncate_rows(5); // no-op past the end
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![0.1, 0.2], vec![0.3, 0.4]];
        let b = FeatureBatch::from_rows(2, &rows);
        let back: Vec<Vec<f64>> = b.iter_rows().map(|r| r.to_vec()).collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn serde_round_trip() {
        let b = FeatureBatch::from_rows(2, &[vec![1.5, -2.5], vec![0.0, 3.25]]);
        let json = serde_json::to_string(&b).unwrap();
        let back: FeatureBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_checks_dim() {
        FeatureBatch::new(3).push(&[1.0]);
    }
}
