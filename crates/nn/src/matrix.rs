//! Dense row-major matrices — just the operations backprop needs.

use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation, deterministic from `rng`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SimRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-bound, bound))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat view of the elements (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = self · x` for a column vector `x` (len = cols).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` for a column vector `x` (len = rows).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, a) in row.iter().enumerate() {
                y[c] += a * xr;
            }
        }
        y
    }

    /// `self += k · (u ⊗ v)` — rank-one update used for weight
    /// gradients (`u` len = rows, `v` len = cols).
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], k: f64) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur0) in u.iter().enumerate() {
            let ur = ur0 * k;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, e) in row.iter_mut().enumerate() {
                *e += ur * v[c];
            }
        }
    }

    /// `self += k · other` (same shape).
    pub fn add_scaled(&mut self, other: &Matrix, k: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_hand_computation() {
        // [1 2; 3 4; 5 6] · [1, 10] = [21, 43, 65]
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        assert_eq!(m.matvec(&[1.0, 10.0]), vec![21.0, 43.0, 65.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        // Mᵀ · [1, 1, 1] = column sums = [9, 12]
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn add_outer_is_rank_one() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let a = Matrix::xavier(10, 20, &mut r1);
        let b = Matrix::xavier(10, 20, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 30.0f64).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        // Not all equal (actually random).
        assert!(a.as_slice().iter().any(|v| *v != a.get(0, 0)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
