//! Dense row-major matrices — just the operations backprop needs.

use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation, deterministic from `rng`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SimRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-bound, bound))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat view of the elements (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = self · x` for a column vector `x` (len = cols).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` for a column vector `x` (len = rows).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, a) in row.iter().enumerate() {
                y[c] += a * xr;
            }
        }
        y
    }

    /// Batched `matvec`: `out = X · selfᵀ` for a row-major batch `x`
    /// of `rows` vectors (each `cols` long); `out` must hold
    /// `rows × self.rows` elements. Each output element accumulates
    /// its products in the exact ascending-column order
    /// [`Matrix::matvec`] uses, so results are bit-identical to `rows`
    /// independent `matvec` calls. The speedup: 4 output elements are
    /// computed per pass, giving 4 independent accumulation chains
    /// that hide FP-add latency — `matvec`'s single chain serialises
    /// on it — while `out` is a caller-reused buffer, so the hot path
    /// never allocates.
    pub fn matmul_into(&self, x: &[f64], rows: usize, out: &mut [f64]) {
        assert_eq!(x.len(), rows * self.cols, "matmul_into input mismatch");
        assert_eq!(out.len(), rows * self.rows, "matmul_into output mismatch");
        let (out_dim, cols) = (self.rows, self.cols);
        for r in 0..rows {
            let xr = &x[r * cols..(r + 1) * cols];
            let out_row = &mut out[r * out_dim..(r + 1) * out_dim];
            let mut o = 0;
            while o + 4 <= out_dim {
                let w0 = &self.data[o * cols..(o + 1) * cols];
                let w1 = &self.data[(o + 1) * cols..(o + 2) * cols];
                let w2 = &self.data[(o + 2) * cols..(o + 3) * cols];
                let w3 = &self.data[(o + 3) * cols..(o + 4) * cols];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                for (c, &xc) in xr.iter().enumerate() {
                    a0 += w0[c] * xc;
                    a1 += w1[c] * xc;
                    a2 += w2[c] * xc;
                    a3 += w3[c] * xc;
                }
                out_row[o] = a0;
                out_row[o + 1] = a1;
                out_row[o + 2] = a2;
                out_row[o + 3] = a3;
                o += 4;
            }
            for y in &mut out_row[o..] {
                let w_row = &self.data[o * cols..(o + 1) * cols];
                let mut acc = 0.0;
                for (a, b) in w_row.iter().zip(xr) {
                    acc += a * b;
                }
                *y = acc;
                o += 1;
            }
        }
    }

    /// Batched `matvec_t`: `out = X · self` for a row-major batch `x`
    /// of `rows` vectors (each `self.rows` long); `out` must hold
    /// `rows × self.cols` elements. Accumulation order per output
    /// element matches [`Matrix::matvec_t`] exactly (weight rows in
    /// ascending order), so results are bit-identical.
    pub fn matmul_t_into(&self, x: &[f64], rows: usize, out: &mut [f64]) {
        assert_eq!(x.len(), rows * self.rows, "matmul_t_into input mismatch");
        assert_eq!(out.len(), rows * self.cols, "matmul_t_into output mismatch");
        for r in 0..rows {
            let xr = &x[r * self.rows..(r + 1) * self.rows];
            let out_row = &mut out[r * self.cols..(r + 1) * self.cols];
            out_row.iter_mut().for_each(|v| *v = 0.0);
            for (o, &xo) in xr.iter().enumerate() {
                let w_row = &self.data[o * self.cols..(o + 1) * self.cols];
                for (y, a) in out_row.iter_mut().zip(w_row) {
                    *y += a * xo;
                }
            }
        }
    }

    /// Write this matrix column-major into `out` (`out[c * rows + r] =
    /// self[r][c]`) — the layout [`matmul_pretransposed`] consumes.
    pub(crate) fn transpose_into(&self, out: &mut Vec<f64>) {
        let (rows, cols) = (self.rows, self.cols);
        out.clear();
        out.resize(rows * cols, 0.0);
        for (r, w_row) in self.data.chunks_exact(cols).enumerate() {
            for (c, &w) in w_row.iter().enumerate() {
                out[c * rows + r] = w;
            }
        }
    }

    /// `self += k · (u ⊗ v)` — rank-one update used for weight
    /// gradients (`u` len = rows, `v` len = cols).
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], k: f64) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur0) in u.iter().enumerate() {
            let ur = ur0 * k;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, e) in row.iter_mut().enumerate() {
                *e += ur * v[c];
            }
        }
    }

    /// `self += k · other` (same shape).
    pub fn add_scaled(&mut self, other: &Matrix, k: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Batched `matvec` against a pre-transposed (column-major) weight
/// matrix `wt` (`in_dim × out_dim`, as written by
/// [`Matrix::transpose_into`]): `out[r][o] = epilogue(o, Σ_c
/// wt[c][o]·x[r][c])` for a row-major batch `x` of `rows` vectors.
/// Each output element accumulates its products in the exact
/// ascending-column order [`Matrix::matvec`] uses, so with an
/// identity epilogue results are bit-identical to per-sample calls
/// (an `act(z + bias)` epilogue likewise replays the per-sample
/// order, fused into the tile store instead of a second pass over
/// the batch). This is the fastest inference kernel: 8 outputs are
/// carried per pass in a register-resident accumulator tile, and the
/// column-major layout makes the weight reads contiguous, so the
/// inner loop vectorises — but it needs the transposed copy, which
/// callers should cache across calls (see `TransposedWeights` in
/// `mlp`).
pub(crate) fn matmul_pretransposed(
    wt: &[f64],
    in_dim: usize,
    out_dim: usize,
    x: &[f64],
    rows: usize,
    out: &mut [f64],
    mut epilogue: impl FnMut(usize, f64) -> f64,
) {
    assert_eq!(wt.len(), in_dim * out_dim, "transposed weight shape");
    assert_eq!(x.len(), rows * in_dim, "input batch shape");
    assert_eq!(out.len(), rows * out_dim, "output batch shape");
    for r in 0..rows {
        let xr = &x[r * in_dim..(r + 1) * in_dim];
        let out_row = &mut out[r * out_dim..(r + 1) * out_dim];
        let mut o = 0;
        while o + 8 <= out_dim {
            let mut acc = [0.0f64; 8];
            for (c, &xc) in xr.iter().enumerate() {
                let w = &wt[c * out_dim + o..c * out_dim + o + 8];
                for (a, &wv) in acc.iter_mut().zip(w) {
                    *a += wv * xc;
                }
            }
            for (j, &a) in acc.iter().enumerate() {
                out_row[o + j] = epilogue(o + j, a);
            }
            o += 8;
        }
        while o < out_dim {
            let mut a = 0.0;
            for (c, &xc) in xr.iter().enumerate() {
                a += wt[c * out_dim + o] * xc;
            }
            out_row[o] = epilogue(o, a);
            o += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_hand_computation() {
        // [1 2; 3 4; 5 6] · [1, 10] = [21, 43, 65]
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        assert_eq!(m.matvec(&[1.0, 10.0]), vec![21.0, 43.0, 65.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        // Mᵀ · [1, 1, 1] = column sums = [9, 12]
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn add_outer_is_rank_one() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn matmul_into_matches_per_row_matvec() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        let x = [1.0, 10.0, -2.0, 0.5];
        let mut out = vec![0.0; 2 * 3];
        m.matmul_into(&x, 2, &mut out);
        assert_eq!(&out[..3], m.matvec(&x[..2]).as_slice());
        assert_eq!(&out[3..], m.matvec(&x[2..]).as_slice());
    }

    #[test]
    fn matmul_t_into_matches_per_row_matvec_t() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        let x = [1.0, 1.0, 1.0, 0.5, -1.0, 2.0];
        let mut out = vec![0.0; 2 * 2];
        m.matmul_t_into(&x, 2, &mut out);
        assert_eq!(&out[..2], m.matvec_t(&x[..3]).as_slice());
        assert_eq!(&out[2..], m.matvec_t(&x[3..]).as_slice());
    }

    #[test]
    fn matmul_pretransposed_matches_per_row_matvec() {
        let mut rng = SimRng::new(31);
        // Width > 8 exercises both the 8-wide tile and the remainder.
        let m = Matrix::xavier(11, 5, &mut rng);
        let x: Vec<f64> = (0..3 * 5).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut wt = Vec::new();
        m.transpose_into(&mut wt);
        let mut out = vec![0.0; 3 * 11];
        matmul_pretransposed(&wt, 5, 11, &x, 3, &mut out, |_, v| v);
        for r in 0..3 {
            let reference = m.matvec(&x[r * 5..(r + 1) * 5]);
            assert_eq!(&out[r * 11..(r + 1) * 11], reference.as_slice());
        }
        // The epilogue is applied per element with its output index.
        let mut shifted = vec![0.0; 3 * 11];
        matmul_pretransposed(&wt, 5, 11, &x, 3, &mut shifted, |o, v| v + o as f64);
        for (i, (s, p)) in shifted.iter().zip(&out).enumerate() {
            assert_eq!(*s, p + (i % 11) as f64);
        }
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let a = Matrix::xavier(10, 20, &mut r1);
        let b = Matrix::xavier(10, 20, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 30.0f64).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        // Not all equal (actually random).
        assert!(a.as_slice().iter().any(|v| *v != a.get(0, 0)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
