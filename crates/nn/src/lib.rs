//! # nn — a minimal pure-Rust neural-network library
//!
//! The paper's MLF-RL agent is "a Deep Neural Network … as the agent,
//! which generates the optimal policy" (§3.4), trained with policy
//! gradients \[51\]. Mature RL/DL crates are not available offline, so
//! this crate provides exactly what a policy network needs and nothing
//! more:
//!
//! * [`Matrix`] — a dense row-major matrix with the handful of ops
//!   backprop requires;
//! * [`Mlp`] — a multi-layer perceptron with ReLU/tanh hidden layers
//!   and identity output (logits), with exact reverse-mode gradients;
//! * [`Adam`] / [`Sgd`] — optimizers over the flattened parameters;
//! * [`softmax`] / [`log_softmax`] and loss-gradient helpers for
//!   cross-entropy (imitation) and policy-gradient (REINFORCE)
//!   training.
//!
//! Gradient correctness is enforced by finite-difference property
//! tests, and an end-to-end test learns XOR.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use batch::{FeatureBatch, Workspace};
pub use matrix::Matrix;
pub use mlp::{Activation, Gradients, Mlp, TransposedWeights};
pub use optim::{Adam, Sgd};

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate logits (e.g. all -inf): fall back to uniform.
        return vec![1.0 / logits.len().max(1) as f64; logits.len()];
    }
    exps.iter().map(|&e| e / sum).collect()
}

/// In-place [`softmax`]: identical numerics (same max-shift, same
/// exp/sum order, same degenerate-input fallback) without the output
/// allocation — the hot-path variant for reused buffers.
pub fn softmax_in_place(logits: &mut [f64]) {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum <= 0.0 || !sum.is_finite() {
        let uniform = 1.0 / logits.len().max(1) as f64;
        logits.iter_mut().for_each(|x| *x = uniform);
        return;
    }
    logits.iter_mut().for_each(|x| *x /= sum);
}

/// Numerically-stable log-softmax.
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&x| (x - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&x| x - log_sum).collect()
}

/// Gradient of cross-entropy (with integrated softmax) w.r.t. logits:
/// `softmax(logits) − onehot(target)`.
pub fn cross_entropy_grad(logits: &[f64], target: usize) -> Vec<f64> {
    let mut g = softmax(logits);
    g[target] -= 1.0;
    g
}

/// Cross-entropy loss value (for monitoring).
pub fn cross_entropy_loss(logits: &[f64], target: usize) -> f64 {
    -log_softmax(logits)[target]
}

/// REINFORCE gradient w.r.t. logits for sampled action `action` with
/// (baseline-subtracted) `advantage`: `advantage · (softmax − onehot)`.
/// Minimising with this gradient *increases* the log-probability of
/// actions with positive advantage.
pub fn policy_gradient(logits: &[f64], action: usize, advantage: f64) -> Vec<f64> {
    let mut g = softmax(logits);
    g[action] -= 1.0;
    for v in &mut g {
        *v *= advantage;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let huge = softmax(&[1e308, 1e308]);
        assert!((huge[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_in_place_matches_softmax() {
        for logits in [
            vec![1.0, 2.0, 3.0],
            vec![0.0],
            vec![-1e3, 1e3, 0.5, 0.5],
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY],
        ] {
            let reference = softmax(&logits);
            let mut buf = logits.clone();
            softmax_in_place(&mut buf);
            assert_eq!(buf, reference, "input {logits:?}");
        }
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let l = [0.3, -1.2, 2.0, 0.0];
        let p = softmax(&l);
        let lp = log_softmax(&l);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero() {
        let g = cross_entropy_grad(&[0.5, -0.5, 1.5], 1);
        assert!((g.iter().sum::<f64>()).abs() < 1e-12);
        // Target's gradient is negative (we should raise its logit).
        assert!(g[1] < 0.0);
    }

    #[test]
    fn cross_entropy_loss_is_low_when_confident() {
        assert!(cross_entropy_loss(&[10.0, 0.0], 0) < 0.01);
        assert!(cross_entropy_loss(&[0.0, 10.0], 0) > 5.0);
    }

    #[test]
    fn policy_gradient_scales_with_advantage() {
        let g_pos = policy_gradient(&[0.0, 0.0], 0, 2.0);
        let g_neg = policy_gradient(&[0.0, 0.0], 0, -2.0);
        // Positive advantage pushes the action's logit up (negative
        // gradient since we minimise), negative advantage the reverse.
        assert!(g_pos[0] < 0.0);
        assert!(g_neg[0] > 0.0);
        assert!((g_pos[0] + g_neg[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_advantage_means_zero_gradient() {
        let g = policy_gradient(&[1.0, 2.0, 3.0], 1, 0.0);
        assert!(g.iter().all(|v| *v == 0.0));
    }
}
