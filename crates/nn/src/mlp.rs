//! Multi-layer perceptron with exact reverse-mode gradients.

use crate::batch::{FeatureBatch, Workspace};
use crate::matrix::{matmul_pretransposed, Matrix};
use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// Cached column-major copies of an [`Mlp`]'s weight matrices, the
/// layout [`Mlp::forward_batch_cached`] consumes. Building the copy
/// costs one pass over the parameters, so holders cache it across
/// forward calls and re-derive it only after the weights change
/// (call [`TransposedWeights::invalidate`] on every mutation; the
/// cache starts invalid). Keeping the cache *outside* the network —
/// rather than as dual storage inside [`Mlp`] — leaves `Mlp`'s
/// serialization, equality and clone semantics untouched.
#[derive(Debug, Clone, Default)]
pub struct TransposedWeights {
    /// Layer `l`'s weights, column-major (`in_dim × out_dim`).
    layers: Vec<Vec<f64>>,
    valid: bool,
}

impl TransposedWeights {
    /// Empty (invalid) cache; filled by [`Mlp::refresh_transposed`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark stale — the next cached forward must refresh first.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// True when the cache holds a current transposed copy.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

/// Hidden-layer activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// x (used for the output layer — logits)
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    w: Matrix, // out × in
    b: Vec<f64>,
    act: Activation,
}

/// Per-layer parameter gradients, shaped like the network.
#[derive(Debug, Clone)]
pub struct Gradients {
    dw: Vec<Matrix>,
    db: Vec<Vec<f64>>,
    /// Number of samples accumulated (for averaging).
    pub samples: usize,
}

impl Gradients {
    fn zeros_like(net: &Mlp) -> Self {
        Gradients {
            dw: net
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            db: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            samples: 0,
        }
    }

    /// Reset to zero, keeping shapes.
    pub fn clear(&mut self) {
        for m in &mut self.dw {
            m.fill_zero();
        }
        for v in &mut self.db {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        self.samples = 0;
    }

    /// Global L2 norm of the gradient (for clipping).
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for m in &self.dw {
            acc += m.as_slice().iter().map(|v| v * v).sum::<f64>();
        }
        for v in &self.db {
            acc += v.iter().map(|x| x * x).sum::<f64>();
        }
        acc.sqrt()
    }

    /// Scale all gradients by `k`.
    pub fn scale(&mut self, k: f64) {
        for m in &mut self.dw {
            for v in m.as_mut_slice() {
                *v *= k;
            }
        }
        for v in &mut self.db {
            v.iter_mut().for_each(|x| *x *= k);
        }
    }
}

/// A feed-forward network: dense layers with the configured hidden
/// activation and identity (logit) output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from layer sizes, e.g. `&[in, h1, h2, out]`. Hidden
    /// layers use `hidden_act`; the output layer is identity (logits).
    pub fn new(sizes: &[usize], hidden_act: Activation, rng: &mut SimRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense {
                w: Matrix::xavier(w[1], w[0], rng),
                b: vec![0.0; w[1]],
                act: if i + 2 == sizes.len() {
                    Activation::Identity
                } else {
                    hidden_act
                },
            })
            .collect();
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.w.cols()).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.w.rows()).unwrap_or(0)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass: returns the output logits.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for l in &self.layers {
            let mut z = l.w.matvec(&h);
            for (zi, bi) in z.iter_mut().zip(&l.b) {
                *zi = l.act.apply(*zi + bi);
            }
            h = z;
        }
        h
    }

    /// Forward pass retaining every layer's activated output (the
    /// input is `activations[0]`).
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for l in &self.layers {
            let Some(prev) = acts.last() else {
                break; // non-empty by construction: pushed above
            };
            let mut z = l.w.matvec(prev);
            for (zi, bi) in z.iter_mut().zip(&l.b) {
                *zi = l.act.apply(*zi + bi);
            }
            acts.push(z);
        }
        acts
    }

    /// Fresh zero gradients shaped like this network.
    pub fn zero_grads(&self) -> Gradients {
        Gradients::zeros_like(self)
    }

    /// Batched forward pass over all rows of `batch`, caching every
    /// layer's activated output in `ws` (required by
    /// [`Mlp::backprop_batch`]). Returns the output logits, row-major
    /// (`rows × output_dim`), borrowed from the workspace.
    ///
    /// Each row's arithmetic replays [`Mlp::forward`] exactly (same
    /// dot-product accumulation order, same bias/activation fusion),
    /// so the logits are bit-identical to per-sample calls — the win
    /// is zero steady-state allocation and one dense weight walk per
    /// layer instead of per candidate.
    pub fn forward_batch<'w>(&self, batch: &FeatureBatch, ws: &'w mut Workspace) -> &'w [f64] {
        assert_eq!(batch.dim(), self.input_dim(), "batch dim mismatch");
        let rows = batch.rows();
        ws.ensure_layers(self.layers.len());
        ws.rows = rows;
        for (li, l) in self.layers.iter().enumerate() {
            let (done, rest) = ws.acts.split_at_mut(li);
            let input: &[f64] = if li == 0 {
                batch.as_slice()
            } else {
                &done[li - 1]
            };
            let out_dim = l.w.rows();
            let cur = &mut rest[0];
            cur.resize(rows * out_dim, 0.0);
            l.w.matmul_into(input, rows, cur);
            for row in cur.chunks_exact_mut(out_dim) {
                for (z, b) in row.iter_mut().zip(&l.b) {
                    *z = l.act.apply(*z + b);
                }
            }
        }
        let n = self.layers.len();
        assert!(n > 0, "Mlp has no layers");
        &ws.acts[n - 1]
    }

    /// Rebuild `tw` as a column-major copy of this network's weights
    /// and mark it valid.
    pub fn refresh_transposed(&self, tw: &mut TransposedWeights) {
        tw.layers.resize_with(self.layers.len(), Vec::new);
        for (l, t) in self.layers.iter().zip(&mut tw.layers) {
            l.w.transpose_into(t);
        }
        tw.valid = true;
    }

    /// [`Mlp::forward_batch`] reading weights from a cached transposed
    /// copy (see [`TransposedWeights`]): same activations cached in
    /// `ws`, same bit-identical logits, but the GEMM inner loop reads
    /// weights contiguously and vectorises — roughly twice as fast at
    /// inference shapes. Callers must keep `tw` in sync with the
    /// weights (refresh after any mutation); passing a stale or
    /// foreign cache panics on shape mismatch but silently computes
    /// with old weights otherwise — hence the `is_valid` discipline.
    pub fn forward_batch_cached<'w>(
        &self,
        batch: &FeatureBatch,
        ws: &'w mut Workspace,
        tw: &TransposedWeights,
    ) -> &'w [f64] {
        assert!(tw.valid, "transposed-weight cache is stale");
        assert_eq!(tw.layers.len(), self.layers.len(), "cache layer count");
        assert_eq!(batch.dim(), self.input_dim(), "batch dim mismatch");
        let rows = batch.rows();
        ws.ensure_layers(self.layers.len());
        ws.rows = rows;
        for (li, l) in self.layers.iter().enumerate() {
            let (done, rest) = ws.acts.split_at_mut(li);
            let input: &[f64] = if li == 0 {
                batch.as_slice()
            } else {
                &done[li - 1]
            };
            let out_dim = l.w.rows();
            let cur = &mut rest[0];
            cur.resize(rows * out_dim, 0.0);
            // Bias + activation fused into the kernel's tile store —
            // same per-element `act(z + b)` as the uncached path, one
            // less pass over the activation buffer.
            matmul_pretransposed(
                &tw.layers[li],
                l.w.cols(),
                out_dim,
                input,
                rows,
                cur,
                |o, z| l.act.apply(z + l.b[o]),
            );
        }
        let n = self.layers.len();
        assert!(n > 0, "Mlp has no layers");
        &ws.acts[n - 1]
    }

    /// Batched backward pass: accumulate gradients for every row of
    /// `batch`, given `dloss_dout` (row-major `rows × output_dim`)
    /// w.r.t. the logits. Must directly follow a
    /// [`Mlp::forward_batch`] for the same batch on the same
    /// workspace — the cached per-layer activations are consumed here.
    ///
    /// Per-element accumulation into `grads` happens in row order, the
    /// same order `rows` sequential [`Mlp::backprop`] calls would use,
    /// so the resulting gradients are bit-identical to the per-sample
    /// path. `grads.samples` grows by `rows`.
    pub fn backprop_batch(
        &self,
        batch: &FeatureBatch,
        dloss_dout: &[f64],
        grads: &mut Gradients,
        ws: &mut Workspace,
    ) {
        let rows = batch.rows();
        assert_eq!(ws.rows, rows, "workspace holds a different batch");
        assert_eq!(dloss_dout.len(), rows * self.output_dim(), "dloss shape");
        if rows == 0 {
            return;
        }
        ws.delta.clear();
        ws.delta.extend_from_slice(dloss_dout);
        for (li, l) in self.layers.iter().enumerate().rev() {
            let out_dim = l.w.rows();
            let in_dim = l.w.cols();
            let out_acts = &ws.acts[li];
            // δ ← δ ⊙ act'(out), row by row.
            for (d, y) in ws.delta.iter_mut().zip(out_acts) {
                *d *= l.act.derivative_from_output(*y);
            }
            // dW += δ_r ⊗ input_r and db += δ_r, in row order (the
            // per-sample accumulation order).
            let input: &[f64] = if li == 0 {
                batch.as_slice()
            } else {
                &ws.acts[li - 1]
            };
            for r in 0..rows {
                let d_row = &ws.delta[r * out_dim..(r + 1) * out_dim];
                let in_row = &input[r * in_dim..(r + 1) * in_dim];
                grads.dw[li].add_outer(d_row, in_row, 1.0);
                for (g, d) in grads.db[li].iter_mut().zip(d_row) {
                    *g += d;
                }
            }
            // Propagate: δ ← δ · W (= Wᵀδ per row).
            if li > 0 {
                ws.delta_next.resize(rows * in_dim, 0.0);
                l.w.matmul_t_into(&ws.delta, rows, &mut ws.delta_next);
                std::mem::swap(&mut ws.delta, &mut ws.delta_next);
            }
        }
        grads.samples += rows;
    }

    /// Accumulate gradients of a scalar loss whose gradient w.r.t. the
    /// output logits is `dloss_dout`, for input `x`. Returns the
    /// logits produced on the way (handy for loss logging).
    pub fn backprop(&self, x: &[f64], dloss_dout: &[f64], grads: &mut Gradients) -> Vec<f64> {
        assert_eq!(dloss_dout.len(), self.output_dim());
        let acts = self.forward_cached(x);
        let mut delta = dloss_dout.to_vec();
        // Walk layers in reverse.
        for (li, l) in self.layers.iter().enumerate().rev() {
            let out = &acts[li + 1];
            let input = &acts[li];
            // δ ← δ ⊙ act'(out)
            for (d, y) in delta.iter_mut().zip(out) {
                *d *= l.act.derivative_from_output(*y);
            }
            // dW += δ ⊗ input; db += δ
            grads.dw[li].add_outer(&delta, input, 1.0);
            for (g, d) in grads.db[li].iter_mut().zip(&delta) {
                *g += d;
            }
            // Propagate: δ ← Wᵀ δ
            if li > 0 {
                delta = l.w.matvec_t(&delta);
            }
        }
        grads.samples += 1;
        // Non-empty: forward_cached always pushes the input layer.
        acts.into_iter().last().unwrap_or_default()
    }

    /// Apply a parameter update: `θ += k · g` layer-wise (used by the
    /// optimizers; `k` is usually `−lr`).
    pub fn apply_update(&mut self, grads: &Gradients, k: f64) {
        for (l, (dw, db)) in self.layers.iter_mut().zip(grads.dw.iter().zip(&grads.db)) {
            l.w.add_scaled(dw, k);
            for (b, d) in l.b.iter_mut().zip(db) {
                *b += k * d;
            }
        }
    }

    /// Visit all parameters and matching gradients as flat slices —
    /// the optimizer hook. Order is stable (layer 0 weights, layer 0
    /// biases, layer 1 weights, …).
    pub fn visit_params_mut(&mut self, grads: &Gradients, mut f: impl FnMut(&mut [f64], &[f64])) {
        for (l, (dw, db)) in self.layers.iter_mut().zip(grads.dw.iter().zip(&grads.db)) {
            f(l.w.as_mut_slice(), dw.as_slice());
            f(&mut l.b, db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cross_entropy_grad, cross_entropy_loss, softmax};

    #[test]
    fn shapes_are_consistent() {
        let mut rng = SimRng::new(1);
        let net = Mlp::new(&[7, 16, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(net.input_dim(), 7);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.param_count(), 7 * 16 + 16 + 16 * 8 + 8 + 8 * 3 + 3);
        let y = net.forward(&[0.1; 7]);
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    /// Finite-difference gradient check — the canonical backprop test.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SimRng::new(42);
        let mut net = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng);
        let x = [0.3, -0.7, 0.9, 0.1];
        let target = 1usize;

        let mut grads = net.zero_grads();
        net.backprop(
            &x,
            &cross_entropy_grad(&net.forward(&x), target),
            &mut grads,
        );

        let eps = 1e-6;
        let grads_snapshot = grads;
        // Flatten analytic gradients in visit order.
        let mut analytic: Vec<f64> = Vec::new();
        net.visit_params_mut(&grads_snapshot, |_, g| {
            analytic.extend_from_slice(g);
        });
        // Helper: add `delta` to the k-th parameter in visit order.
        let perturb = |net: &mut Mlp, k: usize, delta: f64| {
            let mut seen = 0usize;
            net.visit_params_mut(&grads_snapshot, |p, _| {
                for v in p.iter_mut() {
                    if seen == k {
                        *v += delta;
                    }
                    seen += 1;
                }
            });
        };
        let total = analytic.len();
        let mut checked = 0;
        for k in (0..total).step_by(3) {
            perturb(&mut net, k, eps);
            let plus = cross_entropy_loss(&net.forward(&x), target);
            perturb(&mut net, k, -2.0 * eps);
            let minus = cross_entropy_loss(&net.forward(&x), target);
            perturb(&mut net, k, eps);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic[k]).abs() < 1e-4,
                "param {k}: numeric {numeric} vs analytic {}",
                analytic[k]
            );
            checked += 1;
        }
        assert!(checked >= 15, "only {checked} parameters checked");
    }

    /// End-to-end: a tiny MLP learns XOR with plain gradient descent.
    #[test]
    fn learns_xor() {
        let mut rng = SimRng::new(7);
        let mut net = Mlp::new(&[2, 8, 2], Activation::Tanh, &mut rng);
        let data: [([f64; 2], usize); 4] = [
            ([0.0, 0.0], 0),
            ([0.0, 1.0], 1),
            ([1.0, 0.0], 1),
            ([1.0, 1.0], 0),
        ];
        let mut grads = net.zero_grads();
        for _ in 0..2000 {
            grads.clear();
            for (x, t) in &data {
                let logits = net.forward(x);
                net.backprop(x, &cross_entropy_grad(&logits, *t), &mut grads);
            }
            net.apply_update(&grads, -0.5 / data.len() as f64);
        }
        for (x, t) in &data {
            let p = softmax(&net.forward(x));
            assert!(p[*t] > 0.9, "input {x:?}: p = {p:?}");
        }
    }

    #[test]
    fn gradient_norm_and_scale() {
        let mut rng = SimRng::new(3);
        let net = Mlp::new(&[2, 4, 2], Activation::Relu, &mut rng);
        let mut g = net.zero_grads();
        net.backprop(&[1.0, -1.0], &[1.0, -1.0], &mut g);
        let n = g.norm();
        assert!(n > 0.0);
        g.scale(0.5);
        assert!((g.norm() - n * 0.5).abs() < 1e-9);
        g.clear();
        assert_eq!(g.norm(), 0.0);
        assert_eq!(g.samples, 0);
    }

    #[test]
    fn forward_batch_is_bit_identical_to_per_sample() {
        let mut rng = SimRng::new(9);
        let net = Mlp::new(&[5, 12, 7, 2], Activation::Relu, &mut rng);
        let mut batch = FeatureBatch::new(5);
        for i in 0..6 {
            let row: Vec<f64> = (0..5).map(|d| ((i * 5 + d) as f64).sin()).collect();
            batch.push(&row);
        }
        let mut ws = Workspace::new();
        let logits = net.forward_batch(&batch, &mut ws).to_vec();
        for r in 0..batch.rows() {
            let per_sample = net.forward(batch.row(r));
            // Same op order per row ⇒ exactly equal, not just close.
            assert_eq!(&logits[r * 2..(r + 1) * 2], per_sample.as_slice());
        }
    }

    #[test]
    fn backprop_batch_is_bit_identical_to_per_sample() {
        let mut rng = SimRng::new(13);
        let net = Mlp::new(&[4, 9, 3], Activation::Tanh, &mut rng);
        let mut batch = FeatureBatch::new(4);
        let mut dloss = Vec::new();
        for i in 0..5 {
            let row: Vec<f64> = (0..4).map(|d| ((i * 4 + d) as f64 * 0.3).cos()).collect();
            batch.push(&row);
            dloss.extend((0..3).map(|d| ((i * 3 + d) as f64 * 0.7).sin()));
        }
        let mut g_batch = net.zero_grads();
        let mut ws = Workspace::new();
        net.forward_batch(&batch, &mut ws);
        net.backprop_batch(&batch, &dloss, &mut g_batch, &mut ws);
        let mut g_ref = net.zero_grads();
        for r in 0..batch.rows() {
            net.backprop(batch.row(r), &dloss[r * 3..(r + 1) * 3], &mut g_ref);
        }
        assert_eq!(g_batch.samples, g_ref.samples);
        for (a, b) in g_batch.dw.iter().zip(&g_ref.dw) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        for (a, b) in g_batch.db.iter().zip(&g_ref.db) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn forward_batch_cached_is_bit_identical_and_tracks_updates() {
        let mut rng = SimRng::new(27);
        let mut net = Mlp::new(&[5, 12, 7, 2], Activation::Relu, &mut rng);
        let mut batch = FeatureBatch::new(5);
        for i in 0..6 {
            let row: Vec<f64> = (0..5).map(|d| ((i * 5 + d) as f64).sin()).collect();
            batch.push(&row);
        }
        let mut ws = Workspace::new();
        let mut tw = TransposedWeights::new();
        assert!(!tw.is_valid());
        net.refresh_transposed(&mut tw);
        assert!(tw.is_valid());
        let cached = net.forward_batch_cached(&batch, &mut ws, &tw).to_vec();
        let direct = net.forward_batch(&batch, &mut ws).to_vec();
        assert_eq!(cached, direct);
        // After a weight update the refreshed cache must track it.
        let mut g = net.zero_grads();
        net.backprop(batch.row(0), &[0.3, -0.2], &mut g);
        net.apply_update(&g, -0.05);
        tw.invalidate();
        net.refresh_transposed(&mut tw);
        let cached2 = net.forward_batch_cached(&batch, &mut ws, &tw).to_vec();
        let direct2 = net.forward_batch(&batch, &mut ws).to_vec();
        assert_eq!(cached2, direct2);
        assert_ne!(cached, cached2, "update must change the logits");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn forward_batch_cached_rejects_stale_cache() {
        let mut rng = SimRng::new(28);
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng);
        let batch = FeatureBatch::from_rows(2, &[vec![0.1, 0.2]]);
        let mut ws = Workspace::new();
        net.forward_batch_cached(&batch, &mut ws, &TransposedWeights::new());
    }

    #[test]
    fn workspace_is_reusable_across_shapes() {
        let mut rng = SimRng::new(21);
        let small = Mlp::new(&[3, 4, 1], Activation::Relu, &mut rng);
        let big = Mlp::new(&[6, 16, 8, 2], Activation::Tanh, &mut rng);
        let mut ws = Workspace::new();
        let b1 = FeatureBatch::from_rows(3, &[vec![0.1, 0.2, 0.3]]);
        let b2 = FeatureBatch::from_rows(
            6,
            &(0..9).map(|i| vec![i as f64 * 0.1; 6]).collect::<Vec<_>>(),
        );
        let s1 = small.forward_batch(&b1, &mut ws).to_vec();
        let s2 = big.forward_batch(&b2, &mut ws).to_vec();
        let s1_again = small.forward_batch(&b1, &mut ws).to_vec();
        assert_eq!(s1, s1_again);
        assert_eq!(s2.len(), 9 * 2);
    }

    #[test]
    #[should_panic(expected = "different batch")]
    fn backprop_batch_requires_matching_forward() {
        let mut rng = SimRng::new(22);
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, &mut rng);
        let b1 = FeatureBatch::from_rows(2, &[vec![0.1, 0.2], vec![0.3, 0.4]]);
        let b2 = FeatureBatch::from_rows(2, &[vec![0.5, 0.6]]);
        let mut ws = Workspace::new();
        net.forward_batch(&b1, &mut ws);
        let mut g = net.zero_grads();
        net.backprop_batch(&b2, &[1.0], &mut g, &mut ws);
    }

    #[test]
    fn serde_roundtrip_preserves_behaviour() {
        let mut rng = SimRng::new(11);
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.2, 0.4, -0.6];
        assert_eq!(net.forward(&x), back.forward(&x));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{cross_entropy_grad, cross_entropy_loss};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Backprop matches central finite differences on randomly
        /// sized networks, activations, inputs and probed parameters.
        #[test]
        fn gradcheck_random_networks(
            seed in 0u64..10_000,
            hidden in 1usize..12,
            inputs in 2usize..6,
            outputs in 2usize..5,
            tanh in any::<bool>(),
            probe_frac in 0.0f64..1.0,
            target_frac in 0.0f64..1.0,
        ) {
            let mut rng = SimRng::new(seed);
            let act = if tanh { Activation::Tanh } else { Activation::Relu };
            let mut net = Mlp::new(&[inputs, hidden, outputs], act, &mut rng);
            let x: Vec<f64> = (0..inputs).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let target = ((target_frac * outputs as f64) as usize).min(outputs - 1);

            let mut grads = net.zero_grads();
            let logits = net.forward(&x);
            net.backprop(&x, &cross_entropy_grad(&logits, target), &mut grads);
            let mut analytic: Vec<f64> = Vec::new();
            net.visit_params_mut(&grads, |_, g| analytic.extend_from_slice(g));

            let k = ((probe_frac * analytic.len() as f64) as usize).min(analytic.len() - 1);
            let eps = 1e-6;
            let perturb = |net: &mut Mlp, delta: f64| {
                let mut seen = 0usize;
                let snapshot = net.zero_grads();
                net.visit_params_mut(&snapshot, |p, _| {
                    for v in p.iter_mut() {
                        if seen == k {
                            *v += delta;
                        }
                        seen += 1;
                    }
                });
            };
            perturb(&mut net, eps);
            let plus = cross_entropy_loss(&net.forward(&x), target);
            perturb(&mut net, -2.0 * eps);
            let minus = cross_entropy_loss(&net.forward(&x), target);
            let numeric = (plus - minus) / (2.0 * eps);
            // ReLU kinks can make single points non-differentiable;
            // tolerate a loose bound there and a tight one for tanh.
            let tol = if tanh { 1e-4 } else { 1e-3 };
            prop_assert!(
                (numeric - analytic[k]).abs() < tol,
                "param {k}: numeric {numeric} vs analytic {}",
                analytic[k]
            );
        }

        /// Batched forward matches per-sample forward on random
        /// shapes, activations and batch sizes (tentpole invariant:
        /// the GEMM path may not change a single decision).
        #[test]
        fn forward_batch_matches_per_sample(
            seed in 0u64..10_000,
            hidden in 1usize..16,
            inputs in 1usize..8,
            outputs in 1usize..5,
            rows in 1usize..9,
            tanh in any::<bool>(),
        ) {
            let mut rng = SimRng::new(seed);
            let act = if tanh { Activation::Tanh } else { Activation::Relu };
            let net = Mlp::new(&[inputs, hidden, outputs], act, &mut rng);
            let mut batch = FeatureBatch::new(inputs);
            for _ in 0..rows {
                let row: Vec<f64> = (0..inputs).map(|_| rng.range_f64(-2.0, 2.0)).collect();
                batch.push(&row);
            }
            let mut ws = Workspace::new();
            let logits = net.forward_batch(&batch, &mut ws).to_vec();
            for r in 0..rows {
                let reference = net.forward(batch.row(r));
                for (a, b) in logits[r * outputs..(r + 1) * outputs].iter().zip(&reference) {
                    prop_assert!((a - b).abs() <= 1e-12, "row {r}: {a} vs {b}");
                }
            }
        }

        /// Batched backprop accumulates the same gradients as N
        /// per-sample backprops, on random shapes.
        #[test]
        fn backprop_batch_matches_per_sample(
            seed in 0u64..10_000,
            hidden in 1usize..12,
            inputs in 1usize..6,
            outputs in 1usize..4,
            rows in 1usize..7,
            tanh in any::<bool>(),
        ) {
            let mut rng = SimRng::new(seed);
            let act = if tanh { Activation::Tanh } else { Activation::Relu };
            let net = Mlp::new(&[inputs, hidden, outputs], act, &mut rng);
            let mut batch = FeatureBatch::new(inputs);
            let mut dloss = Vec::new();
            for _ in 0..rows {
                let row: Vec<f64> = (0..inputs).map(|_| rng.range_f64(-2.0, 2.0)).collect();
                batch.push(&row);
                dloss.extend((0..outputs).map(|_| rng.range_f64(-1.0, 1.0)));
            }
            let mut ws = Workspace::new();
            net.forward_batch(&batch, &mut ws);
            let mut g_batch = net.zero_grads();
            net.backprop_batch(&batch, &dloss, &mut g_batch, &mut ws);
            let mut g_ref = net.zero_grads();
            for r in 0..rows {
                net.backprop(batch.row(r), &dloss[r * outputs..(r + 1) * outputs], &mut g_ref);
            }
            prop_assert_eq!(g_batch.samples, g_ref.samples);
            let mut flat_batch: Vec<f64> = Vec::new();
            let mut flat_ref: Vec<f64> = Vec::new();
            let mut probe = net.clone();
            probe.visit_params_mut(&g_batch, |_, g| flat_batch.extend_from_slice(g));
            probe.visit_params_mut(&g_ref, |_, g| flat_ref.extend_from_slice(g));
            for (k, (a, b)) in flat_batch.iter().zip(&flat_ref).enumerate() {
                prop_assert!((a - b).abs() <= 1e-12, "param {k}: {a} vs {b}");
            }
        }

        /// Forward pass never produces NaN/inf for bounded inputs.
        #[test]
        fn forward_is_finite(seed in 0u64..10_000, scale in 0.0f64..100.0) {
            let mut rng = SimRng::new(seed);
            let net = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
            let x = [scale, -scale, scale / 2.0, 0.0];
            prop_assert!(net.forward(&x).iter().all(|v| v.is_finite()));
        }
    }
}
