//! Optimizers: plain SGD and Adam over the network's flattened
//! parameters, driven through [`Mlp::visit_params_mut`].

use crate::mlp::{Gradients, Mlp};
use serde::{Deserialize, Serialize};

/// Stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Clip the global gradient norm to this value (0 disables).
    pub clip_norm: f64,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, clip_norm: 5.0 }
    }

    /// One update step. Gradients are averaged over their accumulated
    /// samples.
    pub fn step(&self, net: &mut Mlp, grads: &mut Gradients) {
        if grads.samples == 0 {
            return;
        }
        grads.scale(1.0 / grads.samples as f64);
        if self.clip_norm > 0.0 {
            let n = grads.norm();
            if n > self.clip_norm {
                grads.scale(self.clip_norm / n);
            }
        }
        net.apply_update(grads, -self.lr);
        grads.clear();
    }
}

/// Adam (Kingma & Ba) with bias correction and gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Clip the global gradient norm to this value (0 disables).
    pub clip_norm: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// New Adam optimizer with standard betas.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 5.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// One update step. Gradients are averaged over their accumulated
    /// samples, clipped, then applied with bias-corrected moments.
    pub fn step(&mut self, net: &mut Mlp, grads: &mut Gradients) {
        if grads.samples == 0 {
            return;
        }
        grads.scale(1.0 / grads.samples as f64);
        if self.clip_norm > 0.0 {
            let n = grads.norm();
            if n > self.clip_norm {
                grads.scale(self.clip_norm / n);
            }
        }
        let total = net.param_count();
        if self.m.len() != total {
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut offset = 0usize;
        net.visit_params_mut(grads, |params, g| {
            for (i, (p, gi)) in params.iter_mut().zip(g).enumerate() {
                let k = offset + i;
                m[k] = b1 * m[k] + (1.0 - b1) * gi;
                v[k] = b2 * v[k] + (1.0 - b2) * gi * gi;
                let mhat = m[k] / bc1;
                let vhat = v[k] / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
            offset += params.len();
        });
        grads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use crate::{cross_entropy_grad, softmax};
    use simcore::SimRng;

    fn train(optim: &mut dyn FnMut(&mut Mlp, &mut Gradients), seed: u64) -> f64 {
        // Learn a simple separable classification: sign of x0 + x1.
        let mut rng = SimRng::new(seed);
        let mut net = Mlp::new(&[2, 8, 2], Activation::Tanh, &mut rng);
        let mut grads = net.zero_grads();
        let mut data_rng = SimRng::new(seed + 1);
        for _ in 0..400 {
            grads.clear();
            for _ in 0..16 {
                let x = [data_rng.range_f64(-1.0, 1.0), data_rng.range_f64(-1.0, 1.0)];
                let t = usize::from(x[0] + x[1] > 0.0);
                let logits = net.forward(&x);
                net.backprop(&x, &cross_entropy_grad(&logits, t), &mut grads);
            }
            optim(&mut net, &mut grads);
        }
        // Accuracy on a fresh sample.
        let mut correct = 0;
        let n = 500;
        for _ in 0..n {
            let x = [data_rng.range_f64(-1.0, 1.0), data_rng.range_f64(-1.0, 1.0)];
            let t = usize::from(x[0] + x[1] > 0.0);
            let p = softmax(&net.forward(&x));
            if (p[1] > 0.5) == (t == 1) {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    #[test]
    fn sgd_learns_linear_boundary() {
        let sgd = Sgd::new(0.3);
        let acc = train(&mut |net, g| sgd.step(net, g), 5);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn adam_learns_linear_boundary() {
        let mut adam = Adam::new(0.01);
        let acc = train(&mut |net, g| adam.step(net, g), 6);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn empty_gradients_are_a_noop() {
        let mut rng = SimRng::new(1);
        let mut net = Mlp::new(&[2, 3, 2], Activation::Relu, &mut rng);
        let before = net.forward(&[0.5, 0.5]);
        let mut g = net.zero_grads();
        Sgd::new(0.1).step(&mut net, &mut g);
        let mut adam = Adam::new(0.1);
        adam.step(&mut net, &mut g);
        assert_eq!(net.forward(&[0.5, 0.5]), before);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut rng = SimRng::new(2);
        let mut net = Mlp::new(&[1, 2], Activation::Identity, &mut rng);
        let mut g = net.zero_grads();
        // Huge artificial gradient.
        net.backprop(&[1000.0], &[1e6, -1e6], &mut g);
        let sgd = Sgd::new(1.0);
        let before: Vec<f64> = {
            let mut v = Vec::new();
            let snapshot = net.zero_grads();
            net.visit_params_mut(&snapshot, |p, _| v.extend_from_slice(p));
            v
        };
        let mut g2 = g;
        sgd.step(&mut net, &mut g2);
        let mut after = Vec::new();
        let snapshot = net.zero_grads();
        net.visit_params_mut(&snapshot, |p, _| after.extend_from_slice(p));
        let delta: f64 = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // lr × clip_norm = 5.0 bounds the parameter displacement.
        assert!(delta <= 5.0 + 1e-9, "delta {delta}");
    }
}
