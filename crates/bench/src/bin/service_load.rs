//! Closed-loop load generator for the scheduler service: emit
//! `BENCH_service.json`.
//!
//! Drives the `mlfs-service` threaded front-end with the Fig. 4
//! workload mix in two phases:
//!
//! * **throughput** — admission off, generous arrival queue, every
//!   job retried through backpressure until accepted. Headline:
//!   sustained decisions/sec (scheduler rounds per wall-second) and
//!   p50/p99 decision latency from the engine's log₂ histogram.
//! * **overload** — a deliberately tiny arrival queue and admission
//!   backlog, jobs offered in one non-retrying burst. Headline: how
//!   much the service sheds (channel backpressure + admission) and
//!   the deepest backlog the decision loop ever saw, proving
//!   overload degrades by shedding instead of stalling.
//!
//! ```sh
//! # Full run (writes BENCH_service.json):
//! cargo run --release -p mlfs-bench --bin service_load
//!
//! # CI smoke: smaller trace, wall-clock ceiling + perf gate; exits
//! # non-zero when the ceiling, throughput floor, or p99 ceiling is
//! # violated.
//! cargo run --release -p mlfs-bench --bin service_load -- --smoke
//! ```
//!
//! Flags: `--scheduler MLF-H`, `--x 1` (Fig. 4 load multiplier),
//! `--tf 16` (time compression), `--seed 42`, `--queue 1024` (arrival
//! queue capacity), `--min-dps 2000` (decisions/sec floor),
//! `--max-p99-ms 1` (p99 decision-latency ceiling), `--ceiling-s 300`
//! (smoke wall-clock ceiling), `--out BENCH_service.json`.

use mlfs_bench::Args;
use mlfs_service::{AdmissionPolicy, Service, SubmitError};
use mlfs_sim::experiments::fig4;
use serde_json::Value;

/// Current git commit (short), or "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Conservative percentile from the log₂ decision-latency histogram:
/// the upper edge (2^{i+1} ns) of the bucket holding the p-th sample.
fn hist_percentile_ms(hist: &[u64], p: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &n) in hist.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return 2f64.powi(i as i32 + 1) / 1e6;
        }
    }
    2f64.powi(hist.len() as i32) / 1e6
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let scheduler = args.get("scheduler").unwrap_or("MLF-H").to_string();
    let x = args.f64("x", if smoke { 0.5 } else { 1.0 });
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);
    let queue_cap = args.u64("queue", 1024) as usize;
    let min_dps = args.f64("min-dps", 2000.0);
    let max_p99_ms = args.f64("max-p99-ms", 1.0);
    let ceiling_s = args.f64("ceiling-s", 300.0);
    let default_out = if smoke {
        "target/BENCH_service.smoke.json"
    } else {
        "BENCH_service.json"
    };
    let out = args.get("out").unwrap_or(default_out).to_string();

    let e = fig4(x, tf, seed);
    let specs = e.jobs();
    let jobs = specs.len();

    // The bench measures the working tree: `before_commit` is the
    // commit the tree is based on; `after_commit` is the commit that
    // will contain the measured change, stamped once it exists.
    let meta = Value::Map(vec![
        ("before_commit".into(), Value::Str(git_commit())),
        (
            "after_commit".into(),
            Value::Str(args.get("after-commit").unwrap_or("worktree").into()),
        ),
        ("scheduler".into(), Value::Str(scheduler.clone())),
        ("figure".into(), Value::Str("fig4".into())),
        ("x".into(), Value::F64(x)),
        ("time_factor".into(), Value::F64(tf)),
        ("seed".into(), Value::U64(seed)),
        ("jobs".into(), Value::U64(jobs as u64)),
        ("queue_capacity".into(), Value::U64(queue_cap as u64)),
    ]);
    let mut runs: Vec<Value> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ---- Phase 1: sustained throughput, nothing shed. -------------
    eprintln!("[service] throughput phase: {jobs} jobs, scheduler {scheduler}...");
    let svc = Service::new(
        e.sim.clone(),
        e.scheduler(&scheduler, seed.wrapping_add(7)),
        None,
    );
    let tracer = svc.tracer();
    let handle = svc.spawn(queue_cap);
    let t0 = std::time::Instant::now();
    let mut backpressure_retries = 0u64;
    for spec in specs.clone() {
        let mut spec = spec;
        // Closed loop: a full queue means the decision loop owns the
        // pace; spin-retry until the submission lands.
        loop {
            match handle.submit(spec) {
                Ok(()) => break,
                Err(SubmitError::Backpressure(s)) => {
                    backpressure_retries += 1;
                    spec = s;
                    std::thread::yield_now();
                }
                Err(SubmitError::Closed(_)) => {
                    eprintln!("[service] worker closed early");
                    std::process::exit(1);
                }
            }
        }
    }
    let submit_wall = t0.elapsed().as_secs_f64();
    let report = handle.finish();
    let wall = t0.elapsed().as_secs_f64();
    let hist = tracer.snapshot().decision_ns;
    let rounds = report.metrics.rounds;
    let dps = rounds as f64 / wall.max(1e-9);
    let arrivals_per_sec = report.stats.accepted as f64 / submit_wall.max(1e-9);
    let p50_ms = hist_percentile_ms(&hist, 50.0);
    let p99_ms = hist_percentile_ms(&hist, 99.0);
    eprintln!(
        "[service]   {wall:.1}s wall, {rounds} rounds, {dps:.0} decisions/s, \
         p50 {p50_ms:.4} ms, p99 {p99_ms:.4} ms, {arrivals_per_sec:.0} arrivals/s accepted"
    );
    if report.worker_panicked {
        failures.push("throughput worker panicked".into());
    }
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("throughput".into())),
        ("jobs_offered".into(), Value::U64(jobs as u64)),
        ("jobs_accepted".into(), Value::U64(report.stats.accepted)),
        ("rounds".into(), Value::U64(rounds)),
        ("wall_s".into(), Value::F64(wall)),
        ("decisions_per_sec".into(), Value::F64(dps)),
        ("arrivals_per_sec".into(), Value::F64(arrivals_per_sec)),
        ("decision_p50_ms".into(), Value::F64(p50_ms)),
        ("decision_p99_ms".into(), Value::F64(p99_ms)),
        ("max_backlog".into(), Value::U64(report.max_backlog as u64)),
        (
            "backpressure_retries".into(),
            Value::U64(backpressure_retries),
        ),
        (
            "jobs_finished".into(),
            Value::U64(report.metrics.jobs.len() as u64),
        ),
    ]));

    // ---- Phase 2: overload, shedding instead of stalling. ---------
    let overload_queue = 8usize;
    let policy = AdmissionPolicy {
        max_backlog: 64,
        ..AdmissionPolicy::default()
    };
    eprintln!(
        "[service] overload phase: burst of {jobs} jobs into a {overload_queue}-slot queue, \
         admission backlog {}...",
        policy.max_backlog
    );
    let svc = Service::new(
        e.sim.clone(),
        e.scheduler(&scheduler, seed.wrapping_add(7)),
        Some(policy),
    );
    let handle = svc.spawn(overload_queue);
    let t0 = std::time::Instant::now();
    let mut backpressure_shed = 0u64;
    for spec in specs {
        match handle.submit(spec) {
            Ok(()) => {}
            Err(SubmitError::Backpressure(_)) => backpressure_shed += 1,
            Err(SubmitError::Closed(_)) => {
                eprintln!("[service] worker closed early");
                std::process::exit(1);
            }
        }
    }
    let report = handle.finish();
    let overload_wall = t0.elapsed().as_secs_f64();
    let shed_total = backpressure_shed + report.stats.shed;
    let shed_rate = shed_total as f64 / jobs.max(1) as f64;
    eprintln!(
        "[service]   {overload_wall:.1}s wall, {} accepted, {} shed ({} backpressure + {} \
         admission), shed rate {shed_rate:.2}, max backlog {}",
        report.stats.accepted, shed_total, backpressure_shed, report.stats.shed, report.max_backlog
    );
    if report.worker_panicked {
        failures.push("overload worker panicked".into());
    }
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("overload".into())),
        ("jobs_offered".into(), Value::U64(jobs as u64)),
        ("jobs_accepted".into(), Value::U64(report.stats.accepted)),
        ("shed_backpressure".into(), Value::U64(backpressure_shed)),
        ("shed_admission".into(), Value::U64(report.stats.shed)),
        ("shed_rate".into(), Value::F64(shed_rate)),
        ("queue_capacity".into(), Value::U64(overload_queue as u64)),
        (
            "admission_max_backlog".into(),
            Value::U64(policy.max_backlog as u64),
        ),
        ("max_backlog".into(), Value::U64(report.max_backlog as u64)),
        ("rounds".into(), Value::U64(report.metrics.rounds)),
        ("wall_s".into(), Value::F64(overload_wall)),
    ]));

    let root = Value::Map(vec![
        ("meta".into(), meta),
        ("runs".into(), Value::Seq(runs)),
    ]);
    if let Err(err) = std::fs::write(&out, serde_json::value_to_string_pretty(&root) + "\n") {
        eprintln!("failed to write {out}: {err}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    // ---- Gates. ----------------------------------------------------
    if dps < min_dps {
        failures.push(format!("decisions/sec {dps:.0} below floor {min_dps:.0}"));
    }
    if p99_ms > max_p99_ms {
        failures.push(format!(
            "p99 decision latency {p99_ms:.3} ms over ceiling {max_p99_ms:.3} ms"
        ));
    }
    if smoke && wall + overload_wall > ceiling_s {
        failures.push(format!(
            "wall clock {:.1}s over smoke ceiling {ceiling_s:.0}s",
            wall + overload_wall
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[service] GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
