//! Regenerate **Figure 4** (overall performance, real-experiment
//! scale): 20 servers / 80 GPUs, `620·x` jobs, all ten schedulers,
//! panels (a)–(h).
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig4 -- \
//!     [--repeats 10] [--xs 0.25,0.5,1] [--tf 16] [--seed 42] [--panel b] [--full] [--json results]
//! ```
//!
//! `--full` uses the paper's x range {0.25, 0.5, 1, 2, 3} — slow.

use mlfs_bench::{dump_json, print_figure_panels, sweep_repeated, Args};
use mlfs_sim::experiments::fig4;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);
    let panel = args.get("panel").and_then(|s| s.chars().next());
    let repeats = args.u64("repeats", 1) as usize;

    println!("Figure 4 — overall performance in real experiments");
    println!("cluster: 20 servers x 4 GPUs; time compression {tf}x; seed {seed}");

    let names = baselines::FIGURE_SCHEDULERS;
    let cells = sweep_repeated(&xs, &names, seed, repeats, |x, s| fig4(x, tf, s));
    print_figure_panels(&cells, &names, &xs, panel);

    if let Some(dir) = args.get("json") {
        dump_json(&cells, dir, "fig4").expect("write JSON results");
        println!("\nraw metrics dumped to {dir}/");
    }
}
