//! Regenerate the **makespan comparison** reported in §4.2.1's text
//! ("The makespan is 40-90 hours in MLFS, 51-102 hours in MLF-RL, and
//! 54-116 hours in MLF-H…"): the min–max makespan across the workload
//! range, per scheduler.
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin makespan -- [--xs 0.25,0.5,1] [--tf 16] [--seed 42]
//! ```

use metrics::Table;
use mlfs_bench::{sweep, Args};
use mlfs_sim::experiments::fig4;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);

    println!("Makespan ranges across workloads (§4.2.1 text)");
    let names = baselines::FIGURE_SCHEDULERS;
    let cells = sweep(&xs, &names, seed, |x| fig4(x, tf, seed));

    let mut t = Table::new(&["scheduler", "min makespan (h)", "max makespan (h)"]);
    for name in names {
        let spans: Vec<f64> = cells
            .iter()
            .filter(|c| c.scheduler() == name)
            .map(|c| c.median(|m| m.makespan_hours))
            .collect();
        let lo = spans.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = spans.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        t.row(vec![
            name.to_string(),
            format!("{lo:.1}"),
            format!("{hi:.1}"),
        ]);
    }
    println!("{t}");
    println!("(paper order: MLFS < MLF-RL < MLF-H < Tiresias < HyperSched < RL < Gandiva < TensorFlow < SLAQ)");
}
