//! Emit `BENCH_scheduler.json` from the criterion snapshot.
//!
//! `cargo bench -p mlfs-bench` writes one JSON summary per scheduler
//! under `target/criterion-mini/scheduler_overhead/`. This binary
//! folds those medians (ns per `schedule()` decision) into the
//! checked-in `BENCH_scheduler.json`, preserving the other field so
//! before/after can be recorded across a change:
//!
//! ```sh
//! cargo bench -p mlfs-bench
//! cargo run -p mlfs-bench --bin emit_bench            # updates "after"
//! cargo run -p mlfs-bench --bin emit_bench -- --field before
//! ```
//!
//! When a `hot_path` snapshot directory is present (written by
//! `cargo bench -p mlfs-bench --bench hot_path`), its medians are
//! folded into a `hot_path.{before,after}` section the same way, so
//! the inner-loop numbers (`scores_batch`, `mlfrl_decision`, …) are
//! tracked alongside the per-scheduler decision times.
//!
//! Each emit also stamps `meta.{before,after}_commit` with the git
//! commit the snapshot was captured at, so checked-in numbers stay
//! attributable across a change.
//!
//! Flags: `--snapshot DIR` (default
//! `target/criterion-mini/scheduler_overhead`), `--hot-path DIR`
//! (default `target/criterion-mini/hot_path`, skipped when absent),
//! `--out FILE` (default `BENCH_scheduler.json`), `--field
//! before|after` (default `after`).

use serde_json::Value;

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn set(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

fn median_ns(summary: &Value) -> Option<f64> {
    match summary.as_map().and_then(|m| get(m, "median_ns"))? {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

/// Read every `<bench>.json` summary under `dir` into sorted
/// `(bench, median_ns)` pairs; empty when the directory is absent.
fn read_medians(dir: &str) -> Vec<(String, Value)> {
    let mut measured: Vec<(String, Value)> = Vec::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return measured;
    };
    let mut entries: Vec<_> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let body = std::fs::read_to_string(&path).expect("readable snapshot file");
        let v = serde_json::from_str_value(&body).expect("valid snapshot JSON");
        let Some(m) = v.as_map() else { continue };
        let Some(Value::Str(bench)) = get(m, "bench") else {
            continue;
        };
        let Some(ns) = median_ns(&v) else { continue };
        measured.push((bench.clone(), Value::F64(ns)));
    }
    measured
}

fn main() {
    let args = mlfs_bench::Args::parse();
    let snapshot = args
        .get("snapshot")
        .unwrap_or("target/criterion-mini/scheduler_overhead")
        .to_string();
    let out_path = args
        .get("out")
        .unwrap_or("BENCH_scheduler.json")
        .to_string();
    let field = args.get("field").unwrap_or("after").to_string();
    assert!(
        field == "before" || field == "after",
        "--field must be 'before' or 'after'"
    );

    // Collect (scheduler, median ns/decision) from the snapshot dir.
    let measured = read_medians(&snapshot);
    assert!(
        !measured.is_empty(),
        "no benchmark summaries under {snapshot} (run `cargo bench -p mlfs-bench` first)"
    );

    // Merge into the existing file so the other field survives.
    let mut root: Vec<(String, Value)> = match std::fs::read_to_string(&out_path) {
        Ok(body) => match serde_json::from_str_value(&body) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    set(&mut root, "unit", Value::Str("ns_per_decision".into()));
    set(
        &mut root,
        "bench",
        Value::Str("scheduler_overhead (60-job snapshot, Fig. 4h)".into()),
    );
    set(
        &mut root,
        "regenerate",
        Value::Str("cargo bench -p mlfs-bench && cargo run -p mlfs-bench --bin emit_bench".into()),
    );
    set(&mut root, &field, Value::Map(measured));

    // Record which commit each snapshot was captured at, so a
    // checked-in before/after pair is attributable after the fact.
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let mut meta: Vec<(String, Value)> = match get(&root, "meta") {
        Some(Value::Map(m)) => m.clone(),
        _ => Vec::new(),
    };
    set(&mut meta, &format!("{field}_commit"), Value::Str(commit));
    set(&mut root, "meta", Value::Map(meta));

    // Inner-loop medians (optional: only when the hot_path bench ran).
    let hot_snapshot = args
        .get("hot-path")
        .unwrap_or("target/criterion-mini/hot_path")
        .to_string();
    let hot = read_medians(&hot_snapshot);
    if !hot.is_empty() {
        let mut section: Vec<(String, Value)> = match get(&root, "hot_path") {
            Some(Value::Map(m)) => m.clone(),
            _ => Vec::new(),
        };
        set(&mut section, &field, Value::Map(hot));
        set(&mut root, "hot_path", Value::Map(section));
    }

    std::fs::write(
        &out_path,
        serde_json::value_to_string_pretty(&Value::Map(root)),
    )
    .expect("write BENCH_scheduler.json");
    println!("wrote {out_path} ({field} from {snapshot})");
}
